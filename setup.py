"""Legacy setup shim: lets ``pip install -e .`` work on environments
without the ``wheel`` package (offline PEP 517 editable installs need it)."""
from setuptools import setup

setup()
