"""Table VI — details of the signatures for each bicluster.

Paper: nine signatures; cluster sizes 1,671–13,272 samples (largest ≈ 8×
smallest); three clusters use 90 biclustering features but logistic
regression prunes them hard (90 → 33, 13, 11); all but one signature use
≤ 14 features.
"""

from repro.bench import BenchResult
from repro.eval import format_table, table6_cluster_details


def test_table6(benchmark, bench_context, record, emit):
    rows = benchmark.pedantic(
        table6_cluster_details, args=(bench_context,),
        rounds=1, iterations=1,
    )
    table = format_table(
        ["BICLUSTER", "SAMPLES", "FEATURES (BICLUSTERING)",
         "FEATURES (SIGNATURE)"],
        [
            [r["bicluster"], r["samples"], r["features_biclustering"],
             r["features_signature"]]
            for r in rows
        ],
        title="Table VI (measured) — paper values in module docstring",
    )
    record("table6_cluster_details", table)

    sizes = [r["samples"] for r in rows]
    compact = sum(1 for r in rows if r["features_signature"] <= 14)
    emit(BenchResult(
        bench="table6_cluster_details",
        kind="table",
        seed=2012,
        metrics={
            "n_signatures": len(rows),
            "size_spread": round(max(sizes) / min(sizes), 3),
            "compact_signatures": compact,
            "max_signature_features": int(
                max(r["features_signature"] for r in rows)
            ),
        },
        data={"rows": rows},
    ))

    assert 5 <= len(rows) <= 9  # paper: 9 signatures

    assert max(sizes) / min(sizes) >= 1.5  # wide size spread

    # Logistic pruning: signatures never exceed, and usually shrink,
    # their bicluster's feature set.
    assert all(
        r["features_signature"] <= r["features_biclustering"]
        for r in rows
    )
    assert any(
        r["features_signature"] < r["features_biclustering"]
        for r in rows
    )

    # Most signatures are compact (paper: all but one ≤ 14 features).
    assert compact >= len(rows) - 2
