"""Table IV — comparison between SQLi rulesets.

Paper's rows: Bro 2.0 — 6 rules, 100% enabled, 100% regex; Snort 2920 —
79 rules, 61% enabled, 82% regex; Emerging Threats 7098 — 4231 rules, 0%
enabled, 99% regex; ModSecurity 2.2.4 — 34 rules, 100% enabled, 100%
regex.  Also: Bro's expressions are by far the longest (avg 247.7 chars),
Snort's the shortest (avg 27.1).
"""

import pytest

from repro.bench import BenchResult
from repro.eval import format_table, table4_ruleset_comparison

PAPER = {
    "bro": (6, 100.0, 100.0),
    "snort": (79, 61.0, 82.0),
    "emerging-threats": (4231, 0.0, 99.0),
    "modsecurity": (34, 100.0, 100.0),
}


def test_table4(benchmark, record, emit):
    rows = benchmark.pedantic(
        table4_ruleset_comparison, rounds=1, iterations=1
    )
    table = format_table(
        ["RULES DISTRIBUTION", "SQLi RULES", "ENABLED%", "REGEX%",
         "AVG PATTERN LEN"],
        [
            [r["rules"], r["sqli_rules"], r["enabled_pct"],
             r["regex_pct"], r["avg_pattern_len"]]
            for r in rows
        ],
        title="Table IV (measured) — paper values in module docstring",
    )
    record("table4_rulesets", table)

    measured = {r["rules"]: r for r in rows}
    emit(BenchResult(
        bench="table4_rulesets",
        kind="table",
        seed=2012,
        metrics={
            "bro_rules": int(measured["bro"]["sqli_rules"]),
            "snort_rules": int(measured["snort"]["sqli_rules"]),
            "et_rules": int(
                measured["emerging-threats"]["sqli_rules"]
            ),
            "modsec_rules": int(
                measured["modsecurity"]["sqli_rules"]
            ),
            "bro_avg_pattern_len": round(
                float(measured["bro"]["avg_pattern_len"]), 3
            ),
            "snort_avg_pattern_len": round(
                float(measured["snort"]["avg_pattern_len"]), 3
            ),
        },
        data={"rows": rows},
    ))
    for name, (count, enabled, regex) in PAPER.items():
        row = measured[name]
        assert row["sqli_rules"] == count, name
        assert row["enabled_pct"] == pytest.approx(enabled, abs=2.0), name
        assert row["regex_pct"] == pytest.approx(regex, abs=3.0), name

    # Pattern-length ordering: Bro longest, Snort shortest.
    assert (
        measured["bro"]["avg_pattern_len"]
        > measured["modsecurity"]["avg_pattern_len"]
        > measured["snort"]["avg_pattern_len"]
    )
