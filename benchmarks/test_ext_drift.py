"""Extension — concept drift and automatic recovery.

Quantifies Section I's motivation: when the attack landscape shifts away
from the training mix, detection decays; pSigene's automatic incremental
update (Experiment 2's machinery, warm-started) wins detection back
without any manual signature work.
"""

from repro.bench import BenchResult
from repro.eval import format_table, percent
from repro.eval.drift import drift_study


def test_drift_and_recovery(benchmark, bench_context, record, emit):
    rounds = benchmark.pedantic(
        drift_study,
        args=(bench_context.pipeline, bench_context.result),
        kwargs={"epochs": 3, "shift": 4.0, "samples_per_epoch": 400,
                "seed": 99},
        rounds=1, iterations=1,
    )
    table = format_table(
        ["EPOCH", "DRIFT SHIFT", "TPR% BEFORE UPDATE",
         "TPR% AFTER UPDATE"],
        [
            [r.epoch, r.shift, percent(r.tpr_before_update),
             percent(r.tpr_after_update)]
            for r in rounds
        ],
        title="Extension: detection under concept drift, with automatic "
              "incremental recovery",
    )
    record("ext_drift", table)

    emit(BenchResult(
        bench="ext_drift",
        kind="extension",
        seed=99,
        metrics={
            "epochs": len(rounds),
            "min_tpr_before": round(
                min(float(r.tpr_before_update) for r in rounds), 6
            ),
            "final_tpr_after": round(
                float(rounds[-1].tpr_after_update), 6
            ),
            "max_update_loss": round(
                max(
                    float(r.tpr_before_update - r.tpr_after_update)
                    for r in rounds
                ), 6
            ),
        },
        data={
            "rounds": [
                {
                    "epoch": int(r.epoch),
                    "shift": round(float(r.shift), 3),
                    "tpr_before_update": round(
                        float(r.tpr_before_update), 6
                    ),
                    "tpr_after_update": round(
                        float(r.tpr_after_update), 6
                    ),
                }
                for r in rounds
            ],
        },
    ))

    assert len(rounds) == 3
    # Generalization keeps drifted traffic mostly detected even before
    # any update...
    assert all(r.tpr_before_update > 0.5 for r in rounds)
    # ...and the automatic update never loses ground and ends at a high
    # operating point.
    assert all(
        r.tpr_after_update >= r.tpr_before_update - 0.05 for r in rounds
    )
    assert rounds[-1].tpr_after_update > 0.7
