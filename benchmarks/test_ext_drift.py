"""Extension — concept drift and automatic recovery.

Quantifies Section I's motivation: when the attack landscape shifts away
from the training mix, detection decays; pSigene's automatic incremental
update (Experiment 2's machinery, warm-started) wins detection back
without any manual signature work.
"""

from repro.eval import format_table, percent
from repro.eval.drift import drift_study


def test_drift_and_recovery(benchmark, bench_context, record):
    rounds = benchmark.pedantic(
        drift_study,
        args=(bench_context.pipeline, bench_context.result),
        kwargs={"epochs": 3, "shift": 4.0, "samples_per_epoch": 400,
                "seed": 99},
        rounds=1, iterations=1,
    )
    table = format_table(
        ["EPOCH", "DRIFT SHIFT", "TPR% BEFORE UPDATE",
         "TPR% AFTER UPDATE"],
        [
            [r.epoch, r.shift, percent(r.tpr_before_update),
             percent(r.tpr_after_update)]
            for r in rounds
        ],
        title="Extension: detection under concept drift, with automatic "
              "incremental recovery",
    )
    record("ext_drift", table)

    assert len(rounds) == 3
    # Generalization keeps drifted traffic mostly detected even before
    # any update...
    assert all(r.tpr_before_update > 0.5 for r in rounds)
    # ...and the automatic update never loses ground and ends at a high
    # operating point.
    assert all(
        r.tpr_after_update >= r.tpr_before_update - 0.05 for r in rounds
    )
    assert rounds[-1].tpr_after_update > 0.7
