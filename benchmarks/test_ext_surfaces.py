"""Extension — multi-surface detection rates and the evasion arms race.

Measures what the surface redesign bought: per-surface TPR/FPR of the
canonical detector over the new corpus families (scored through the
full surface selection), the legacy query+form extraction's blindness
to the same traffic, the surface scanner-simulator's detectability, and
the adversarial evasion search's survival rate against the detector.

Everything is seeded, so the committed ``results/BENCH_surfaces.json``
is a deterministic ledger: ``scripts/ci_bench_guard.py`` recomputes the
same configuration and fails CI when any number moves without the
artifact being re-committed.
"""

from repro.bench import BenchResult
from repro.conformance import train_default_detector
from repro.corpus import SURFACE_FAMILIES, SurfaceCorpusGenerator, VulnerableWebApp
from repro.eval import format_table
from repro.http import LABEL_ATTACK
from repro.scanners import SurfaceScanner
from repro.surfaces import (
    DEFAULT_SURFACES,
    EvasionSearch,
    LEGACY_SURFACES,
    evasion_bases,
    score_request,
)

#: The ledger's fixed configuration — the guard recomputes exactly this.
SEED = 2012
FAMILY_COUNT = 60
EVASION_BASES = 24
EVASION_ROUNDS = 8
EVASION_BRANCHING = 6
SCANNER_VULNS = 6
SCANNER_SEED = 3

#: Acceptance floors for full-surface TPR per family; header injections
#: are short raw strings (worst case for signature coverage), so their
#: floor is lower.
TPR_FLOORS = {
    "json-body": 0.70,
    "cookie": 0.70,
    "header": 0.40,
    "multipart": 0.60,
    "second-order": 0.70,
}
FPR_CEILING = 0.02
#: Families whose attacks never touch query or form body — the legacy
#: extraction must be provably blind to them (the store leg of
#: second-order is an ordinary form POST, so it is excluded here).
LEGACY_BLIND_FAMILIES = ("json-body", "cookie", "header", "multipart")


def measure_surfaces(detector) -> dict:
    """The full ledger body for one detector (deterministic from SEED)."""
    families = {}
    for family in SURFACE_FAMILIES:
        trace = SurfaceCorpusGenerator(seed=SEED).family_trace(
            family, FAMILY_COUNT
        )
        tp = fp = pos = neg = legacy_tp = 0
        for request in trace.requests:
            full = score_request(
                detector.inspect, request, DEFAULT_SURFACES
            )
            legacy = score_request(
                detector.inspect, request, LEGACY_SURFACES
            )
            if request.label == LABEL_ATTACK:
                pos += 1
                tp += bool(full.alert)
                legacy_tp += bool(legacy.alert)
            else:
                neg += 1
                fp += bool(full.alert)
        families[family] = {
            "attacks": pos,
            "benign": neg,
            "tpr": round(tp / pos, 4) if pos else 0.0,
            "fpr": round(fp / neg, 4) if neg else 0.0,
            "legacy_tpr": round(legacy_tp / pos, 4) if pos else 0.0,
        }

    scanner_trace = SurfaceScanner(
        VulnerableWebApp(seed=7, n_vulnerabilities=SCANNER_VULNS),
        seed=SCANNER_SEED,
    ).scan()
    scanner_full = sum(
        score_request(detector.inspect, r, DEFAULT_SURFACES).alert
        for r in scanner_trace.requests
    )
    scanner_legacy = sum(
        score_request(detector.inspect, r, LEGACY_SURFACES).alert
        for r in scanner_trace.requests
    )
    scanner = {
        "probes": len(scanner_trace),
        "detected_full": int(scanner_full),
        "detected_legacy": int(scanner_legacy),
        "rate_full": round(scanner_full / len(scanner_trace), 4),
    }

    evasion = EvasionSearch(
        detector.inspect,
        seed=SEED,
        rounds=EVASION_ROUNDS,
        branching=EVASION_BRANCHING,
    ).run(evasion_bases(seed=SEED, count=EVASION_BASES)).to_dict()

    return {
        "families": families,
        "scanner": scanner,
        "evasion": evasion,
    }


def test_surface_bench(record, emit):
    detector = train_default_detector(SEED)
    ledger = measure_surfaces(detector)
    families = ledger["families"]

    # Full-surface detection clears the per-family floors, cleanly.
    for family, floor in TPR_FLOORS.items():
        assert families[family]["tpr"] >= floor, (
            family, families[family]
        )
        assert families[family]["fpr"] <= FPR_CEILING, (
            family, families[family]
        )
    # The legacy extraction is blind to the non-form channels — this is
    # the gap the redesign exists to close, measured not assumed.
    for family in LEGACY_BLIND_FAMILIES:
        assert families[family]["legacy_tpr"] == 0.0, (
            family, families[family]
        )
    # The scanner's probes: invisible to legacy, mostly caught in full.
    assert ledger["scanner"]["detected_legacy"] == 0
    assert ledger["scanner"]["rate_full"] >= 0.6

    # The evasion search attacked real detections and its numbers are
    # internally consistent; the survival rate itself is a tracked
    # ledger value, not a hard bar — the guard pins it to the artifact.
    evasion = ledger["evasion"]
    assert evasion["attacked"] > 0
    assert 0.0 <= evasion["survival_rate"] <= 1.0

    emit(BenchResult(
        bench="surfaces",
        kind="extension",
        seed=SEED,
        metrics={
            "family_count": FAMILY_COUNT,
            "scanner_probes": ledger["scanner"]["probes"],
            "scanner_detected_full": ledger["scanner"]["detected_full"],
            "scanner_detected_legacy": (
                ledger["scanner"]["detected_legacy"]
            ),
            "scanner_rate_full": ledger["scanner"]["rate_full"],
            "evasion_attacked": evasion["attacked"],
            "evasion_evaded": evasion["evaded"],
            "evasion_survival_rate": evasion["survival_rate"],
        },
        data=ledger,
    ))

    rows = [
        [
            family,
            f"{families[family]['tpr']:.3f}",
            f"{families[family]['fpr']:.4f}",
            f"{families[family]['legacy_tpr']:.3f}",
        ]
        for family in SURFACE_FAMILIES
    ]
    rows.append([
        "scanner-probes",
        f"{ledger['scanner']['rate_full']:.3f}",
        "-",
        f"{ledger['scanner']['detected_legacy']}",
    ])
    table = format_table(
        ["SURFACE FAMILY", "TPR(full)", "FPR(full)", "TPR(legacy)"],
        rows,
        title=(
            f"Extension: per-surface detection "
            f"(evasion survival {evasion['survival_rate']:.3f}, "
            f"{evasion['evaded']}/{evasion['attacked']} bases evaded)"
        ),
    )
    record("ext_surfaces", table)
