"""Ablation — L2 regularization of the logistic signature models.

DESIGN.md calls out the ridge strength as the knob behind Table VI's
feature pruning: stronger regularization shrinks more coefficients under
the pruning threshold, producing smaller signatures at some TPR cost.
"""

import numpy as np

from repro.bench import BenchResult
from repro.core import GeneralizerConfig, SignatureSet
from repro.core.generalizer import SignatureGeneralizer
from repro.eval import format_table, percent
from repro.ids import PSigeneDetector, SignatureEngine


def _retrain(context, l2):
    result = context.result
    generalizer = SignatureGeneralizer(GeneralizerConfig(l2=l2))
    rng = np.random.default_rng(0)
    signatures = []
    for bicluster in result.biclusters:
        if bicluster.is_black_hole or bicluster.n_samples < 2:
            continue
        training = generalizer.train(
            bicluster, result.matrix.counts, result.benign_matrix.counts,
            result.catalog, rng=rng,
        )
        signatures.append(training.signature)
    return SignatureSet(signatures, normalizer=context.pipeline.normalizer)


def _sweep(context):
    rows = []
    for l2 in (0.01, 1.0, 100.0):
        signature_set = _retrain(context, l2)
        engine = SignatureEngine(PSigeneDetector(signature_set))
        run = engine.run(context.datasets.sqlmap)
        rows.append({
            "l2": l2,
            "tpr": float(run.alert_flags.mean()),
            "mean_features": float(np.mean(
                [s.n_features for s in signature_set]
            )),
            "mean_weight_norm": float(np.mean([
                np.linalg.norm(s.model.coefficients)
                for s in signature_set
            ])),
        })
    return rows


def test_regularization_ablation(benchmark, bench_context, record, emit,
                                 context_corpus):
    rows = benchmark.pedantic(
        _sweep, args=(bench_context,), rounds=1, iterations=1
    )
    table = format_table(
        ["L2", "TPR%(SQLmap)", "MEAN SIGNATURE FEATURES",
         "MEAN ||θ||"],
        [
            [r["l2"], percent(r["tpr"]), f"{r['mean_features']:.1f}",
             f"{r['mean_weight_norm']:.2f}"]
            for r in rows
        ],
        title="Ablation: ridge strength of the signature models",
    )
    record("ablation_regularization", table)

    by_l2 = {r["l2"]: r for r in rows}
    emit(BenchResult(
        bench="ablation_regularization",
        kind="ablation",
        seed=2012,
        metrics={
            "weight_norm_low_l2": round(
                float(by_l2[0.01]["mean_weight_norm"]), 6
            ),
            "weight_norm_high_l2": round(
                float(by_l2[100.0]["mean_weight_norm"]), 6
            ),
            "weight_shrink": round(
                float(
                    by_l2[0.01]["mean_weight_norm"]
                    - by_l2[100.0]["mean_weight_norm"]
                ),
                6,
            ),
            "min_tpr": round(float(min(r["tpr"] for r in rows)), 6),
        },
        data={"rows": rows},
        corpus=context_corpus,
    ))
    # Heavier regularization shrinks the weights.
    assert (
        by_l2[100.0]["mean_weight_norm"]
        < by_l2[0.01]["mean_weight_norm"]
    )
    # All settings still detect the bulk of the attacks — the method is
    # not knife-edge sensitive to the ridge.
    assert all(r["tpr"] > 0.5 for r in rows)
