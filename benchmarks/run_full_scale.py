"""Full-scale experiment run: regenerates every table and figure at the
paper's training scale and writes the paper-vs-measured record that
EXPERIMENTS.md embeds.

    python benchmarks/run_full_scale.py [--fast]

Scale: 30,000 crawled training samples (paper: 30,000), the full
136-vulnerability application (SQLmap ~7,200 / Arachni-set ~8,570 attack
requests, matching Section III-B), and 100,000 benign test requests (the
paper's 1.4M trace only enters through the FPR denominator; 100k resolves
0.001%).  ``--fast`` drops to bench scale for smoke-testing the script.
"""

from __future__ import annotations

import sys
import time

from repro.eval import (
    EvaluationContext,
    experiment2_incremental,
    experiment3_perdisci,
    experiment4_performance,
    figure2_heatmap,
    figure3_roc,
    figure4_cumulative_tpr,
    format_table,
    percent,
    table1_vulnerability_coverage,
    table2_feature_sources,
    table4_ruleset_comparison,
    table5_accuracy,
    table6_cluster_details,
)


def main() -> None:
    fast = "--fast" in sys.argv
    t0 = time.time()
    print("building evaluation context...", flush=True)
    context = EvaluationContext.build(
        seed=2012,
        n_attack_samples=3000 if fast else 30_000,
        n_benign_train=8000 if fast else 30_000,
        n_benign_test=20_000 if fast else 100_000,
        max_cluster_rows=1500 if fast else 2500,
        n_vulnerabilities=136,
    )
    print(f"  context ready in {time.time() - t0:.0f}s", flush=True)
    sections: list[str] = []

    def emit(title: str, body: str) -> None:
        print(f"\n=== {title} ===\n{body}", flush=True)
        sections.append(f"### {title}\n\n```\n{body}\n```\n")

    # -- context summary ----------------------------------------------------
    result = context.result
    summary = format_table(
        ["QUANTITY", "MEASURED", "PAPER"],
        [
            ["training samples (crawled)", len(result.samples), 30000],
            ["initial features", result.pruning.initial_features, 477],
            ["active features after pruning",
             result.pruning.final_features, 159],
            ["matrix sparsity (zeros)", f"{result.matrix.sparsity():.2f}",
             0.85],
            ["fraction of ones", f"{result.matrix.fraction_ones():.2f}",
             0.06],
            ["binary-behaving features",
             int(result.matrix.binary_feature_mask().sum()),
             "70 of 159"],
            ["biclusters selected", len(result.biclusters), 11],
            ["black holes", sum(
                b.is_black_hole for b in result.biclusters
            ), 2],
            ["signatures generated", len(result.signature_set), 9],
            ["cophenetic correlation",
             f"{result.biclustering.cophenetic_correlation:.3f}", 0.92],
            ["SQLmap test attacks", len(context.datasets.sqlmap), "7200+"],
            ["Arachni-set test attacks", len(context.datasets.arachni),
             8578],
            ["benign test requests", len(context.datasets.benign),
             "1.4M"],
        ],
    )
    emit("Training and dataset summary", summary)

    # -- Table I -------------------------------------------------------------
    t1 = table1_vulnerability_coverage(context)
    emit("Table I — vulnerability coverage", format_table(
        ["VULNERABILITY", "CVE ID"],
        [[r["vulnerability"], r["cve"]] for r in t1["table1_rows"]],
    ) + f"\ncoverage: {t1['covered']}/{t1['cohort_size']} (paper: ~30/30)")

    # -- Table II -------------------------------------------------------------
    t2 = table2_feature_sources()
    emit("Table II — feature sources", format_table(
        ["SOURCE", "FEATURES"],
        [[r["source"], r["features"]] for r in t2],
    ))

    # -- Table IV -------------------------------------------------------------
    t4 = table4_ruleset_comparison()
    emit("Table IV — ruleset comparison", format_table(
        ["RULES", "SQLi RULES", "ENABLED%", "REGEX%", "AVG LEN"],
        [[r["rules"], r["sqli_rules"], r["enabled_pct"], r["regex_pct"],
          r["avg_pattern_len"]] for r in t4],
    ))

    # -- Table V ---------------------------------------------------------------
    t5 = table5_accuracy(context)
    emit("Table V — accuracy (Experiment 1)", format_table(
        ["RULES", "TPR%(SQLmap)", "TPR%(Arachni)", "FPR%", "ALARMS"],
        [[r["rules"], percent(r["tpr_sqlmap"]), percent(r["tpr_arachni"]),
          percent(r["fpr"], 4), r["false_alarms"]] for r in t5],
    ))

    # -- Table VI ---------------------------------------------------------------
    t6 = table6_cluster_details(context)
    emit("Table VI — per-bicluster details", format_table(
        ["BICLUSTER", "SAMPLES", "FEATURES(BICL)", "FEATURES(SIG)"],
        [[r["bicluster"], r["samples"], r["features_biclustering"],
          r["features_signature"]] for r in t6],
    ))

    # -- Figure 2 -----------------------------------------------------------------
    heatmap, text = figure2_heatmap(context)
    emit("Figure 2 — heatmap (text rendering)", text)

    # -- Figure 3 -----------------------------------------------------------------
    curves = figure3_roc(context)
    emit("Figure 3 — per-signature ROC (partial AUC, FPR<=0.05)",
         format_table(
             ["SIGNATURE", "pAUC", "AUC"],
             [[i, f"{c.auc(max_fpr=0.05):.4f}", f"{c.auc():.4f}"]
              for i, c in sorted(curves.items())],
         ))

    # -- Figure 4 -----------------------------------------------------------------
    f4 = figure4_cumulative_tpr(context)
    emit("Figure 4 — cumulative TPR", format_table(
        ["RANK", "SIGNATURE", "INDIVIDUAL", "MARGINAL", "CUMULATIVE"],
        [[r["rank"], r["signature"], f"{r['individual_tpr']:.4f}",
          f"{r['marginal']:.4f}", f"{r['cumulative_tpr']:.4f}"]
         for r in f4],
    ))

    # -- Experiment 2 ---------------------------------------------------------------
    e2 = experiment2_incremental(context)
    emit("Experiment 2 — incremental learning", format_table(
        ["AUGMENTED WITH", "TPR%(SQLmap)", "FPR%"],
        [[f"{r['added_fraction']:.0%}", percent(r["tpr_sqlmap"]),
          percent(r["fpr"], 4)] for r in e2],
    ))

    # -- Experiment 3 -----------------------------------------------------------------
    e3 = experiment3_perdisci(context)
    emit("Experiment 3 — Perdisci comparison", format_table(
        ["METRIC", "MEASURED", "PAPER"],
        [
            ["fine-grained clusters", e3["fine_grained_clusters"], 145],
            ["after filtering", e3["clusters_after_filter"], 27],
            ["final signatures", e3["final_signatures"], 10],
            ["TPR %", percent(e3["tpr"]), 5.79],
            ["FPR %", percent(e3["fpr"], 4), 0.0],
            ["train-on-train TPR %", percent(e3["train_on_train_tpr"]),
             76.5],
        ],
    ))

    # -- Experiment 4 ------------------------------------------------------------------
    e4 = experiment4_performance(context)
    psigene_avg = next(
        r["avg_us"] for r in e4 if r["detector"] == "psigene"
    )
    emit("Experiment 4 — processing time per request", format_table(
        ["DETECTOR", "MIN µs", "AVG µs", "MAX µs", "pSigene SLOWDOWN"],
        [[r["detector"], r["min_us"], r["avg_us"], r["max_us"],
          f"{psigene_avg / r['avg_us']:.1f}x"] for r in e4],
    ))

    with open("benchmarks/results/full_scale_run.md", "w") as handle:
        handle.write(
            "# Full-scale run output\n\n"
            f"elapsed: {time.time() - t0:.0f}s\n\n" + "\n".join(sections)
        )
    print(f"\ntotal elapsed {time.time() - t0:.0f}s; "
          "written to benchmarks/results/full_scale_run.md")


if __name__ == "__main__":
    main()
