"""Fleet serving bench: shard scaling, overload shedding, parity.

Replays the deterministic scanner+benign trace through live fleets of
1, 2, and 4 shards (closed-loop, ``block`` policy — capacity), then
drives a 2-shard fleet past capacity open-loop (``shed`` policy, tight
queues — overload behaviour).  Parity with the offline engine is
asserted on every serviced response.

Scaling methodology (same as ``repro.parallel.timing`` / exp4): the CI
host is a single core, so an N-shard fleet time-slices one CPU and the
*measured* aggregate cannot exceed single-shard capacity.  What the
measurement does expose is the fleet's coordination overhead — the
aggregate it retains when the same core is divided N ways
(``efficiency = C_N / C_1``).  Modeled N-core throughput is
``N x C_1 x min(1, efficiency)``, i.e. perfect port-sharding scaling
discounted by the *measured* multi-process overhead.  The acceptance
bar (modeled speedup >= 2.5x at 4 shards) fails if shard coordination
eats more than 37.5% of aggregate capacity.

Saved to ``results/serve_fleet.txt`` and the machine-readable baseline
``results/BENCH_serving.json`` guarded by ``scripts/ci_bench_guard.py``.
"""

import asyncio

from repro.bench import BenchResult, corpus_digest
from repro.conformance import train_default_detector
from repro.serve import build_load_trace, run_fleet_loadgen

SHARD_COUNTS = (1, 2, 4)
QUEUE_BOUND = 256
WORKERS = 2
CONNECTIONS = 8
WINDOW = 16
PRESSURE_QUEUE_BOUND = 8
SLO_MS = 50.0
MIN_MODELED_SPEEDUP_AT_4 = 2.5


def test_serve_fleet_scaling(record, emit):
    detector = train_default_detector(2012)
    trace = build_load_trace(seed=7, n_benign=2000, n_vulnerabilities=12)
    payloads = trace.payloads()

    capacity = {}
    for shards in SHARD_COUNTS:
        report = asyncio.run(run_fleet_loadgen(
            detector,
            payloads,
            shards=shards,
            queue_bound=QUEUE_BOUND,
            policy="block",
            workers=WORKERS,
            connections=CONNECTIONS,
            window=WINDOW,
            slo_ms=SLO_MS,
        ))
        # Closed-loop block policy: every request serviced, bit parity.
        assert report.completed == report.requests
        assert report.shed == 0 and report.errors == 0
        assert report.parity is not None and report.parity.ok
        capacity[shards] = report

    c1 = capacity[1].throughput_rps
    scaling = []
    for shards in SHARD_COUNTS:
        measured = capacity[shards].throughput_rps
        efficiency = min(1.0, measured / c1)
        modeled = shards * c1 * efficiency
        scaling.append({
            "shards": shards,
            "measured_rps": round(measured, 1),
            "efficiency": round(efficiency, 3),
            "modeled_rps": round(modeled, 1),
            "modeled_speedup": round(modeled / c1, 2),
            "p50_ms": round(capacity[shards].latency_ms["p50_ms"], 3),
            "p95_ms": round(capacity[shards].latency_ms["p95_ms"], 3),
            "p99_ms": round(capacity[shards].latency_ms["p99_ms"], 3),
        })

    # Overload: offer 2x single-shard capacity to a 2-shard fleet with
    # tight per-shard queues; it must shed, not collapse.
    pressure = asyncio.run(run_fleet_loadgen(
        detector,
        payloads,
        shards=2,
        queue_bound=PRESSURE_QUEUE_BOUND,
        policy="shed",
        workers=WORKERS,
        connections=CONNECTIONS,
        rate=2.0 * c1,
        slo_ms=SLO_MS,
    ))
    assert pressure.completed + pressure.shed + pressure.errors == (
        pressure.requests
    )
    assert pressure.errors == 0
    assert pressure.parity is not None and pressure.parity.ok

    header = (
        f"{'shards':>6} {'meas req/s':>11} {'eff':>6} "
        f"{'model req/s':>12} {'speedup':>8} {'p50ms':>7} "
        f"{'p95ms':>7} {'p99ms':>7}"
    )
    lines = [
        f"Fleet scaling ({detector.name}, {len(payloads)} payloads, "
        f"closed-loop block, queue {QUEUE_BOUND}/shard, "
        f"{WORKERS} workers/shard; modeled = N x C1 x efficiency)",
        header,
        "-" * len(header),
    ]
    for row in scaling:
        lines.append(
            f"{row['shards']:>6} {row['measured_rps']:>11,.0f} "
            f"{row['efficiency']:>6.2f} {row['modeled_rps']:>12,.0f} "
            f"{row['modeled_speedup']:>7.2f}x {row['p50_ms']:>7.3f} "
            f"{row['p95_ms']:>7.3f} {row['p99_ms']:>7.3f}"
        )
    lines += [
        "",
        f"Overload (2 shards, shed policy, queue "
        f"{PRESSURE_QUEUE_BOUND}/shard, offered {pressure.offered_rps:,.0f} "
        f"req/s = 2 x C1):",
        f"  serviced {pressure.serviced_rps:,.0f} req/s, "
        f"shed {100 * pressure.shed_rate:.1f}%, "
        f"SLO({SLO_MS:.0f}ms) {100 * pressure.slo_attainment:.1f}%, "
        f"p99 {pressure.latency_ms['p99_ms']:.3f} ms, parity OK",
    ]
    record("serve_fleet", "\n".join(lines))

    emit(BenchResult(
        bench="serving",
        kind="perf",
        seed=2012,
        metrics={
            "requests": len(payloads),
            "queue_bound": QUEUE_BOUND,
            "workers_per_shard": WORKERS,
            "c1_rps": round(c1, 1),
            "modeled_speedup_at_4": scaling[-1]["modeled_speedup"],
            "parity_ok": True,
        },
        data={
            "detector": detector.name,
            "trace_seed": 7,
            "scaling": scaling,
            "pressure": {
                "shards": 2,
                "queue_bound": PRESSURE_QUEUE_BOUND,
                "offered_rps": round(pressure.offered_rps, 1),
                "serviced_rps": round(pressure.serviced_rps, 1),
                "shed_rate": round(pressure.shed_rate, 4),
                "slo_ms": SLO_MS,
                "slo_attainment": round(pressure.slo_attainment, 4),
                "p99_ms": round(pressure.latency_ms["p99_ms"], 3),
            },
        },
        corpus={"loadgen_trace": corpus_digest(payloads)},
    ))

    # The ISSUE's bar: the modeled fleet reaches >= 2.5x single-shard
    # throughput at 4 shards on the sqlmap+benign replay trace.
    assert scaling[-1]["shards"] == 4
    assert scaling[-1]["modeled_speedup"] >= MIN_MODELED_SPEEDUP_AT_4
