"""Observability overhead — instrumented vs no-op registry.

Acceptance bar for the observability layer: full instrumentation
(registry counters + latency histogram fed on every request) may cost at
most 5% on ``SignatureEngine.run`` versus the same engine reporting into
a :class:`~repro.obs.registry.NullRegistry`.  Both arms run the identical
code path — telemetry attached, timers on — so the measured delta is
exactly the bookkeeping the real registry performs.
"""

import time

from repro.bench import BenchResult
from repro.eval import format_table
from repro.http import Trace
from repro.ids import PSigeneDetector, SignatureEngine
from repro.obs.registry import MetricsRegistry, NullRegistry
from repro.serve.telemetry import Telemetry

REPEATS = 5
REQUESTS = 600


def _min_wall_s_interleaved(
    first: SignatureEngine, second: SignatureEngine, trace: Trace
) -> tuple[float, float]:
    """Best-of-N wall time per engine, arms alternated within each round.

    Interleaving matters: measuring one arm's five repeats as a block and
    then the other's lets clock-frequency drift and cache state masquerade
    as instrumentation overhead (observed at >10% on a sequential layout
    for a real delta under 1%).
    """
    bests = [float("inf"), float("inf")]
    for _ in range(REPEATS):
        for slot, engine in enumerate((first, second)):
            start = time.perf_counter()
            engine.run(trace)
            bests[slot] = min(bests[slot], time.perf_counter() - start)
    return bests[0], bests[1]


def test_instrumentation_overhead_under_5_percent(bench_context, record,
                                                  emit):
    signature_set = bench_context.result.signature_set
    requests = bench_context.datasets.sqlmap.requests[:REQUESTS]
    trace = Trace(name="overhead-bench", requests=list(requests))

    instrumented = SignatureEngine(
        PSigeneDetector(signature_set),
        telemetry=Telemetry(MetricsRegistry()),
    )
    null = SignatureEngine(
        PSigeneDetector(signature_set),
        telemetry=Telemetry(NullRegistry()),
    )

    # Warm both arms (regex caches, branch predictors) before timing.
    instrumented.run(trace)
    null.run(trace)

    instrumented_s, null_s = _min_wall_s_interleaved(
        instrumented, null, trace
    )
    overhead = instrumented_s / null_s - 1.0

    per_request_us = instrumented_s / len(trace) * 1e6
    table = format_table(
        ["ARM", "WALL s", "PER-REQ µs"],
        [
            ["MetricsRegistry", f"{instrumented_s:.4f}",
             f"{instrumented_s / len(trace) * 1e6:.1f}"],
            ["NullRegistry", f"{null_s:.4f}",
             f"{null_s / len(trace) * 1e6:.1f}"],
            ["overhead", f"{overhead * 100:+.2f}%", ""],
        ],
        title=(
            f"Observability overhead on SignatureEngine.run "
            f"({len(trace)} requests, best of {REPEATS})"
        ),
    )
    record("obs_overhead", table)

    # Emit before the overhead assertion so a noisy-machine failure still
    # records the measurement.
    emit(BenchResult(
        bench="obs_overhead",
        kind="perf",
        seed=2012,
        metrics={
            "requests": len(trace),
            "repeats": REPEATS,
            "instrumented_wall_s": round(instrumented_s, 6),
            "null_wall_s": round(null_s, 6),
            "per_request_us": round(per_request_us, 3),
            "overhead_fraction": round(overhead, 6),
        },
    ))

    assert per_request_us > 0.0
    assert overhead <= 0.05, (
        f"instrumentation overhead {overhead * 100:.2f}% exceeds 5%"
    )

    # The instrumented arm really did count: one inc per request per pass.
    inspected = instrumented.telemetry.counter("inspected")
    assert inspected == (REPEATS + 1) * len(trace)
