"""Figure 3 — per-signature ROC curves.

Paper: one ROC per generalized signature, FPR axis truncated at 0.05;
wide variability across signatures (signature 6 strong, signature 4
lagging); several signatures insensitive to the threshold; the curves let
an operator pick which signatures to enable.
"""

import numpy as np

from repro.bench import BenchResult
from repro.eval import figure3_roc, format_table


def test_figure3(benchmark, bench_context, record, emit, context_corpus):
    curves = benchmark.pedantic(
        figure3_roc, args=(bench_context,), rounds=1, iterations=1
    )
    rows = []
    for index, curve in sorted(curves.items()):
        rows.append([
            f"signature {index}",
            f"{curve.auc(max_fpr=0.05):.4f}",
            f"{curve.auc():.4f}",
            f"{curve.tpr[np.argmin(np.abs(curve.thresholds - 0.5))]:.3f}",
        ])
    table = format_table(
        ["SIGNATURE", "AUC(FPR<=0.05)", "AUC(full)", "TPR@0.5"],
        rows,
        title="Figure 3 (measured, summarized as partial AUCs)",
    )
    # Also dump the raw series for external plotting.
    series_lines = []
    for index, curve in sorted(curves.items()):
        for fpr, tpr in zip(curve.fpr, curve.tpr):
            if fpr <= 0.05:
                series_lines.append(f"{index}\t{fpr:.6f}\t{tpr:.6f}")
    record("figure3_roc", table)
    record("figure3_roc_series", "signature\tfpr\ttpr\n" +
           "\n".join(series_lines))

    aucs = [c.auc(max_fpr=0.05) for c in curves.values()]
    emit(BenchResult(
        bench="figure3_roc",
        kind="figure",
        seed=2012,
        metrics={
            "curves": len(curves),
            "best_partial_auc": round(float(max(aucs)), 6),
            "worst_partial_auc": round(float(min(aucs)), 6),
            "auc_spread": round(float(max(aucs) - min(aucs)), 6),
        },
        data={
            "partial_auc_by_signature": {
                str(index): round(float(curve.auc(max_fpr=0.05)), 6)
                for index, curve in sorted(curves.items())
            },
        },
        corpus=context_corpus,
    ))

    # One curve per signature.
    assert len(curves) == len(bench_context.result.signature_set)
    # Wide variability in signature quality (paper's first observation).
    assert max(aucs) > min(aucs)
    # The best signatures genuinely detect within the low-FPR window.
    assert max(aucs) > 0.02
    # Curves are valid: monotone TPR over sorted FPR.
    for curve in curves.values():
        order = np.argsort(curve.fpr)
        assert (np.diff(curve.tpr[order]) >= -1e-9).all()
