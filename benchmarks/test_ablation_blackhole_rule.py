"""Ablation — the black-hole exclusion rule.

The paper drops biclusters "composed of vectors of mostly zeroes"
(biclusters 9 and 10) and trains no signatures for them.  This bench
quantifies why: retraining *with* the black-hole clusters included
recovers a little TPR on bare probes but costs false positives, since a
probe signature is essentially "alert on any quote".
"""

import numpy as np

from repro.bench import BenchResult
from repro.core import SignatureSet
from repro.core.generalizer import SignatureGeneralizer
from repro.eval import format_table, percent
from repro.ids import PSigeneDetector, SignatureEngine
from repro.learn import confusion_from_alerts


def _with_black_holes(context):
    """Signature set that also trains the black-hole biclusters."""
    result = context.result
    generalizer = SignatureGeneralizer(context.pipeline.config.generalizer)
    rng = np.random.default_rng(0)
    signatures = [t.signature for t in result.trainings]
    for bicluster in result.biclusters:
        if not bicluster.is_black_hole or bicluster.n_samples < 2:
            continue
        training = generalizer.train(
            bicluster, result.matrix.counts, result.benign_matrix.counts,
            result.catalog, rng=rng,
        )
        signatures.append(training.signature)
    return SignatureSet(signatures, normalizer=context.pipeline.normalizer)


def test_blackhole_rule_ablation(benchmark, bench_context, record, emit,
                                 context_corpus):
    with_holes = benchmark.pedantic(
        _with_black_holes, args=(bench_context,), rounds=1, iterations=1
    )
    datasets = bench_context.datasets

    def measure(signature_set):
        engine = SignatureEngine(PSigeneDetector(signature_set))
        attacks = engine.run(datasets.sqlmap)
        benign = engine.run(datasets.benign)
        return confusion_from_alerts(
            attacks.alert_flags, benign.alert_flags
        )

    without = measure(bench_context.result.signature_set)
    included = measure(with_holes)

    table = format_table(
        ["CONFIGURATION", "SIGNATURES", "TPR%(SQLmap)", "FPR%"],
        [
            ["black holes excluded (paper)",
             len(bench_context.result.signature_set),
             percent(without.tpr), percent(without.fpr, 4)],
            ["black holes included",
             len(with_holes), percent(included.tpr),
             percent(included.fpr, 4)],
        ],
        title="Ablation: the black-hole exclusion rule",
    )
    record("ablation_blackhole_rule", table)

    emit(BenchResult(
        bench="ablation_blackhole_rule",
        kind="ablation",
        seed=2012,
        metrics={
            "excluded_signatures": len(
                bench_context.result.signature_set
            ),
            "included_signatures": len(with_holes),
            "excluded_tpr": round(float(without.tpr), 6),
            "excluded_fpr": round(float(without.fpr), 6),
            "included_tpr": round(float(included.tpr), 6),
            "included_fpr": round(float(included.fpr), 6),
            "tpr_gain": round(float(included.tpr - without.tpr), 6),
            "fpr_cost": round(float(included.fpr - without.fpr), 6),
        },
        corpus=context_corpus,
    ))

    # Including the probe clusters can only add coverage...
    assert included.tpr >= without.tpr - 1e-9
    # ...but never at a better FPR: probe signatures are noisy.
    assert included.fpr >= without.fpr
