"""Ablation — count features versus binary features.

Section II-B: "We also considered using only binary features ... rather
than its count.  However, this did not produce good results."  This bench
reruns signature training with the training matrix binarized and compares
detection on the SQLmap set.
"""

import numpy as np

from repro.bench import BenchResult
from repro.eval import format_table, percent
from repro.ids import PSigeneDetector, SignatureEngine
from repro.learn import confusion_from_alerts


def _retrain_binary(context):
    """Retrain every signature on the binarized matrices."""
    from repro.core.generalizer import SignatureGeneralizer

    result = context.result
    generalizer = SignatureGeneralizer(context.pipeline.config.generalizer)
    binary_attack = result.matrix.as_binary()
    binary_benign = result.benign_matrix.as_binary()
    rng = np.random.default_rng(0)
    signatures = []
    for bicluster in result.biclusters:
        if bicluster.is_black_hole or bicluster.n_samples < 2:
            continue
        training = generalizer.train(
            bicluster, binary_attack.counts, binary_benign.counts,
            result.catalog, rng=rng,
        )
        signatures.append(training.signature)
    from repro.core import SignatureSet

    return SignatureSet(signatures, normalizer=context.pipeline.normalizer)


def test_binary_features_ablation(benchmark, bench_context, record, emit,
                                  context_corpus):
    binary_set = benchmark.pedantic(
        _retrain_binary, args=(bench_context,), rounds=1, iterations=1
    )
    datasets = bench_context.datasets

    def measure(signature_set):
        engine = SignatureEngine(PSigeneDetector(signature_set))
        attack = engine.run(datasets.sqlmap)
        benign = engine.run(datasets.benign)
        return confusion_from_alerts(
            attack.alert_flags, benign.alert_flags
        )

    nine, _ = bench_context.psigene_sets()
    counts = measure(nine)
    binary = measure(binary_set)

    table = format_table(
        ["FEATURES", "TPR%(SQLmap)", "FPR%"],
        [
            ["counts (paper's choice)", percent(counts.tpr),
             percent(counts.fpr, 4)],
            ["binary (rejected)", percent(binary.tpr),
             percent(binary.fpr, 4)],
        ],
        title="Ablation: count vs binary features",
    )
    record("ablation_binary_features", table)

    emit(BenchResult(
        bench="ablation_binary_features",
        kind="ablation",
        seed=2012,
        metrics={
            "counts_tpr": round(float(counts.tpr), 6),
            "counts_fpr": round(float(counts.fpr), 6),
            "binary_tpr": round(float(binary.tpr), 6),
            "binary_fpr": round(float(binary.fpr), 6),
            "fpr_penalty": round(float(binary.fpr - counts.fpr), 6),
            "tpr_edge": round(float(counts.tpr - binary.tpr), 6),
        },
        corpus=context_corpus,
    ))

    # The paper's direction: binary features "did not produce good
    # results".  What counts buy is precision — erasing repetition
    # structure (char() runs, stacked quotes) makes benign text look more
    # like attacks, so the binarized set must not have a *better* FPR,
    # while the count set keeps comparable recall.
    assert counts.fpr <= binary.fpr
    assert counts.tpr >= binary.tpr - 0.08
