"""Canary loop bench: closed-loop continual learning on a live fleet.

Trains the canonical incumbent, then drives the two rounds the
acceptance bar names against a real 2-shard fleet on one shared port:

1. a clean round — drifted fresh attacks ingested, a candidate refreshed
   on the warm path, shadow-scored over the wire with zero conformance
   divergences, and promoted through the atomic two-phase fleet reload;
2. an injected FPR-budget violation — the sabotaged candidate alerts on
   essentially everything, the gate rejects it, and the incumbent is
   provably unchanged (same fleet version, identical verdicts on
   replayed probes, nothing left staged).

Per-stage wall times (ingest/refresh/shadow/gate/promote), promote and
reject outcomes, and the TPR/FPR deltas land in the committed baseline
``results/BENCH_canary.json`` (validated by ``scripts/ci_bench_guard.py``)
plus the human-readable ``results/canary_loop.txt``.
"""

import asyncio

from repro.bench import BenchResult
from repro.canary import CanaryConfig, CanaryLoop, GatePolicy, TrainingState
from repro.conformance import serial_verdicts
from repro.ids import PSigeneDetector
from repro.serve import FleetConfig, FleetSupervisor

FRESH_ATTACKS = 120
BENIGN_REPLAY = 240
SHARDS = 2
#: Budgets sized for the canonical small training config: a legitimate
#: warm refresh lands around 1.5% candidate FPR, the sabotaged
#: threshold blows far past 5%.
POLICY = GatePolicy(
    fpr_budget=0.05, tpr_tolerance=0.10, max_churn_fraction=2.0
)
SABOTAGE_THRESHOLD = 0.05
PROBES = [
    "id=1' union select 1,2--",
    "q=hello world",
    "course=cs101&term=fall2012",
    "",
]


def _round_payload(completed) -> dict:
    shadow = completed.decision.shadow
    return {
        "outcome": completed.outcome,
        "strategy": completed.strategy,
        "generation_before": completed.generation_before,
        "generation_after": completed.generation_after,
        "reasons": list(completed.decision.reasons),
        "divergences": len(shadow.divergences),
        "incumbent_tpr": round(shadow.incumbent_tpr, 6),
        "candidate_tpr": round(shadow.candidate_tpr, 6),
        "tpr_delta": round(shadow.tpr_delta, 6),
        "incumbent_fpr": round(shadow.incumbent_fpr, 6),
        "candidate_fpr": round(shadow.candidate_fpr, 6),
        "fpr_delta": round(shadow.fpr_delta, 6),
        "churn_fraction": round(
            completed.decision.churn.churn_fraction, 6
        ),
        "stage_wall_s": {
            stage: round(wall, 6)
            for stage, wall in completed.stage_wall_s.items()
        },
    }


def test_canary_loop_fleet(record, emit, tmp_path):
    state = TrainingState.train(2012)

    async def scenario():
        supervisor = FleetSupervisor(
            PSigeneDetector(state.signature_set),
            FleetConfig(shards=SHARDS, queue_bound=512, workers=2),
            source="bench:canary",
        )
        loop = CanaryLoop(state, supervisor.store, config=CanaryConfig(
            fresh_attacks=FRESH_ATTACKS,
            benign_replay=BENIGN_REPLAY,
            seed=7,
            policy=POLICY,
            runs_dir=str(tmp_path),
        ))
        await supervisor.start()
        try:
            promoted = await loop.run_round_fleet(supervisor)
            assert promoted.promoted, promoted.decision.reasons
            assert promoted.decision.shadow.divergences == []
            assert supervisor.version == promoted.generation_after

            before = serial_verdicts(
                supervisor.store.current().detector, PROBES
            )
            version_before = supervisor.version
            rejected = await loop.run_round_fleet(
                supervisor,
                sabotage=lambda s: s.with_threshold(SABOTAGE_THRESHOLD),
            )
            assert not rejected.promoted
            assert "fpr_budget" in rejected.decision.reasons
            after = serial_verdicts(
                supervisor.store.current().detector, PROBES
            )
            incumbent_unchanged = (
                supervisor.version == version_before
                and supervisor.store.staged_generations() == ()
                and after == before
            )
            assert incumbent_unchanged
            return promoted, rejected, incumbent_unchanged
        finally:
            await supervisor.stop()

    promoted, rejected, incumbent_unchanged = asyncio.run(scenario())

    baseline = {
        "policy": POLICY.to_dict(),
        "promote": _round_payload(promoted),
        "reject": {
            **_round_payload(rejected),
            "incumbent_unchanged": incumbent_unchanged,
        },
    }
    baseline_path = emit(BenchResult(
        bench="canary",
        kind="extension",
        seed=2012,
        metrics={
            "shards": SHARDS,
            "fresh_attacks": FRESH_ATTACKS,
            "benign_replay": BENIGN_REPLAY,
            "promoted": bool(promoted.promoted),
            "rejected_fpr_budget": (
                "fpr_budget" in rejected.decision.reasons
            ),
            "incumbent_unchanged": bool(incumbent_unchanged),
        },
        data=baseline,
    ))

    lines = [
        f"Canary loop ({SHARDS}-shard live fleet, "
        f"{FRESH_ATTACKS} fresh attacks + {BENIGN_REPLAY} benign "
        f"mirrored per round, fpr budget {POLICY.fpr_budget})",
        "",
    ]
    for label, payload in (
        ("promote", baseline["promote"]),
        ("reject", baseline["reject"]),
    ):
        walls = " ".join(
            f"{stage} {1000 * wall:.0f}ms"
            for stage, wall in payload["stage_wall_s"].items()
        )
        lines += [
            f"{label}: {payload['outcome'].upper()} "
            f"(strategy={payload['strategy']}, "
            f"gen {payload['generation_before']} -> "
            f"{payload['generation_after']}"
            + (
                f", reasons {payload['reasons']}"
                if payload["reasons"] else ""
            )
            + ")",
            f"  tpr {payload['incumbent_tpr']:.4f} -> "
            f"{payload['candidate_tpr']:.4f} "
            f"({payload['tpr_delta']:+.4f})   "
            f"fpr {payload['incumbent_fpr']:.4f} -> "
            f"{payload['candidate_fpr']:.4f} "
            f"({payload['fpr_delta']:+.4f})",
            f"  churn {payload['churn_fraction']:.3f}, "
            f"divergences {payload['divergences']}",
            f"  walls: {walls}",
            "",
        ]
    lines.append(
        "rejection left the incumbent provably unchanged: "
        f"{incumbent_unchanged}"
    )
    record("canary_loop", "\n".join(lines))
    print(f"[saved baseline to {baseline_path}]")
