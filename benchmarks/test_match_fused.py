"""Fused single-pass matching versus the per-signature reference loop.

The serial matching baseline this PR attacks is the ``WORKERS=1`` row of
``exp4_batch_matching`` (~261 µs/request on the committed run): each
request walked every signature's every feature with its own compiled
regex.  The fused engine makes one pass — token scan, factor gates, and
a shared count vector reduced by sparse gathers — and must produce
bit-identical verdicts while doing it.

Alongside the human-readable table this bench writes
``benchmarks/results/BENCH_matching.json``; CI's
``scripts/ci_bench_guard.py`` fails the build if a fresh measurement
regresses more than 15% against that committed baseline.
"""

import json

from repro.bench import corpus_digest
from repro.eval import format_table
from repro.match import bench_fused_matching


def test_bench_fused_matching(benchmark, bench_context, record, emit):
    nine, _ = bench_context.psigene_sets()
    requests = list(bench_context.datasets.sqlmap.requests[:600])
    requests += list(bench_context.datasets.benign.requests[:600])
    payloads = [request.flat_payload() for request in requests]

    def sweep():
        return bench_fused_matching(nine, payloads, repeats=5)

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["ENGINE", "µs/req", "P50 µs", "P95 µs", "SPEEDUP", "IDENTICAL"],
        [
            ["legacy", f"{result.legacy_us_per_request:.1f}", "-", "-",
             "1.00x", "-"],
            ["fused", f"{result.fused_us_per_request:.1f}",
             f"{result.fused_p50_us:.1f}", f"{result.fused_p95_us:.1f}",
             f"{result.speedup:.2f}x",
             "yes" if result.identical else "NO"],
        ],
        title=(
            "Fused single-pass matching "
            f"({result.requests} requests, {result.signatures} "
            f"signatures, {result.patterns} distinct patterns)"
        ),
    )
    record("bench_matching", table)
    emit(result.to_bench_result(
        seed=2012, corpus={"payloads": corpus_digest(payloads)}
    ))

    # Bit-exact parity on every payload is non-negotiable.
    assert result.identical
    # The artifact CI diffs must round-trip.
    reloaded = json.loads(result.to_json())
    assert reloaded["bench"] == "matching"
    assert reloaded["metrics"]["speedup"] == round(result.speedup, 3)
    # The ISSUE's bar: >= 3x on the serial matching path.
    assert result.speedup >= 3.0
