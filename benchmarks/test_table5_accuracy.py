"""Table V — Experiment 1: accuracy comparison between SQLi rulesets.

Paper's rows (TPR SQLmap / TPR Arachni / FPR, %):

    ModSecurity            96.07   98.72   0.0515
    pSigene (9 signatures) 86.53   90.52   0.037
    pSigene (7 signatures) 82.72   89.48   0.016
    Snort - Emerging Thr.  79.55   76.59   0.1742
    Bro                    73.23   76.33   0.0000

Shape targets asserted here: ModSec tops both TPR columns; pSigene sits
between ModSec and Snort/Bro; Bro has exactly zero false positives; Snort
has the worst FPR; pSigene's FPR beats Snort's and ModSec's.
"""

from repro.bench import BenchResult
from repro.eval import format_table, percent, table5_accuracy

PAPER_ROWS = [
    ("modsecurity", 96.07, 98.72, 0.0515),
    ("psigene-9", 86.53, 90.52, 0.0370),
    ("psigene-7", 82.72, 89.48, 0.0160),
    ("snort-et", 79.55, 76.59, 0.1742),
    ("bro", 73.23, 76.33, 0.0000),
]


def test_table5(benchmark, bench_context, record, emit, context_corpus):
    rows = benchmark.pedantic(
        table5_accuracy, args=(bench_context,), rounds=1, iterations=1
    )

    table = format_table(
        ["RULES", "TPR%(SQLmap)", "TPR%(Arachni)", "FPR%", "alarms"],
        [
            [r["rules"], percent(r["tpr_sqlmap"]),
             percent(r["tpr_arachni"]), percent(r["fpr"], 4),
             r["false_alarms"]]
            for r in rows
        ],
        title="Table V (measured) — paper values in module docstring",
    )
    record("table5_accuracy", table)

    by_name = {}
    for row in rows:
        key = row["rules"]
        if key.startswith("psigene"):
            key = "psigene-many" if "psigene-many" not in by_name else (
                "psigene-few"
            )
        by_name[key] = row

    modsec = by_name["modsecurity"]
    snort = by_name["snort-et"]
    bro = by_name["bro"]
    psigene = by_name["psigene-many"]

    emit(BenchResult(
        bench="table5_accuracy",
        kind="table",
        seed=2012,
        metrics={
            "psigene_tpr_sqlmap": round(
                float(psigene["tpr_sqlmap"]), 6
            ),
            "psigene_tpr_arachni": round(
                float(psigene["tpr_arachni"]), 6
            ),
            "psigene_fpr": round(float(psigene["fpr"]), 6),
            "modsec_tpr_sqlmap": round(float(modsec["tpr_sqlmap"]), 6),
            "modsec_fpr": round(float(modsec["fpr"]), 6),
            "snort_tpr_sqlmap": round(float(snort["tpr_sqlmap"]), 6),
            "snort_fpr": round(float(snort["fpr"]), 6),
            "bro_tpr_sqlmap": round(float(bro["tpr_sqlmap"]), 6),
            "bro_fpr": round(float(bro["fpr"]), 6),
        },
        data={"rows": rows},
        corpus=context_corpus,
    ))

    # -- who wins (paper's ordering) --------------------------------------
    assert modsec["tpr_sqlmap"] >= psigene["tpr_sqlmap"]
    assert psigene["tpr_sqlmap"] > snort["tpr_sqlmap"]
    assert psigene["tpr_sqlmap"] > bro["tpr_sqlmap"]
    assert modsec["tpr_arachni"] >= psigene["tpr_arachni"]
    assert psigene["tpr_arachni"] > snort["tpr_arachni"]

    # -- FPR ordering -------------------------------------------------------
    assert bro["fpr"] == 0.0
    assert snort["fpr"] > modsec["fpr"]
    assert psigene["fpr"] < snort["fpr"]
    assert psigene["fpr"] <= modsec["fpr"] + 0.0005

    # -- rough magnitudes ---------------------------------------------------
    assert psigene["tpr_sqlmap"] > 0.75
    assert modsec["tpr_sqlmap"] > 0.9
    assert snort["fpr"] < 0.01
