"""Experiment 3 — comparison to Perdisci et al.'s approach.

Paper: 145 fine-grained clusters → 27 after filtering → 10 signatures
after merging (threshold 0.1); TPR 5.79% with FPR 0% on the scanner test
sets, but 76.5% when tested on its own training samples — token
subsequences memorize, they do not generalize.
"""

from repro.bench import BenchResult
from repro.eval import experiment3_perdisci, format_table, percent


def test_experiment3(benchmark, bench_context, record, emit, context_corpus):
    outcome = benchmark.pedantic(
        experiment3_perdisci, args=(bench_context,),
        kwargs={"max_training": 700}, rounds=1, iterations=1,
    )
    table = format_table(
        ["METRIC", "MEASURED", "PAPER"],
        [
            ["fine-grained clusters", outcome["fine_grained_clusters"],
             145],
            ["clusters after filter", outcome["clusters_after_filter"],
             27],
            ["final signatures", outcome["final_signatures"], 10],
            ["TPR % (unseen scanners)", percent(outcome["tpr"]), 5.79],
            ["FPR %", percent(outcome["fpr"], 4), 0.0],
            ["TPR % (train-on-train)",
             percent(outcome["train_on_train_tpr"]), 76.5],
        ],
        title="Experiment 3 (measured vs paper)",
    )
    record("exp3_perdisci", table)

    from repro.eval.experiments import _evaluate_detector
    from repro.ids import PSigeneDetector

    nine, _ = bench_context.psigene_sets()
    psigene = _evaluate_detector(
        PSigeneDetector(nine), bench_context.datasets
    )
    emit(BenchResult(
        bench="exp3_perdisci",
        kind="experiment",
        seed=2012,
        metrics={
            "fine_grained_clusters": int(
                outcome["fine_grained_clusters"]
            ),
            "clusters_after_filter": int(
                outcome["clusters_after_filter"]
            ),
            "final_signatures": int(outcome["final_signatures"]),
            "tpr": round(float(outcome["tpr"]), 6),
            "fpr": round(float(outcome["fpr"]), 6),
            "train_on_train_tpr": round(
                float(outcome["train_on_train_tpr"]), 6
            ),
            "train_gap": round(
                float(outcome["train_on_train_tpr"] - outcome["tpr"]), 6
            ),
            "psigene_margin": round(
                float(psigene["tpr_sqlmap"] - outcome["tpr"]), 6
            ),
        },
        corpus=context_corpus,
    ))

    # The cluster funnel shrinks at each stage.
    assert (
        outcome["fine_grained_clusters"]
        > outcome["clusters_after_filter"]
        >= outcome["final_signatures"]
    )
    # Fine-grained cluster count lands in the paper's regime.
    assert 80 <= outcome["fine_grained_clusters"] <= 200
    # Key result: terrible generalization, near-zero FPR, strong recall
    # on its own training samples.
    assert outcome["tpr"] < 0.35
    assert outcome["fpr"] < 0.001
    assert outcome["train_on_train_tpr"] > outcome["tpr"] + 0.1
    # pSigene's TPR dwarfs Perdisci's on the same test sets.
    assert psigene["tpr_sqlmap"] > outcome["tpr"] + 0.3
