"""Figure 4 — cumulative TPR of the signature set.

Paper: signatures sorted by quality; signature 1 contributes the most
(19%), signatures 7 and 8 the least (1.64% each); all contribute
non-trivially and the running sum reaches the set's overall TPR.
"""

from repro.bench import BenchResult
from repro.eval import figure4_cumulative_tpr, format_table


def test_figure4(benchmark, bench_context, record, emit, context_corpus):
    rows = benchmark.pedantic(
        figure4_cumulative_tpr, args=(bench_context,),
        rounds=1, iterations=1,
    )
    table = format_table(
        ["RANK", "SIGNATURE", "INDIVIDUAL TPR", "MARGINAL",
         "CUMULATIVE TPR"],
        [
            [r["rank"], r["signature"], f"{r['individual_tpr']:.4f}",
             f"{r['marginal']:.4f}", f"{r['cumulative_tpr']:.4f}"]
            for r in rows
        ],
        title="Figure 4 (measured) — paper: best sig 19%, weakest 1.64%",
    )
    record("figure4_cumulative_tpr", table)

    individual = [r["individual_tpr"] for r in rows]
    cumulative = [r["cumulative_tpr"] for r in rows]
    emit(BenchResult(
        bench="figure4_cumulative_tpr",
        kind="figure",
        seed=2012,
        metrics={
            "signatures": len(rows),
            "top_marginal": round(float(rows[0]["marginal"]), 6),
            "tail_marginal": round(float(rows[-1]["marginal"]), 6),
            "set_tpr": round(float(cumulative[-1]), 6),
        },
        data={"rows": rows},
        corpus=context_corpus,
    ))

    assert len(rows) == len(bench_context.result.signature_set)
    # Ordered best-first and monotone cumulative.
    assert individual == sorted(individual, reverse=True)
    assert all(b >= a - 1e-12 for a, b in zip(cumulative, cumulative[1:]))
    # The top signature carries a large share; the tail still adds some.
    assert rows[0]["marginal"] >= 0.1
    assert cumulative[-1] > 0.7
    # Marginal contributions decay (the paper's concave curve).
    assert rows[0]["marginal"] >= rows[-1]["marginal"]
