"""Experiment 4 extension — cluster-mode parallel matching.

The paper: "the signature matching is completely parallelizable — each
parallel thread can match one signature and this functionality is inbuilt
in Bro (Bro's cluster mode).  But we do not have this obvious performance
optimization implemented yet."  We do: this bench measures the
critical-path speedup as the signature set is sharded across workers.
"""

from repro.eval import format_table
from repro.http import Trace
from repro.ids import ClusterModeEngine


def test_cluster_mode_speedup(benchmark, bench_context, record):
    nine, _ = bench_context.psigene_sets()
    sample = Trace(
        name="sqlmap-sample",
        requests=list(bench_context.datasets.sqlmap.requests[:400]),
    )

    def sweep():
        rows = []
        for workers in (1, 2, 4, len(nine)):
            run = ClusterModeEngine(nine, workers=workers).run(sample)
            rows.append(run)
        return rows

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["WORKERS", "SERIAL µs", "CRITICAL PATH µs", "SPEEDUP", "SHARDS"],
        [
            [run.workers, f"{run.serial_us:.1f}",
             f"{run.critical_path_us:.1f}", f"{run.speedup:.2f}x",
             str(run.shard_sizes)]
            for run in runs
        ],
        title="Experiment 4 extension: Bro-cluster-mode signature sharding",
    )
    record("exp4_parallel", table)

    # Verdicts never change with sharding.
    base = runs[0].alert_flags.tolist()
    assert all(run.alert_flags.tolist() == base for run in runs)
    # More workers, more speedup, approaching the critical-path limit
    # (the most expensive single signature bounds the gain).
    speedups = [run.speedup for run in runs]
    assert speedups[0] <= 1.05
    assert speedups[-1] > 1.2
    assert max(speedups) == speedups[-1] or (
        speedups[-1] > 0.9 * max(speedups)
    )
