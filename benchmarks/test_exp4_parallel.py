"""Experiment 4 extension — cluster-mode parallel matching.

The paper: "the signature matching is completely parallelizable — each
parallel thread can match one signature and this functionality is inbuilt
in Bro (Bro's cluster mode).  But we do not have this obvious performance
optimization implemented yet."  We do: this bench measures the
critical-path speedup as the signature set is sharded across workers
(signature-axis parallelism), and the batch benches below measure the
request-axis fan-out of ``repro.parallel`` — chunked multiprocess feature
extraction and batched signature matching.

Speedup columns are the overhead-corrected critical-path model (slowest
worker's share of measured per-item costs): that is the latency a
core-per-worker deployment exhibits and it is independent of how many
cores this benchmark host happens to have.  Pool wall-clock is reported
alongside, unmodeled.
"""

from repro.bench import BenchResult, corpus_digest
from repro.corpus.grammar import CorpusGenerator
from repro.eval import format_table
from repro.http import Trace
from repro.ids import ClusterModeEngine, PSigeneDetector
from repro.parallel import bench_batch_extraction, bench_batch_matching


def test_cluster_mode_speedup(benchmark, bench_context, record, emit):
    nine, _ = bench_context.psigene_sets()
    sample = Trace(
        name="sqlmap-sample",
        requests=list(bench_context.datasets.sqlmap.requests[:400]),
    )

    def sweep():
        rows = []
        for workers in (1, 2, 4, len(nine)):
            run = ClusterModeEngine(nine, workers=workers).run(sample)
            rows.append(run)
        return rows

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["WORKERS", "SERIAL µs", "CRITICAL PATH µs", "SPEEDUP", "SHARDS"],
        [
            [run.workers, f"{run.serial_us:.1f}",
             f"{run.critical_path_us:.1f}", f"{run.speedup:.2f}x",
             str(run.shard_sizes)]
            for run in runs
        ],
        title="Experiment 4 extension: Bro-cluster-mode signature sharding",
    )
    record("exp4_parallel", table)

    # Verdicts never change with sharding.
    base = runs[0].alert_flags.tolist()
    parity = all(run.alert_flags.tolist() == base for run in runs)
    emit(BenchResult(
        bench="exp4_parallel",
        kind="perf",
        seed=2012,
        metrics={
            "workers_max": int(runs[-1].workers),
            "serial_us": round(float(runs[0].serial_us), 3),
            "critical_path_us_at_max": round(
                float(runs[-1].critical_path_us), 3
            ),
            "speedup_at_max": round(float(runs[-1].speedup), 3),
            "verdict_parity": bool(parity),
        },
        data={"rows": [
            {
                "workers": int(run.workers),
                "serial_us": round(float(run.serial_us), 3),
                "critical_path_us": round(
                    float(run.critical_path_us), 3
                ),
                "speedup": round(float(run.speedup), 3),
                "shard_sizes": [int(s) for s in run.shard_sizes],
            }
            for run in runs
        ]},
        corpus={"sqlmap_sample": corpus_digest(sample.payloads())},
    ))
    assert parity
    # More workers, more speedup, approaching the critical-path limit
    # (the most expensive single signature bounds the gain).
    speedups = [run.speedup for run in runs]
    assert speedups[0] <= 1.05
    assert speedups[-1] > 1.2
    assert max(speedups) == speedups[-1] or (
        speedups[-1] > 0.9 * max(speedups)
    )


def _batch_bench_result(slug, results, by_workers, corpus):
    """Shared artifact shape for the two batch fan-out benches."""
    return BenchResult(
        bench=slug,
        kind="perf",
        seed=2012,
        metrics={
            "serial_us_per_request": round(
                float(by_workers[1].serial_us), 3
            ),
            "modeled_speedup_at_4": round(
                float(by_workers[4].modeled_speedup), 3
            ),
            "modeled_speedup_at_8": round(
                float(by_workers[8].modeled_speedup), 3
            ),
            "identical": bool(all(r.identical for r in results)),
        },
        data={"rows": [
            {
                "workers": int(r.workers),
                "n_chunks": int(r.n_chunks),
                "serial_us": round(float(r.serial_us), 3),
                "critical_path_us": round(float(r.critical_path_us), 3),
                "modeled_speedup": round(float(r.modeled_speedup), 3),
                "pool_wall_s": round(float(r.pool_wall_s), 4),
            }
            for r in results
        ]},
        corpus=corpus,
    )


def test_bench_batch_extraction(benchmark, record, emit):
    """Chunked multiprocess feature extraction over a 3k-sample corpus."""
    payloads = [
        s.payload for s in CorpusGenerator(seed=2012).generate(3000)
    ]

    def sweep():
        return bench_batch_extraction(payloads, workers=(1, 2, 4, 8))

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["WORKERS", "CHUNKS", "SERIAL µs/req", "CRITICAL µs/req",
         "MODELED SPEEDUP", "POOL WALL s", "IDENTICAL"],
        [
            [r.workers, r.n_chunks, f"{r.serial_us:.1f}",
             f"{r.critical_path_us:.1f}", f"{r.modeled_speedup:.2f}x",
             f"{r.pool_wall_s:.2f}", "yes" if r.identical else "NO"]
            for r in results
        ],
        title=(
            "Experiment 4 extension: batch feature extraction "
            f"({len(payloads)} samples, full catalog)"
        ),
    )
    record("exp4_batch_extraction", table)
    by_workers = {r.workers: r for r in results}
    emit(_batch_bench_result(
        "exp4_batch_extraction", results, by_workers,
        corpus={"grammar_corpus": corpus_digest(payloads)},
    ))

    # Parallel output is bit-identical to serial at every worker count.
    assert all(r.identical for r in results)
    # One worker = no fan-out = no modeled gain.
    assert by_workers[1].modeled_speedup <= 1.05
    # The ISSUE's bar: >= 1.5x modeled extraction speedup at 4 workers.
    assert by_workers[4].modeled_speedup >= 1.5


def test_bench_batch_matching(benchmark, bench_context, record, emit):
    """Request-axis fan-out of signature matching (run_batch)."""
    nine, _ = bench_context.psigene_sets()
    requests = list(bench_context.datasets.sqlmap.requests[:600])
    requests += list(bench_context.datasets.benign.requests[:600])
    trace = Trace(name="mixed-sample", requests=requests)
    detector = PSigeneDetector(nine)

    def sweep():
        return bench_batch_matching(detector, trace, workers=(1, 2, 4, 8))

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["WORKERS", "CHUNKS", "SERIAL µs/req", "CRITICAL µs/req",
         "MODELED SPEEDUP", "POOL WALL s", "IDENTICAL"],
        [
            [r.workers, r.n_chunks, f"{r.serial_us:.1f}",
             f"{r.critical_path_us:.1f}", f"{r.modeled_speedup:.2f}x",
             f"{r.pool_wall_s:.2f}", "yes" if r.identical else "NO"]
            for r in results
        ],
        title=(
            "Experiment 4 extension: batched signature matching "
            f"({len(trace)} requests, {len(nine)} signatures)"
        ),
    )
    record("exp4_batch_matching", table)
    by_workers = {r.workers: r for r in results}
    emit(_batch_bench_result(
        "exp4_batch_matching", results, by_workers,
        corpus={"mixed_sample": corpus_digest(trace.payloads())},
    ))

    assert all(r.identical for r in results)
    assert by_workers[1].modeled_speedup <= 1.05
    assert by_workers[4].modeled_speedup >= 1.5
