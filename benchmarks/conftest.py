"""Benchmark fixtures: a bench-scale evaluation context shared by every
table/figure benchmark, plus result recording into benchmarks/results/.

Scale: the paper trains on 30,000 crawled samples and tests on ~7,200 +
8,578 attacks and 1.4M benign requests.  The bench context uses 3,000
training samples (crawled), the full 136-vulnerability application (so the
attack test sets match the paper's sizes), and 20,000 benign requests —
large enough to resolve FPRs at the 0.01% level while keeping the whole
bench suite in minutes.  EXPERIMENTS.md records a full-scale run.
"""

import os

import pytest

from repro.eval import EvaluationContext

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def bench_context():
    return EvaluationContext.build(
        seed=2012,
        n_attack_samples=3000,
        n_benign_train=8000,
        n_benign_test=20_000,
        max_cluster_rows=1500,
        n_vulnerabilities=136,
    )


@pytest.fixture(scope="session")
def record():
    """Writer that saves each regenerated artifact under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _write
