"""Benchmark fixtures: a bench-scale evaluation context shared by every
table/figure benchmark, plus result recording into benchmarks/results/.

Scale: the paper trains on 30,000 crawled samples and tests on ~7,200 +
8,578 attacks and 1.4M benign requests.  The bench context uses 3,000
training samples (crawled), the full 136-vulnerability application (so the
attack test sets match the paper's sizes), and 20,000 benign requests —
large enough to resolve FPRs at the 0.01% level while keeping the whole
bench suite in minutes.  EXPERIMENTS.md records a full-scale run.

Every bench writes two artifacts: a human-readable text table via
``record`` and a schema-versioned ``BENCH_<slug>.json`` via ``emit``
(the shared :mod:`repro.bench` writer), so the whole evaluation has a
machine-readable trajectory that ``scripts/ci_bench_guard.py`` floors
and ``scripts/reproduce_all.py`` folds into ``SUMMARY.json``.  Both
honour the ``REPRO_BENCH_RESULTS_DIR`` override.
"""

import os

import pytest

from repro.bench import BenchResult, corpus_digest, results_dir, write_artifact
from repro.eval import EvaluationContext

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

try:
    import pytest_benchmark  # noqa: F401

    _HAVE_BENCHMARK_PLUGIN = True
except ImportError:
    _HAVE_BENCHMARK_PLUGIN = False


if not _HAVE_BENCHMARK_PLUGIN:
    # Minimal environments (the CI reproduce-quick step installs only the
    # core dependencies) still need the artifact bundle to regenerate:
    # stand in for pytest-benchmark's fixture, running the measured
    # callable once without timing statistics.
    class _FallbackBenchmark:
        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, rounds=1,
                     iterations=1):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _FallbackBenchmark()


@pytest.fixture(scope="session")
def bench_context():
    return EvaluationContext.build(
        seed=2012,
        n_attack_samples=3000,
        n_benign_train=8000,
        n_benign_test=20_000,
        max_cluster_rows=1500,
        n_vulnerabilities=136,
    )


@pytest.fixture(scope="session")
def context_corpus(bench_context):
    """Content hashes of the shared context's test corpora."""
    datasets = bench_context.datasets
    return {
        "sqlmap": corpus_digest(datasets.sqlmap.payloads()),
        "arachni": corpus_digest(datasets.arachni.payloads()),
        "benign": corpus_digest(datasets.benign.payloads()),
    }


@pytest.fixture(scope="session")
def record():
    """Writer that saves each regenerated text artifact under results/."""

    def _write(name: str, text: str) -> None:
        path = os.path.join(results_dir(), f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _write


@pytest.fixture(scope="session")
def emit():
    """Writer that saves one ``BENCH_<slug>.json`` per bench result."""

    def _emit(result: BenchResult) -> str:
        path = write_artifact(result)
        print(f"[saved to {path}]")
        return path

    return _emit
