"""Micro-benchmarks of the substrate hot paths.

These are the pieces whose constant factors decide whether the system
scales to the paper's 30,000 × 477 extraction and 1.4M-request test runs:
normalization, feature extraction, UPGMA, and logistic training.
"""

import time

import numpy as np

from repro.bench import BenchResult
from repro.cluster import upgma
from repro.corpus import CorpusGenerator
from repro.features import FeatureExtractor
from repro.learn import train_logistic
from repro.normalize import normalize

PAYLOAD = "id=1%2527/**/UNION/**/SELECT/**/1,2,concat(database()),4--%20-"


def test_normalize_speed(benchmark):
    out = benchmark(normalize, PAYLOAD)
    assert "union select" in out


def test_feature_extraction_speed(benchmark):
    extractor = FeatureExtractor()
    vector = benchmark(extractor.extract, PAYLOAD)
    assert vector.sum() > 0


def test_extraction_batch_speed(benchmark):
    extractor = FeatureExtractor()
    payloads = [
        s.payload for s in CorpusGenerator(seed=3).generate(100)
    ]
    matrix = benchmark.pedantic(
        extractor.extract_many, args=(payloads,), rounds=2, iterations=1
    )
    assert matrix.n_samples == 100


def test_upgma_speed_500_points(benchmark):
    rng = np.random.default_rng(0)
    points = rng.normal(size=(500, 40))
    linkage = benchmark.pedantic(
        upgma, args=(points,), rounds=2, iterations=1
    )
    assert linkage.shape == (499, 4)


def test_logistic_training_speed(benchmark):
    rng = np.random.default_rng(1)
    x = np.vstack([
        rng.poisson(1.0, (2000, 15)), rng.poisson(2.5, (2000, 15))
    ]).astype(float)
    y = np.concatenate([np.zeros(2000), np.ones(2000)])
    model, report = benchmark.pedantic(
        train_logistic, args=(x, y), rounds=2, iterations=1
    )
    assert report.newton_iterations >= 1


def test_crawl_speed(benchmark):
    from repro.crawler import CrawlSession, SimulatedWeb

    def crawl():
        web = SimulatedWeb(corpus_size=200, seed=5)
        return CrawlSession(web).run()

    report = benchmark.pedantic(crawl, rounds=1, iterations=1)
    assert len(report.samples) >= 180


def test_nfa_vs_backtracking_speed(benchmark):
    """The linear-time guarantee: the NFA engine on a ReDoS payload."""
    from repro.regexlib import NfaMatcher

    matcher = NfaMatcher(r"(a+)+b")
    payload = "a" * 300 + "c"

    result = benchmark(matcher.search, payload)
    assert result is False


def _best_of_us(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e6


def test_micro_substrates_artifact(emit):
    """One machine-readable artifact summarizing the substrate hot paths.

    pytest-benchmark keeps its own JSON, but the shared trajectory wants
    every bench under the one BenchResult schema, so this re-times the
    same operations with quick best-of-N wall clocks.
    """
    extractor = FeatureExtractor()
    extractor.extract(PAYLOAD)  # warm regex caches
    payloads = [s.payload for s in CorpusGenerator(seed=3).generate(100)]
    rng = np.random.default_rng(0)
    points = rng.normal(size=(300, 40))
    x = np.vstack([
        rng.poisson(1.0, (1000, 15)), rng.poisson(2.5, (1000, 15))
    ]).astype(float)
    y = np.concatenate([np.zeros(1000), np.ones(1000)])

    normalize_us = _best_of_us(lambda: normalize(PAYLOAD))
    extract_us = _best_of_us(lambda: extractor.extract(PAYLOAD))
    batch_us = _best_of_us(lambda: extractor.extract_many(payloads))
    upgma_us = _best_of_us(lambda: upgma(points), rounds=2)
    logistic_us = _best_of_us(lambda: train_logistic(x, y), rounds=2)

    emit(BenchResult(
        bench="micro_substrates",
        kind="perf",
        seed=2012,
        metrics={
            "normalize_us": round(normalize_us, 3),
            "extract_us": round(extract_us, 3),
            "extract_batch100_us": round(batch_us, 3),
            "upgma_300x40_us": round(upgma_us, 3),
            "logistic_2000x15_us": round(logistic_us, 3),
            "extract_batch_per_payload_us": round(batch_us / 100, 3),
        },
    ))

    assert normalize_us > 0.0
    assert batch_us > extract_us
