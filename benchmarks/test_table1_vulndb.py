"""Table I — July 2012 SQLi vulnerabilities and the corpus coverage check.

Paper: four example rows (Joomla RSGallery CVE-2012-3554, Drupal
Addressbook CVE-2012-2306, Moodle feedback CVE-2012-3395, RTG
CVE-2012-3881); Section II-A reports that for every one of the ~30
high/medium-risk MySQL-backed vulnerabilities of that month, the crawled
dataset contained launchable attack samples.
"""

from repro.bench import BenchResult
from repro.eval import format_table, table1_vulnerability_coverage


def test_table1(benchmark, bench_context, record, emit):
    result = benchmark.pedantic(
        table1_vulnerability_coverage, args=(bench_context,),
        rounds=1, iterations=1,
    )
    table = format_table(
        ["VULNERABILITY", "CVE ID"],
        [[r["vulnerability"], r["cve"]] for r in result["table1_rows"]],
        title=(
            "Table I (reproduced records); coverage "
            f"{result['covered']}/{result['cohort_size']} (paper: all ~30)"
        ),
    )
    record("table1_vulndb", table)

    emit(BenchResult(
        bench="table1_vulndb",
        kind="table",
        seed=2012,
        metrics={
            "printed_rows": len(result["table1_rows"]),
            "cohort_size": int(result["cohort_size"]),
            "covered": int(result["covered"]),
            "coverage_ratio": round(
                float(result["covered"] / result["cohort_size"]), 6
            ),
        },
        data={"rows": result["table1_rows"]},
    ))

    assert len(result["table1_rows"]) == 4
    assert result["cohort_size"] >= 28
    # The paper found samples for every reviewed vulnerability.
    assert result["covered"] == result["cohort_size"]
