"""Ablation — incremental-update strategy (the paper's open design choice).

Section VI: "Future work will include the implementation of the
incremental update operation.  This task has some open design choices in
terms of the machine learning technique to use and empirical evidence is
needed to guide our choice."  This bench provides that evidence: full
phase-4 retraining versus a Θ-only warm-started Newton refit, compared on
detection quality and optimizer work.
"""

from repro.bench import BenchResult
from repro.core.incremental import incremental_update
from repro.eval import format_table, percent
from repro.ids import PSigeneDetector, SignatureEngine


def _measure(context, signature_set):
    engine = SignatureEngine(PSigeneDetector(signature_set))
    attacks = engine.run(context.datasets.sqlmap)
    benign = engine.run(context.datasets.benign)
    return (
        float(attacks.alert_flags.mean()),
        float(benign.alert_flags.mean()),
    )


def test_incremental_strategy_ablation(benchmark, bench_context, record,
                                       emit, context_corpus):
    fresh = bench_context.datasets.sqlmap.subsample(0.2, seed=200)

    def run_both():
        retrain = incremental_update(
            bench_context.pipeline, bench_context.result,
            fresh.payloads(), strategy="retrain",
        )
        warm = incremental_update(
            bench_context.pipeline, bench_context.result,
            fresh.payloads(), strategy="warm",
        )
        return retrain, warm

    retrain, warm = benchmark.pedantic(run_both, rounds=1, iterations=1)
    retrain_tpr, retrain_fpr = _measure(bench_context, retrain.signature_set)
    warm_tpr, warm_fpr = _measure(bench_context, warm.signature_set)

    table = format_table(
        ["STRATEGY", "NEWTON ITERATIONS", "TPR%(SQLmap)", "FPR%"],
        [
            ["full retrain", retrain.newton_iterations,
             percent(retrain_tpr), percent(retrain_fpr, 4)],
            ["warm-started Θ refit", warm.newton_iterations,
             percent(warm_tpr), percent(warm_fpr, 4)],
        ],
        title="Ablation: incremental update strategy (paper future work)",
    )
    record("ablation_incremental_strategy", table)

    emit(BenchResult(
        bench="ablation_incremental_strategy",
        kind="ablation",
        seed=2012,
        metrics={
            "retrain_iterations": int(retrain.newton_iterations),
            "warm_iterations": int(warm.newton_iterations),
            "iteration_savings": int(
                retrain.newton_iterations - warm.newton_iterations
            ),
            "retrain_tpr": round(float(retrain_tpr), 6),
            "warm_tpr": round(float(warm_tpr), 6),
            "retrain_fpr": round(float(retrain_fpr), 6),
            "warm_fpr": round(float(warm_fpr), 6),
        },
        corpus=context_corpus,
    ))

    # The empirical evidence the paper asked for: warm restarts cost a
    # fraction of the optimizer work at comparable detection quality.
    assert warm.newton_iterations < retrain.newton_iterations
    assert warm_tpr > retrain_tpr - 0.08
    assert warm_fpr < 0.005
