"""Experiment 2 — incremental learning.

Paper: folding 20% of the SQLmap test set into training raises TPR from
86.53% to 89.13% (FPR 0.037% → 0.039%); 40% raises it to 91.15% (FPR
0.044%) — roughly +2% TPR per increment with a slight FPR cost, and the
update is fully automatic.
"""

from repro.bench import BenchResult
from repro.eval import experiment2_incremental, format_table, percent


def test_experiment2(benchmark, bench_context, record, emit, context_corpus):
    rows = benchmark.pedantic(
        experiment2_incremental, args=(bench_context,),
        kwargs={"fractions": (0.2, 0.4)}, rounds=1, iterations=1,
    )
    table = format_table(
        ["TRAINING AUGMENTED WITH", "TPR%(SQLmap)", "FPR%"],
        [
            [f"{r['added_fraction']:.0%} of SQLmap set",
             percent(r["tpr_sqlmap"]), percent(r["fpr"], 4)]
            for r in rows
        ],
        title=(
            "Experiment 2 (measured) — paper: 86.53/0.037 → 89.13/0.039 "
            "→ 91.15/0.044"
        ),
    )
    record("exp2_incremental", table)

    base, plus20, plus40 = rows
    emit(BenchResult(
        bench="exp2_incremental",
        kind="experiment",
        seed=2012,
        metrics={
            "tpr_base": round(float(base["tpr_sqlmap"]), 6),
            "tpr_plus20": round(float(plus20["tpr_sqlmap"]), 6),
            "tpr_plus40": round(float(plus40["tpr_sqlmap"]), 6),
            "fpr_base": round(float(base["fpr"]), 6),
            "fpr_plus40": round(float(plus40["fpr"]), 6),
            "tpr_gain_40": round(
                float(plus40["tpr_sqlmap"] - base["tpr_sqlmap"]), 6
            ),
            "fpr_cost_40": round(float(plus40["fpr"] - base["fpr"]), 6),
        },
        data={"rows": rows},
        corpus=context_corpus,
    ))
    # TPR must not degrade and should improve by the 40% round.
    assert plus20["tpr_sqlmap"] >= base["tpr_sqlmap"] - 0.01
    assert plus40["tpr_sqlmap"] >= base["tpr_sqlmap"]
    # Improvements are incremental, not transformative (paper: ~2%/round).
    assert plus40["tpr_sqlmap"] - base["tpr_sqlmap"] < 0.25
    # FPR stays in the same regime.
    assert plus40["fpr"] <= base["fpr"] + 0.002
