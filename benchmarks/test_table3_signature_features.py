"""Table III — the features included in one signature (the paper prints
signature 6: six features, among them ``=``, ``=[-0-9\\%]*``,
``<=>|r?like|sounds\\s+like|regex``, ``([^a-zA-Z&]+)?&|exists``, and
``\\)?;``) together with its trained Θ (Section II-D prints
Θ₆ᵀ = −3.761054 + 0.262131·f25 + ...).
"""

from repro.bench import BenchResult
from repro.eval import format_table, table3_signature_features


def test_table3(benchmark, bench_context, record, emit):
    # The paper picks bicluster 6; we print the mid-sized signature of the
    # measured set (paper signature 6 had 6 features — small).
    signatures = sorted(
        bench_context.result.signature_set,
        key=lambda s: s.n_features,
    )
    target = signatures[len(signatures) // 2]
    result = benchmark.pedantic(
        table3_signature_features,
        args=(bench_context,),
        kwargs={"bicluster_index": target.bicluster_index},
        rounds=1, iterations=1,
    )
    table = format_table(
        ["FEATURE NUMBER", "FEATURE (Regular Expression)"],
        [[f["number"], f["pattern"]] for f in result["features"]],
        title=(
            f"Table III analogue: features of signature "
            f"{result['bicluster']}\n{result['describe'][:200]}"
        ),
    )
    record("table3_signature_features", table)

    emit(BenchResult(
        bench="table3_signature_features",
        kind="table",
        seed=2012,
        metrics={
            "bicluster": int(result["bicluster"]),
            "n_features": len(result["features"]),
            "theta_len": len(result["theta"]),
            "theta_consistent": (
                len(result["theta"]) == len(result["features"]) + 1
                and result["theta"][0] != 0.0
            ),
            "intercept": round(float(result["theta"][0]), 6),
        },
        data={
            "features": result["features"],
            "theta": [round(float(t), 6) for t in result["theta"]],
        },
    ))

    # Shape: a signature is a small feature subset with a full Θ vector
    # (intercept + one weight per feature), exactly the paper's form.
    assert 1 <= len(result["features"]) <= 40
    assert len(result["theta"]) == len(result["features"]) + 1
    assert result["theta"][0] != 0.0  # trained intercept
