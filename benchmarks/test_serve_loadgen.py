"""Gateway load bench: sustained throughput, shed rate, tail latency.

Replays the deterministic loadgen mix (SQLmap + Vega scans interleaved
with benign portal traffic) through an in-process gateway for two
detectors at two admission-queue bounds under the ``shed`` policy.
The contrast is the point: a tight queue sheds aggressively to keep
admitted-request latency flat, a roomy one absorbs the burst and pushes
the tail out instead.  Parity with the offline engine is asserted on
every serviced response.

Saved to ``results/serve_loadgen.txt``.
"""

import asyncio

import pytest

from repro.bench import BenchResult, corpus_digest
from repro.core import PipelineConfig, PSigenePipeline
from repro.ids import PSigeneDetector
from repro.ids.rulesets import build_modsec_ruleset
from repro.serve import SignatureStore, build_load_trace, run_loadgen

QUEUE_BOUNDS = (8, 256)
CONNECTIONS = 16
WINDOW = 16  # max outstanding = 256: the roomy queue rarely sheds
WORKERS = 4


@pytest.fixture(scope="module")
def detectors():
    result = PSigenePipeline(PipelineConfig(
        seed=2012,
        n_attack_samples=1200,
        n_benign_train=3000,
        max_cluster_rows=800,
    )).run()
    return [
        PSigeneDetector(
            result.signature_set,
            name=f"psigene({len(result.signature_set)} signatures)",
        ),
        build_modsec_ruleset(),
    ]


def test_serve_loadgen(detectors, record, emit):
    trace = build_load_trace(seed=7, n_benign=2000, n_vulnerabilities=12)
    payloads = trace.payloads()
    header = (
        f"{'detector':<24} {'queue':>5} {'policy':>6} {'req/s':>9} "
        f"{'svc/s':>9} {'shed%':>6} {'p50ms':>7} {'p95ms':>7} "
        f"{'p99ms':>7} {'parity':>7}"
    )
    lines = [
        "Gateway load generator (shed policy, "
        f"{CONNECTIONS} connections x window {WINDOW}, "
        f"{WORKERS} workers, {len(payloads)} payloads)",
        header,
        "-" * len(header),
    ]
    runs = []
    for detector in detectors:
        for bound in QUEUE_BOUNDS:
            report = asyncio.run(run_loadgen(
                SignatureStore(detector),
                payloads,
                queue_bound=bound,
                policy="shed",
                workers=WORKERS,
                connections=CONNECTIONS,
                window=WINDOW,
            ))
            assert report.parity is not None and report.parity.ok
            assert report.completed + report.shed == report.requests
            latency = report.latency_ms
            runs.append({
                "detector": report.detector,
                "queue_bound": bound,
                "policy": report.policy,
                "requests": int(report.requests),
                "completed": int(report.completed),
                "shed": int(report.shed),
                "shed_rate": round(float(report.shed_rate), 6),
                "p50_ms": round(float(latency["p50_ms"]), 3),
                "p95_ms": round(float(latency["p95_ms"]), 3),
                "p99_ms": round(float(latency["p99_ms"]), 3),
                "parity_ok": bool(report.parity.ok),
            })
            lines.append(
                f"{report.detector:<24} {bound:>5} {report.policy:>6} "
                f"{report.throughput_rps:>9,.0f} "
                f"{report.serviced_rps:>9,.0f} "
                f"{100 * report.shed_rate:>5.1f}% "
                f"{latency['p50_ms']:>7.3f} {latency['p95_ms']:>7.3f} "
                f"{latency['p99_ms']:>7.3f} "
                f"{'OK' if report.parity.ok else 'FAIL':>7}"
            )
    record("serve_loadgen", "\n".join(lines))

    emit(BenchResult(
        bench="serve_loadgen",
        kind="perf",
        seed=2012,
        metrics={
            "requests": runs[0]["requests"],
            "detectors": len(detectors),
            "queue_bounds": len(QUEUE_BOUNDS),
            "parity_ok": all(r["parity_ok"] for r in runs),
            "tight_queue_shed_rate": runs[0]["shed_rate"],
            "roomy_queue_shed_rate": runs[1]["shed_rate"],
        },
        data={"trace_seed": 7, "runs": runs},
        corpus={"loadgen_trace": corpus_digest(payloads)},
    ))
