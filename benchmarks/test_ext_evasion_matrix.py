"""Extension — evasion-technique detection matrix.

Localizes the Table V mechanism: which evasion classes each detector
survives.  Expected shape: every detector catches the plain payloads;
pSigene and ModSec (full normalization) hold up under encoding evasions;
Snort and Bro (single-pass decode) fall to double encoding, %u escapes,
fullwidth unicode, and inline-comment splitting.
"""

from repro.bench import BenchResult
from repro.eval import format_table
from repro.eval.evasion import TECHNIQUES, evasion_matrix
from repro.ids import PSigeneDetector
from repro.ids.rulesets import (
    build_bro_ruleset,
    build_merged_snort_et_ruleset,
    build_modsec_ruleset,
)


def test_evasion_matrix(benchmark, bench_context, record, emit):
    nine, _ = bench_context.psigene_sets()
    detectors = [
        PSigeneDetector(nine, name="psigene"),
        build_modsec_ruleset(),
        build_merged_snort_et_ruleset(),
        build_bro_ruleset(),
    ]
    cells = benchmark.pedantic(
        evasion_matrix, args=(detectors,), rounds=1, iterations=1
    )
    by_key = {(c.technique, c.detector): c for c in cells}
    names = [d.name for d in detectors]
    rows = []
    for technique, _ in TECHNIQUES:
        rows.append(
            [technique] + [
                f"{by_key[(technique, name)].recall:.2f}"
                for name in names
            ]
        )
    table = format_table(
        ["EVASION TECHNIQUE"] + names, rows,
        title="Extension: per-technique recall",
    )
    record("ext_evasion_matrix", table)

    def recall(technique, detector):
        return by_key[(technique, detector)].recall

    evasion_techniques = ("double-encoding", "inline-comments",
                          "unicode-%u", "fullwidth-unicode")
    emit(BenchResult(
        bench="ext_evasion_matrix",
        kind="extension",
        seed=2012,
        metrics={
            "techniques": len(TECHNIQUES),
            "detectors": len(names),
            "psigene_min_identity": round(
                float(recall("identity", "psigene")), 6
            ),
            "psigene_min_evasion_recall": round(
                min(
                    float(recall(t, "psigene"))
                    for t in evasion_techniques
                ), 6
            ),
            "modsec_min_evasion_recall": round(
                min(
                    float(recall(t, "modsecurity"))
                    for t in evasion_techniques
                ), 6
            ),
        },
        data={
            "recall": {
                technique: {
                    name: round(float(recall(technique, name)), 6)
                    for name in names
                }
                for technique, _ in TECHNIQUES
            },
        },
    ))

    # Everyone handles the control row.
    for name in names:
        assert recall("identity", name) >= 0.8, name
    # Normalizing detectors survive the encoding techniques.
    for technique in ("double-encoding", "inline-comments", "unicode-%u",
                      "fullwidth-unicode"):
        assert recall(technique, "psigene") >= 0.6, technique
        assert recall(technique, "modsecurity") >= 0.6, technique
    # Single-decode engines lose to at least two encoding techniques.
    for detector in ("snort-et", "bro"):
        beaten = sum(
            1 for technique in ("double-encoding", "unicode-%u",
                                "fullwidth-unicode", "inline-comments")
            if recall(technique, detector) < recall("identity", detector)
        )
        assert beaten >= 2, detector
