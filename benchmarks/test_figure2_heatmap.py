"""Figure 2 — heat map with two dendrograms of the training matrix.

Paper: the 30,000 × 159 standardized matrix reordered by the two HAC
dendrograms exposes eleven biclusters, two of which (9 and 10) are black
holes; the sample dendrogram's cophenetic correlation coefficient is 0.92.
"""

import os

from repro.bench import BenchResult, results_dir
from repro.cluster.heatmap import render_ppm
from repro.eval import figure2_heatmap


def test_figure2(benchmark, bench_context, record, emit):
    heatmap, text = benchmark.pedantic(
        figure2_heatmap, args=(bench_context,), rounds=1, iterations=1
    )
    cophenetic = bench_context.result.biclustering.cophenetic_correlation
    black_holes = sum(
        1 for b in bench_context.result.biclusters if b.is_black_hole
    )
    total = len(bench_context.result.biclusters)
    header = (
        f"Figure 2 (text rendering; right margin = bicluster id)\n"
        f"biclusters selected: {total} (paper: 11), black holes: "
        f"{black_holes} (paper: 2), cophenetic correlation: "
        f"{cophenetic:.3f} (paper: 0.92)\n"
    )
    record("figure2_heatmap", header + text)

    render_ppm(heatmap, os.path.join(results_dir(), "figure2_heatmap.ppm"))

    labels = heatmap.row_cluster_of
    nonzero = labels[labels > 0]
    transitions = sum(1 for a, b in zip(nonzero, nonzero[1:]) if a != b)
    emit(BenchResult(
        bench="figure2_heatmap",
        kind="figure",
        seed=2012,
        metrics={
            "biclusters": total,
            "black_holes": black_holes,
            "cophenetic": round(float(cophenetic), 6),
            "row_transitions": transitions,
            "heatmap_rows": int(heatmap.z.shape[0]),
            "heatmap_cols": int(heatmap.z.shape[1]),
        },
    ))

    # Shape assertions.
    assert 6 <= total <= 11
    assert 1 <= black_holes <= 3
    assert cophenetic > 0.6
    # The heatmap rows must group bicluster members contiguously.
    assert transitions <= total + 2
