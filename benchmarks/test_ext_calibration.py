"""Extension — are the signature probabilities honest?

Section II-D interprets the sigmoid output as "the estimated probability
that a sample belongs to a class" and Section IV's operating guidance
rests on that reading.  This bench runs a reliability analysis over the
test traffic: expected calibration error, Brier score, and the
reliability bins behind them.
"""

import numpy as np

from repro.bench import BenchResult
from repro.eval import format_table
from repro.learn.calibration import calibration_report


def test_signature_probability_calibration(benchmark, bench_context,
                                           record, emit, context_corpus):
    nine, _ = bench_context.psigene_sets()
    datasets = bench_context.datasets

    def build_report():
        attacks = bench_context.signature_scores(
            nine, datasets.sqlmap
        ).max(axis=1)
        benign = bench_context.signature_scores(
            nine, datasets.benign
        ).max(axis=1)
        scores = np.concatenate([attacks, benign])
        labels = np.concatenate([
            np.ones(attacks.size), np.zeros(benign.size)
        ])
        return calibration_report(scores, labels, n_bins=10)

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    table = format_table(
        ["BIN", "COUNT", "MEAN PREDICTED", "OBSERVED ATTACK RATE", "GAP"],
        [
            [f"[{b.low:.1f},{b.high:.1f})", b.count,
             f"{b.mean_predicted:.3f}", f"{b.observed_rate:.3f}",
             f"{b.gap:.3f}"]
            for b in report.bins
        ],
        title=(
            f"Extension: signature-probability reliability — "
            f"ECE={report.ece:.4f}, Brier={report.brier:.4f} over "
            f"{report.n_samples} requests"
        ),
    )
    record("ext_calibration", table)

    emit(BenchResult(
        bench="ext_calibration",
        kind="extension",
        seed=2012,
        metrics={
            "ece": round(float(report.ece), 6),
            "brier": round(float(report.brier), 6),
            "n_samples": int(report.n_samples),
            "low_bin_rate": round(float(report.bins[0].observed_rate), 6),
            "high_bin_rate": round(
                float(report.bins[-1].observed_rate), 6
            ),
        },
        data={
            "bins": [
                {
                    "low": round(float(b.low), 3),
                    "high": round(float(b.high), 3),
                    "count": int(b.count),
                    "mean_predicted": round(float(b.mean_predicted), 6),
                    "observed_rate": round(float(b.observed_rate), 6),
                }
                for b in report.bins
            ],
        },
        corpus=context_corpus,
    ))

    # The probabilistic interpretation must hold at the extremes: the
    # lowest bin is overwhelmingly benign, the highest overwhelmingly
    # attacks, and the overall error scores stay small.
    assert report.bins[0].observed_rate < 0.2
    assert report.bins[-1].observed_rate > 0.8
    assert report.brier < 0.1
    assert report.ece < 0.12
