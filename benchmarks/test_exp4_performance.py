"""Experiment 4 — performance evaluation.

Paper: pSigene's per-request processing time is 390/995/1950 µs
(min/avg/max) on a 700 MHz machine — a slowdown of ~17× versus ModSec and
~11× versus Bro, attributed to the many ``count_all()`` invocations; the
authors argue the <2 ms worst case keeps matching off the critical path.

Absolute numbers here reflect this machine; the asserted shape is the
ordering and the roughly-order-of-magnitude slowdown.
"""

from repro.bench import BenchResult
from repro.eval import experiment4_performance, format_table


def test_experiment4(benchmark, bench_context, record, emit, context_corpus):
    rows = benchmark.pedantic(
        experiment4_performance, args=(bench_context,),
        kwargs={"sample_requests": 1200}, rounds=1, iterations=1,
    )
    by_name = {r["detector"]: r for r in rows}
    psigene = by_name["psigene"]
    modsec = by_name["modsecurity"]
    bro = by_name["bro"]
    table = format_table(
        ["DETECTOR", "MIN µs", "AVG µs", "MAX µs", "pSigene SLOWDOWN"],
        [
            [r["detector"], r["min_us"], r["avg_us"], r["max_us"],
             f"{psigene['avg_us'] / r['avg_us']:.1f}x"]
            for r in rows
        ],
        title=(
            "Experiment 4 (measured) — paper: pSigene 390/995/1950 µs; "
            "17x vs ModSec, 11x vs Bro"
        ),
    )
    record("exp4_performance", table)

    emit(BenchResult(
        bench="exp4_performance",
        kind="experiment",
        seed=2012,
        metrics={
            "psigene_min_us": round(float(psigene["min_us"]), 3),
            "psigene_avg_us": round(float(psigene["avg_us"]), 3),
            "psigene_max_us": round(float(psigene["max_us"]), 3),
            "modsec_avg_us": round(float(modsec["avg_us"]), 3),
            "bro_avg_us": round(float(bro["avg_us"]), 3),
            "slowdown_vs_modsec": round(
                float(psigene["avg_us"] / modsec["avg_us"]), 3
            ),
            "slowdown_vs_bro": round(
                float(psigene["avg_us"] / bro["avg_us"]), 3
            ),
        },
        data={"rows": rows},
        corpus=context_corpus,
    ))

    # pSigene is the slowest detector (many count_all invocations).
    assert psigene["avg_us"] > modsec["avg_us"]
    assert psigene["avg_us"] > bro["avg_us"]
    # The slowdown is in the "several-fold to order-of-magnitude" band.
    assert 1.5 < psigene["avg_us"] / modsec["avg_us"] < 100
    assert 1.5 < psigene["avg_us"] / bro["avg_us"] < 100
    # Worst case stays in the paper's "not a bottleneck" regime (< 20 ms
    # even on a shared CI machine).
    assert psigene["max_us"] < 20_000


def test_count_all_throughput(benchmark, bench_context):
    """Micro-benchmark of the hot function: one signature evaluation."""
    signature = bench_context.result.signature_set[0]
    payload = bench_context.pipeline.normalizer(
        "id=1' union select 1,2,concat(database(),char(58)),4-- -"
    )
    probability = benchmark(signature.probability, payload)
    assert 0.0 <= probability <= 1.0
