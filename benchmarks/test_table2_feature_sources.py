"""Table II — sources of SQLi features.

Paper: three sources — MySQL reserved words, NIDS/WAF signatures
(deconstructed into components), and SQLi reference documents — feeding an
initial catalog of 477 features, reduced to 159 active ones by pruning
(the pruning half is asserted against the bench corpus here).
"""

from repro.bench import BenchResult
from repro.eval import format_table, table2_feature_sources


def test_table2(benchmark, bench_context, record, emit):
    rows = benchmark.pedantic(table2_feature_sources, rounds=1, iterations=1)
    table = format_table(
        ["FEATURE SOURCE", "FEATURES", "EXAMPLES"],
        [
            [r["source"], r["features"], "; ".join(r["examples"][:2])]
            for r in rows
        ],
        title="Table II (measured) — paper: 3 sources, 477 initial features",
    )
    record("table2_feature_sources", table)

    pruning = bench_context.result.pruning
    emit(BenchResult(
        bench="table2_feature_sources",
        kind="table",
        seed=2012,
        metrics={
            "sources": len(rows),
            "initial_features": int(
                sum(r["features"] for r in rows)
            ),
            "final_features": int(pruning.final_features),
        },
        data={"rows": rows},
    ))

    assert len(rows) == 3
    assert sum(r["features"] for r in rows) == 477

    # The pruning companion fact: 477 → paper's 159; ours lands in the
    # same regime (an order-one fraction survives).
    assert pruning.initial_features == 477
    assert 80 <= pruning.final_features <= 250
