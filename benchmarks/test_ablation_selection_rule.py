"""Ablation — the 5% bicluster-selection rule.

Section III-D selects biclusters holding ≥5% of the training samples.
This bench sweeps the threshold and reports how many biclusters survive
and how much of the corpus they cover — the trade the rule navigates:
lower thresholds admit noisy micro-clusters, higher ones discard whole
attack families.
"""

import numpy as np

from repro.bench import BenchResult
from repro.cluster import Biclusterer
from repro.eval import format_table


def _sweep(context):
    matrix = context.result.matrix
    rng = np.random.default_rng(context.pipeline.config.seed + 2)
    cap = context.pipeline.config.max_cluster_rows
    n = matrix.n_samples
    subset = (
        np.sort(rng.choice(n, cap, replace=False)) if n > cap
        else np.arange(n)
    )
    counts = matrix.counts[subset]
    rows = []
    for fraction in (0.01, 0.025, 0.05, 0.10, 0.20):
        result = Biclusterer(min_fraction=fraction).fit(counts)
        covered = sum(b.n_samples for b in result.biclusters)
        rows.append({
            "min_fraction": fraction,
            "biclusters": len(result.biclusters),
            "active": len(result.active()),
            "coverage": covered / counts.shape[0],
        })
    return rows


def test_selection_rule_ablation(benchmark, bench_context, record, emit):
    rows = benchmark.pedantic(
        _sweep, args=(bench_context,), rounds=1, iterations=1
    )
    table = format_table(
        ["MIN FRACTION", "BICLUSTERS", "ACTIVE", "SAMPLE COVERAGE"],
        [
            [f"{r['min_fraction']:.1%}", r["biclusters"], r["active"],
             f"{r['coverage']:.2f}"]
            for r in rows
        ],
        title="Ablation: bicluster selection threshold (paper uses 5%)",
    )
    record("ablation_selection_rule", table)

    by_fraction = {r["min_fraction"]: r for r in rows}
    emit(BenchResult(
        bench="ablation_selection_rule",
        kind="ablation",
        seed=2012,
        metrics={
            "paper_biclusters": int(by_fraction[0.05]["biclusters"]),
            "paper_active": int(by_fraction[0.05]["active"]),
            "paper_coverage": round(
                float(by_fraction[0.05]["coverage"]), 6
            ),
        },
        data={"rows": rows},
    ))
    # Looser thresholds never select fewer clusters.
    counts = [r["biclusters"] for r in rows]
    assert counts == sorted(counts, reverse=True)
    # The paper's 5% point keeps multiple clusters and high coverage.
    paper_point = by_fraction[0.05]
    assert paper_point["biclusters"] >= 5
    assert paper_point["coverage"] > 0.6
    # A 20% threshold collapses the structure.
    assert by_fraction[0.20]["biclusters"] <= paper_point["biclusters"]
