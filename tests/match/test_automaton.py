"""Merged automaton: presence must agree with ``re.search`` everywhere."""

import pickle
import random
import re
import string

import pytest

from repro.match.automaton import (
    MergedAutomaton,
    UnmergeablePatternError,
)

PATTERNS = [
    r"[0-9][a-f]",
    r"=\s*\(",
    r"[^a-z0-9]{3}",
    r"%[0-9a-f][0-9a-f]",
    r"(x|y)z+",
]


def reference_present(pattern: str, text: str) -> bool:
    return re.search(pattern, text, re.IGNORECASE) is not None


class TestMergedAutomaton:
    def test_rejects_boundary_patterns(self):
        with pytest.raises(UnmergeablePatternError):
            MergedAutomaton([(0, r"\bx\b")])

    def test_single_pattern_presence(self):
        automaton = MergedAutomaton([(7, r"[0-9][a-f]")])
        assert automaton.present("payload 3f here") == {7}
        assert automaton.present("no digits") == set()

    def test_empty_text(self):
        automaton = MergedAutomaton(list(enumerate(PATTERNS)))
        assert automaton.present("") == set()

    def test_unanchored_search(self):
        automaton = MergedAutomaton([(0, r"zq")])
        assert automaton.present("prefix zq suffix") == {0}
        assert automaton.present("z q") == set()

    def test_case_insensitive(self):
        automaton = MergedAutomaton([(0, r"(x|y)z+")])
        assert automaton.present("XZ") == {0}

    def test_differential_against_re_search(self):
        automaton = MergedAutomaton(list(enumerate(PATTERNS)))
        rng = random.Random(2012)
        alphabet = string.ascii_letters + string.digits + "%=() '-;"
        for _ in range(300):
            text = "".join(
                rng.choice(alphabet)
                for _ in range(rng.randrange(0, 40))
            )
            expected = {
                i for i, p in enumerate(PATTERNS)
                if reference_present(p, text)
            }
            assert automaton.present(text) == expected, text

    def test_lazy_dfa_grows_with_traffic(self):
        automaton = MergedAutomaton(list(enumerate(PATTERNS)))
        before = automaton.dfa_states
        automaton.present("1a %3f =( !!!")
        assert automaton.dfa_states > before

    def test_pickle_roundtrip_rebuilds(self):
        automaton = MergedAutomaton(list(enumerate(PATTERNS)))
        automaton.present("warm the cache 3f")
        clone = pickle.loads(pickle.dumps(automaton))
        assert clone.tagged_patterns == automaton.tagged_patterns
        assert clone.present("payload 3f") == automaton.present(
            "payload 3f"
        )
