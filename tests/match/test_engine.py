"""Fused engine: count vectors and probabilities are exact, not close."""

import pickle
import random
import string

import numpy as np

from repro.features.definitions import build_catalog
from repro.match import (
    FusedMatcher,
    FusedSetEvaluator,
    fused_disabled,
    fused_enabled,
    matcher_for_patterns,
    set_fused_enabled,
)
from repro.regexlib import count_all


def reference_vector(patterns, payload):
    return [count_all(p, payload) for p in patterns]


CRAFTED = [
    "",
    "1' union select password from users--",
    "1' UNION ALL SELECT NULL,NULL,version()--",
    "id=1 and 1=1",
    "char(97)||char(98)||char(99)",
    "/**/union/**/select/**/",
    "'; exec xp_cmdshell('dir')--",
    "benign search terms with select inside selection",
    "0x414243 0x or or",
    "a" * 200,
    "'' '' '' ''",
    "%27%20union%20select",
    "union",  # bare token, boundary on both string edges
    "-- -",
    "ünïon sélect",  # non-ASCII: must take the reference loop
    "union select",  # non-ASCII whitespace
]


class TestFusedMatcherExactness:
    def test_crafted_payloads_match_reference(self):
        patterns = [d.pattern for d in build_catalog()]
        matcher = FusedMatcher(patterns)
        for payload in CRAFTED:
            fused = matcher.count_vector(payload).tolist()
            assert fused == reference_vector(patterns, payload), payload

    def test_random_payloads_match_reference(self):
        patterns = [d.pattern for d in build_catalog()]
        matcher = FusedMatcher(patterns)
        rng = random.Random(1405)
        alphabet = (
            string.ascii_letters + string.digits
            + "'\"()=<>;,.-_%&|/* +"
        )
        for _ in range(60):
            payload = "".join(
                rng.choice(alphabet)
                for _ in range(rng.randrange(0, 120))
            )
            fused = matcher.count_vector(payload).tolist()
            assert fused == reference_vector(patterns, payload), payload

    def test_non_ascii_counts_fallbacks(self):
        matcher = FusedMatcher(["union"])
        before = matcher.stats.ascii_fallbacks
        assert matcher.count_vector("üunion").tolist() == [1]
        assert matcher.stats.ascii_fallbacks == before + 1

    def test_empty_payload_is_zero_vector(self):
        matcher = FusedMatcher(["union", r"\bselect\b"])
        assert matcher.count_vector("").tolist() == [0, 0]

    def test_stats_count_payloads(self):
        matcher = FusedMatcher(["union"])
        seen = matcher.stats.payloads
        matcher.count_vector("x")
        assert matcher.stats.payloads == seen + 1

    def test_pickle_roundtrip_shares_memo(self):
        matcher = matcher_for_patterns(("union", r"\bselect\b"))
        clone = pickle.loads(pickle.dumps(matcher))
        assert clone is matcher  # same process: memo returns the object

    def test_memo_reuses_plans(self):
        first = matcher_for_patterns(("pickme", "andme"))
        second = matcher_for_patterns(("pickme", "andme"))
        assert first is second


class TestFusedSetEvaluator:
    def test_probabilities_bit_identical(self, small_signatures):
        evaluator = FusedSetEvaluator(small_signatures.signatures)
        for payload in CRAFTED:
            normalized = small_signatures.normalizer(payload)
            fused = evaluator.probabilities(normalized)
            legacy = [
                signature.probability(normalized)
                for signature in small_signatures.signatures
            ]
            assert fused == legacy, payload  # ==, not approx

    def test_evaluate_normalized_routes_through_fused(
        self, small_signatures
    ):
        assert small_signatures.warm()
        for payload in CRAFTED:
            normalized = small_signatures.normalizer(payload)
            fused = small_signatures.evaluate_normalized(normalized)
            with fused_disabled():
                legacy = small_signatures.evaluate_normalized(
                    normalized
                )
            assert fused == legacy, payload

    def test_probabilities_array_matches_legacy(self, small_signatures):
        normalized = small_signatures.normalizer(
            "1' union select 1,2--"
        )
        fused = small_signatures.probabilities(normalized)
        with fused_disabled():
            legacy = small_signatures.probabilities(normalized)
        assert np.array_equal(fused, legacy)

    def test_signature_set_pickles_without_fused_state(
        self, small_signatures
    ):
        small_signatures.warm()
        clone = pickle.loads(pickle.dumps(small_signatures))
        payload = clone.normalizer("1' or '1'='1")
        assert clone.evaluate_normalized(payload) == (
            small_signatures.evaluate_normalized(payload)
        )

    def test_with_threshold_shares_compiled_plan(self, small_signatures):
        small_signatures.warm()
        swept = small_signatures.with_threshold(0.9)
        assert swept._fused is small_signatures._fused


class TestFusedToggle:
    def test_context_manager_restores(self):
        initial = fused_enabled()
        with fused_disabled():
            assert not fused_enabled()
        assert fused_enabled() == initial

    def test_set_returns_previous(self):
        previous = set_fused_enabled(False)
        try:
            assert fused_enabled() is False
        finally:
            set_fused_enabled(previous)
