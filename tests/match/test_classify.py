"""Pattern classification: plans must be conservative, never wrong."""

import re

import pytest

from repro.features.definitions import build_catalog
from repro.match.classify import (
    KIND_AUTOMATON,
    KIND_DIRECT,
    KIND_FACTORED,
    KIND_LITERAL,
    KIND_WORD,
    classify_pattern,
    literal_of,
    pattern_factors,
    word_literal_of,
)


class TestLiteralOf:
    def test_plain_word(self):
        assert literal_of("union") == "union"

    def test_lowercases(self):
        assert literal_of("UNION") == "union"

    def test_escaped_punctuation(self):
        assert literal_of(r"\|\|") == "||"

    def test_dot_is_not_literal(self):
        assert literal_of("a.b") is None

    def test_charclass_is_not_literal(self):
        assert literal_of(r"\d+") is None

    def test_bad_syntax(self):
        assert literal_of("(oops") is None


class TestWordLiteralOf:
    def test_reserved_word_shape(self):
        assert word_literal_of(r"\bselect\b") == "select"

    def test_requires_both_guards(self):
        assert word_literal_of(r"\bselect") is None
        assert word_literal_of(r"select\b") is None

    def test_inner_regex_rejected(self):
        assert word_literal_of(r"\bsel\d+ect\b") is None


class TestPatternFactors:
    def test_required_literal_run(self):
        # Both runs are required; the longer (more selective) one wins.
        assert pattern_factors(r"union\s+select") == ("select",)

    def test_alternation_unions_branches(self):
        assert set(pattern_factors(r"(exec|execute)\s")) == {
            "exec", "execute",
        }

    def test_optional_part_contributes_nothing(self):
        # `x*` may repeat zero times, so "x" is not required.
        factors = pattern_factors(r"x*y")
        assert "x" not in factors

    def test_unbounded_alternation_degrades(self):
        # Nine+ branches exceed the factor budget.
        pattern = "|".join(f"tok{i}x" for i in range(9))
        assert pattern_factors(pattern) == ()

    def test_anchored_pattern_uses_fallback(self):
        # `$` is outside the NFA subset; the token-level fallback still
        # finds the mandatory comment dashes.
        assert pattern_factors(r"--\s*-?\s*$") == ("--",)


class TestClassifyPattern:
    def test_literal(self):
        plan = classify_pattern(r"\|\|")
        assert plan.kind == KIND_LITERAL
        assert plan.literal == "||"

    def test_word(self):
        plan = classify_pattern(r"\bunion\b")
        assert plan.kind == KIND_WORD
        assert plan.literal == "union"

    def test_factored(self):
        plan = classify_pattern(r"union\s+(all\s+)?select")
        assert plan.kind == KIND_FACTORED
        assert plan.factors

    def test_automaton_for_factorless_subset_pattern(self):
        # Alternation of single characters: no usable factor run longer
        # than one char per branch still yields factors; use a charset
        # with ranges so no factor exists but the NFA hosts it.
        plan = classify_pattern(r"[0-9][a-f]")
        assert plan.kind == KIND_AUTOMATON

    def test_direct_for_boundary_regex(self):
        # \b inside a non-word-shape pattern: not a word plan, factors
        # may exist though — craft one with none.
        plan = classify_pattern(r"\b[0-9]\b")
        assert plan.kind == KIND_DIRECT

    @pytest.mark.parametrize(
        "payload",
        [
            "1' union select password from users--",
            "id=1 and 1=1",
            "char(97)||char(98)",
            "benign search terms",
            "",
        ],
    )
    def test_factor_is_necessary_on_catalog(self, payload):
        """Factor absence must prove count zero for every catalog pattern."""
        lowered = payload.lower()
        for definition in build_catalog():
            plan = classify_pattern(definition.pattern)
            if plan.kind != KIND_FACTORED:
                continue
            if any(factor in lowered for factor in plan.factors):
                continue
            count = len(
                re.findall(definition.pattern, payload, re.IGNORECASE)
            )
            assert count == 0, (
                f"{definition.pattern!r} matched {payload!r} despite "
                f"absent factors {plan.factors}"
            )

    def test_catalog_mostly_fused(self):
        """The catalog's dominant shapes must not degrade to direct."""
        plans = [
            classify_pattern(d.pattern) for d in build_catalog()
        ]
        kinds = {k: sum(1 for p in plans if p.kind == k)
                 for k in (KIND_LITERAL, KIND_WORD, KIND_FACTORED,
                           KIND_AUTOMATON, KIND_DIRECT)}
        fused = len(plans) - kinds[KIND_DIRECT]
        assert fused >= 0.9 * len(plans)
