"""Token scanner: counts must replay ``re.finditer`` exactly."""

import re

import pytest

from repro.match.scanner import ScanResult, TokenScanner


def reference_count(token: str, text: str) -> int:
    return sum(
        1 for _ in re.finditer(re.escape(token), text, re.IGNORECASE)
    )


def reference_word_count(token: str, text: str) -> int:
    return sum(1 for _ in re.finditer(
        rf"\b{re.escape(token)}\b", text, re.IGNORECASE
    ))


class TestTokenScanner:
    def test_rejects_empty_token(self):
        with pytest.raises(ValueError):
            TokenScanner([""])

    def test_rejects_uppercase_token(self):
        with pytest.raises(ValueError):
            TokenScanner(["Union"])

    def test_rejects_non_ascii_token(self):
        with pytest.raises(ValueError):
            TokenScanner(["sélect"])

    def test_empty_vocabulary_scans(self):
        result = TokenScanner([]).scan("anything")
        assert isinstance(result, ScanResult)
        assert not result.present("x" * 2)

    def test_positions_are_all_occurrences(self):
        scanner = TokenScanner(["ab"])
        assert scanner.scan("abab xab").positions("ab") == [0, 2, 6]

    def test_shadowed_prefix_still_counted(self):
        # "un" matches at position 0 where the longer "union" wins the
        # alternation; the prefix closure must recover it.
        scanner = TokenScanner(["union", "un"])
        result = scanner.scan("union")
        assert result.positions("union") == [0]
        assert result.positions("un") == [0]

    def test_single_char_token_uses_str_count(self):
        scanner = TokenScanner(["'"])
        result = scanner.scan("a'b''c")
        assert result.count("'") == 3
        assert result.positions("'") == [1, 3, 4]
        assert result.present("'")

    def test_nonoverlap_discipline(self):
        # "aa" in "aaaa": finditer takes 0 and 2, skips 1 and 3.
        scanner = TokenScanner(["aa"])
        assert scanner.scan("aaaa").count("aa") == 2
        assert reference_count("aa", "aaaa") == 2

    def test_count_word_boundaries(self):
        scanner = TokenScanner(["or"])
        result = scanner.scan("or for order or")
        assert result.count_word("or") == reference_word_count(
            "or", "or for order or"
        )

    def test_count_word_rejected_position_does_not_advance(self):
        # In "oror" the occurrence at 0 fails the trailing boundary; the
        # one at 2 must still be eligible (finditer never consumed 0).
        scanner = TokenScanner(["or"])
        text = "oror "
        assert scanner.scan(text).count_word("or") == (
            reference_word_count("or", text)
        )

    def test_punctuation_edge_tokens(self):
        # A token starting with non-word chars flips the boundary sense.
        scanner = TokenScanner(["--"])
        for text in ("a--b", "--", "a -- b", "----"):
            assert scanner.scan(text).count_word("--") == (
                reference_word_count("--", text)
            ), text

    @pytest.mark.parametrize("token", ["select", "'", "1=1", "--", "or"])
    def test_counts_match_reference_on_corpus(self, token):
        scanner = TokenScanner(["select", "'", "1=1", "--", "or"])
        payloads = [
            "1' or '1'='1", "select * from t -- comment",
            "ORDER BY 1--", "union all select null,null",
            "x" * 50, "", "or or or", "1=1=1=1", "---- --",
        ]
        for payload in payloads:
            result = scanner.scan(payload.lower())
            assert result.count(token) == reference_count(
                token, payload
            ), (token, payload)
            assert result.count_word(token) == reference_word_count(
                token, payload
            ), (token, payload)
