"""Surface corpus families: determinism, labels, and channel placement.

Each family must put its attack where its channel says (and nowhere the
legacy query+form flattening can see it, except the second-order store
leg) — otherwise per-surface detection rates measure the wrong thing.
"""

import json

import pytest

from repro.corpus import SURFACE_FAMILIES, SurfaceCorpusGenerator
from repro.http import LABEL_ATTACK, LABEL_BENIGN
from repro.surfaces import DEFAULT_SURFACES, InjectionSurface, extract_surfaces


class TestDeterminism:
    @pytest.mark.parametrize("family", SURFACE_FAMILIES)
    def test_same_seed_same_trace(self, family):
        first = SurfaceCorpusGenerator(seed=99).family_trace(family, 12)
        second = SurfaceCorpusGenerator(seed=99).family_trace(family, 12)
        assert [r.to_raw() for r in first.requests] == [
            r.to_raw() for r in second.requests
        ]
        assert [r.stored for r in first.requests] == [
            r.stored for r in second.requests
        ]

    def test_mixed_trace_deterministic(self):
        first = SurfaceCorpusGenerator(seed=5).mixed_trace(30)
        second = SurfaceCorpusGenerator(seed=5).mixed_trace(30)
        assert [r.to_raw() for r in first.requests] == [
            r.to_raw() for r in second.requests
        ]


class TestShape:
    def test_attack_fraction_validated(self):
        with pytest.raises(ValueError):
            SurfaceCorpusGenerator(attack_fraction=0.0)
        with pytest.raises(ValueError):
            SurfaceCorpusGenerator(attack_fraction=1.5)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="json-body"):
            SurfaceCorpusGenerator().family_trace("telnet", 4)

    @pytest.mark.parametrize("family", SURFACE_FAMILIES)
    def test_requested_count_and_both_labels(self, family):
        trace = SurfaceCorpusGenerator(seed=2012).family_trace(family, 40)
        assert len(trace) == 40
        labels = {r.label for r in trace.requests}
        assert labels == {LABEL_ATTACK, LABEL_BENIGN}

    def test_all_attacks_when_fraction_is_one(self):
        trace = SurfaceCorpusGenerator(
            seed=1, attack_fraction=1.0
        ).family_trace("cookie", 10)
        assert all(r.label == LABEL_ATTACK for r in trace.requests)


class TestChannelPlacement:
    def _attack_surfaces(self, family, surface):
        generator = SurfaceCorpusGenerator(seed=2012, attack_fraction=1.0)
        trace = generator.family_trace(family, 12)
        return trace, [
            {
                sv.surface
                for sv in extract_surfaces(r, DEFAULT_SURFACES)
            }
            for r in trace.requests
        ]

    def test_json_bodies_parse_and_carry_the_channel(self):
        trace, per_request = self._attack_surfaces(
            "json-body", InjectionSurface.JSON_BODY
        )
        for request, surfaces in zip(trace.requests, per_request):
            json.loads(request.body)  # valid JSON documents
            assert InjectionSurface.JSON_BODY in surfaces
            # Invisible to the legacy flattening.
            assert request.flat_payload() == ""

    def test_cookie_attacks_are_legacy_invisible(self):
        trace = SurfaceCorpusGenerator(
            seed=2012, attack_fraction=1.0
        ).family_trace("cookie", 12)
        for request in trace.requests:
            assert "cookie" in request.headers
            # The query is benign boilerplate; the attack is in the jar.
            assert request.query == "view=profile"

    def test_multipart_bodies_carry_a_boundary(self):
        trace = SurfaceCorpusGenerator(seed=2012).family_trace(
            "multipart", 12
        )
        for request in trace.requests:
            assert "boundary=" in request.headers["content-type"]
            assert request.body.rstrip().endswith("--")

    def test_second_order_replay_is_first_order_clean(self):
        generator = SurfaceCorpusGenerator(seed=2012, attack_fraction=1.0)
        store, replay = generator.second_order_pair()
        # The store leg is an ordinary form POST (first-order visible);
        # the replay leg carries the value ONLY in `stored`.
        assert store.flat_payload() != ""
        assert replay.stored and replay.body == ""
        stored_values = [value for _key, value in replay.stored]
        assert stored_values[0] in store.body

    def test_mixed_trace_covers_multiple_families(self):
        trace = SurfaceCorpusGenerator(seed=2012).mixed_trace(60)
        seen = set()
        for request in trace.requests:
            for sv in extract_surfaces(request, DEFAULT_SURFACES):
                seen.add(sv.surface)
        assert InjectionSurface.JSON_BODY in seen
        assert InjectionSurface.COOKIE in seen
        assert InjectionSurface.HEADER in seen
