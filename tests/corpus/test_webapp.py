"""Tests for the simulated vulnerable web application."""

import pytest

from repro.corpus import VulnerableWebApp
from repro.corpus.webapp import (
    BEHAVIOR_BOOLEAN,
    BEHAVIOR_ERROR,
    BEHAVIOR_TIME,
    BEHAVIORS,
)


@pytest.fixture(scope="module")
def app():
    return VulnerableWebApp(seed=7)


class TestLayout:
    def test_paper_vulnerability_count(self, app):
        assert len(app) == 136

    def test_custom_count(self):
        assert len(VulnerableWebApp(n_vulnerabilities=10)) == 10

    def test_deterministic_layout(self):
        first = VulnerableWebApp(seed=3)
        second = VulnerableWebApp(seed=3)
        assert [p.path for p in first.points] == [
            p.path for p in second.points
        ]

    def test_all_behaviors_present(self, app):
        behaviors = {p.behavior for p in app.points}
        assert behaviors == set(BEHAVIORS)

    def test_paths_unique(self, app):
        paths = [p.path for p in app.points]
        assert len(paths) == len(set(paths))

    def test_column_counts_in_range(self, app):
        for point in app.points:
            assert 2 <= app.union_column_count(point.path) <= 8


class TestResponses:
    def test_unknown_path_404(self, app):
        assert app.handle("/nope", "id", "1").status == 404

    def test_wrong_parameter_static(self, app):
        point = app.points[0]
        response = app.handle(point.path, "not-the-param", "1'")
        assert response.status == 200
        assert "error" not in response.body.lower()

    def test_clean_value_normal_page(self, app):
        point = app.points[0]
        response = app.handle(point.path, point.parameter, "1")
        assert response.status == 200
        assert "row" in response.body

    def _point_with(self, app, behavior):
        for point in app.points:
            if point.behavior == behavior:
                return point
        raise AssertionError(f"no {behavior} point")

    def test_error_page_reflects_mysql_error(self, app):
        point = self._point_with(app, BEHAVIOR_ERROR)
        response = app.handle(point.path, point.parameter, "1'")
        assert "error in your SQL syntax" in response.body

    def test_non_error_page_500s_on_break(self, app):
        point = self._point_with(app, BEHAVIOR_BOOLEAN)
        response = app.handle(point.path, point.parameter, "1'")
        assert response.status == 500

    def test_time_behavior_delays(self, app):
        point = self._point_with(app, BEHAVIOR_TIME)
        fast = app.handle(point.path, point.parameter, "1")
        slow = app.handle(point.path, point.parameter, "1 and sleep(5)")
        assert slow.delay >= fast.delay + 4

    def test_sleep_capped(self, app):
        point = self._point_with(app, BEHAVIOR_TIME)
        response = app.handle(
            point.path, point.parameter, "1 and sleep(99999)"
        )
        assert response.delay <= 31

    def test_boolean_differential(self, app):
        point = self._point_with(app, BEHAVIOR_BOOLEAN)
        true_page = app.handle(
            point.path, point.parameter, "1 and 5=5"
        )
        false_page = app.handle(
            point.path, point.parameter, "1 and 5=6"
        )
        assert true_page.body != false_page.body

    def test_order_by_over_column_count_breaks(self, app):
        point = self._point_with(app, BEHAVIOR_ERROR)
        columns = app.union_column_count(point.path)
        good = app.handle(
            point.path, point.parameter, f"1 order by {columns}"
        )
        bad = app.handle(
            point.path, point.parameter, f"1 order by {columns + 1}"
        )
        assert "error" in bad.body.lower()
        assert "error" not in good.body.lower()

    def test_union_with_correct_columns_renders_extra(self, app):
        point = app.points[0]
        columns = app.union_column_count(point.path)
        value = "1 union select " + ",".join(["1"] * columns)
        response = app.handle(point.path, point.parameter, value)
        assert "extra" in response.body
