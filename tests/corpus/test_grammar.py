"""Tests for the SQLi corpus generator."""

import numpy as np
import pytest

from repro.corpus import FAMILIES, FAMILY_NAMES, CorpusGenerator
from repro.corpus.grammar import TemplateRenderer


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        first = [s.payload for s in CorpusGenerator(seed=3).generate(50)]
        second = [s.payload for s in CorpusGenerator(seed=3).generate(50)]
        assert first == second

    def test_different_seed_different_corpus(self):
        first = [s.payload for s in CorpusGenerator(seed=3).generate(50)]
        second = [s.payload for s in CorpusGenerator(seed=4).generate(50)]
        assert first != second

    def test_sample_ids_sequential(self):
        samples = CorpusGenerator(seed=1).generate(3)
        assert [s.sample_id for s in samples] == [
            "atk-000000", "atk-000001", "atk-000002"
        ]


class TestFamilyCoverage:
    def test_all_families_appear_in_large_corpus(self):
        samples = CorpusGenerator(seed=7).generate(2000)
        seen = {s.family for s in samples}
        assert seen == set(FAMILY_NAMES)

    def test_family_proportions_follow_weights(self):
        samples = CorpusGenerator(seed=7).generate(4000)
        counts = {name: 0 for name in FAMILY_NAMES}
        for sample in samples:
            counts[sample.family] += 1
        total_weight = sum(f.weight for f in FAMILIES)
        for family in FAMILIES:
            expected = family.weight / total_weight
            observed = counts[family.name] / len(samples)
            assert abs(observed - expected) < 0.03, family.name

    def test_labels_are_valid_family_names(self):
        for sample in CorpusGenerator(seed=2).generate(100):
            assert sample.family in FAMILY_NAMES


class TestPayloadShape:
    def test_payloads_are_query_strings(self):
        for sample in CorpusGenerator(seed=2).generate(100):
            assert "=" in sample.payload

    def test_no_unfilled_placeholders(self):
        for sample in CorpusGenerator(seed=2, mutation_rate=0.0).generate(300):
            assert "{base}" not in sample.payload
            assert "{cols}" not in sample.payload
            assert "{cmt}" not in sample.payload

    def test_union_family_contains_union(self):
        samples = [
            s for s in CorpusGenerator(seed=2, mutation_rate=0.0).generate(400)
            if s.family == "union-extract"
        ]
        assert samples
        for sample in samples:
            assert "union" in sample.payload.lower()

    def test_time_family_contains_timing_function(self):
        samples = [
            s for s in CorpusGenerator(seed=2, mutation_rate=0.0).generate(400)
            if s.family == "time-blind"
        ]
        assert samples
        for sample in samples:
            lowered = sample.payload.lower()
            assert "sleep" in lowered or "benchmark" in lowered


class TestValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CorpusGenerator(seed=1).generate(-1)

    def test_empty_families_rejected(self):
        with pytest.raises(ValueError):
            CorpusGenerator(seed=1, families=())

    def test_zero_count_ok(self):
        assert CorpusGenerator(seed=1).generate(0) == []


class TestTemplateRenderer:
    def test_cols_renders_lists(self):
        renderer = TemplateRenderer(np.random.default_rng(0))
        rendered = renderer.render("{cols}")
        assert "," in rendered or rendered in (
            "1", "null", "'a'", "0x61"
        )

    def test_charlist_is_ascii_codes(self):
        renderer = TemplateRenderer(np.random.default_rng(0))
        rendered = renderer.render("{charlist}")
        codes = [int(c) for c in rendered.split(",")]
        assert all(32 <= c < 127 for c in codes)

    def test_hex_slots_are_hex(self):
        renderer = TemplateRenderer(np.random.default_rng(0))
        rendered = renderer.render("{hextable}")
        int(rendered, 16)

    def test_subquery_is_sql(self):
        renderer = TemplateRenderer(np.random.default_rng(3))
        assert "select" in renderer.render("{subq}")
