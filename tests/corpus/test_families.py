"""Tests for the attack family definitions."""

import pytest

from repro.corpus import (
    BLACK_HOLE_FAMILIES,
    FAMILIES,
    FAMILY_NAMES,
    family_by_name,
)


class TestFamilySet:
    def test_eleven_families(self):
        # One per bicluster in the paper's Figure 2.
        assert len(FAMILIES) == 11

    def test_names_unique(self):
        assert len(FAMILY_NAMES) == len(set(FAMILY_NAMES))

    def test_two_black_hole_families(self):
        assert len(BLACK_HOLE_FAMILIES) == 2
        assert BLACK_HOLE_FAMILIES <= set(FAMILY_NAMES)

    def test_positive_weights(self):
        assert all(f.weight > 0 for f in FAMILIES)

    def test_every_family_has_templates(self):
        assert all(len(f.templates) >= 5 for f in FAMILIES)

    def test_descriptions_present(self):
        assert all(f.description for f in FAMILIES)

    def test_size_spread_matches_table6(self):
        # Table VI: largest cluster ~8x the smallest.
        weights = sorted(f.weight for f in FAMILIES)
        assert 2.0 <= weights[-1] / weights[0] <= 10.0


class TestLookup:
    def test_known_name(self):
        family = family_by_name("union-extract")
        assert family.name == "union-extract"

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError) as info:
            family_by_name("nope")
        assert "union-extract" in str(info.value)


class TestTemplateHygiene:
    def test_placeholders_are_known(self):
        known = {
            "base", "q", "qq", "n", "m", "bign", "bigN", "byte", "sleep",
            "cols", "cols_concat", "table", "col", "dbfunc", "subq", "cmt",
            "ch", "charlist", "hexstr", "hextable", "hexpath", "path",
            "junk",
        }
        import re

        for family in FAMILIES:
            for template in family.templates:
                for slot in re.findall(r"\{(\w+)\}", template):
                    assert slot in known, (family.name, slot)

    def test_black_hole_templates_are_short(self):
        for name in BLACK_HOLE_FAMILIES:
            family = family_by_name(name)
            assert all(len(t) < 40 for t in family.templates)
