"""Tests for the benign traffic generator."""

import pytest

from repro.corpus import BenignTrafficGenerator
from repro.http import LABEL_BENIGN


@pytest.fixture(scope="module")
def trace():
    return BenignTrafficGenerator(seed=42).trace(5000)


class TestShape:
    def test_count(self, trace):
        assert len(trace) == 5000

    def test_all_labeled_benign(self, trace):
        assert all(r.label == LABEL_BENIGN for r in trace)

    def test_deterministic(self):
        first = BenignTrafficGenerator(seed=1).trace(100).payloads()
        second = BenignTrafficGenerator(seed=1).trace(100).payloads()
        assert first == second

    def test_mix_includes_parameterless_requests(self, trace):
        empties = sum(1 for r in trace if not r.flat_payload())
        assert 0.3 < empties / len(trace) < 0.8

    def test_multiple_hosts(self, trace):
        hosts = {r.host for r in trace}
        assert len(hosts) >= 4

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BenignTrafficGenerator().trace(-1)


class TestAdversarialContent:
    """The trace must contain the benign-but-SQL-looking strings that
    drive baseline false positives (Section I's UNION/SELECT discussion)."""

    def test_sql_vocabulary_present(self, trace):
        joined = " ".join(trace.payloads()).lower()
        assert "union" in joined
        assert "select" in joined

    def test_apostrophe_names_present(self, trace):
        joined = " ".join(trace.payloads())
        assert "%27" in joined or "'" in joined

    def test_hot_phrases_are_rare(self, trace):
        hot = sum(
            1 for p in trace.payloads() if "1%3D1" in p or "1=1" in p
        )
        # ~0.2% of searches * 20% search share: well under 1% of traffic.
        assert hot < len(trace) * 0.01

    def test_mundane_dominates(self, trace):
        searches = [p for p in trace.payloads() if p.startswith("q=")]
        sqlish = [
            p for p in searches
            if any(w in p for w in ("union", "select", "%27"))
        ]
        assert len(sqlish) < len(searches) * 0.2


class TestRequestValidity:
    def test_queries_parse(self, trace):
        from repro.http.url import parse_query

        for request in trace.requests[:500]:
            parse_query(request.query)

    def test_no_attack_content(self, trace):
        # Nothing in the benign trace should be an actual injection.
        for payload in trace.payloads():
            lowered = payload.lower()
            assert "union%20select" not in lowered
            assert "or%201%3D1--" not in lowered
