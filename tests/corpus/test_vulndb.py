"""Tests for the vulnerability DB and the Table I coverage check."""

import pytest

from repro.corpus import (
    CorpusGenerator,
    TABLE1_RECORDS,
    coverage,
    july_2012_cohort,
)
from repro.corpus.vulndb import CONTEXT_FAMILIES
from repro.corpus.grammar import AttackSample


class TestTable1Records:
    def test_exactly_four_printed_rows(self):
        assert len(TABLE1_RECORDS) == 4

    def test_paper_cve_ids(self):
        ids = [r.cve_id for r in TABLE1_RECORDS]
        assert ids == [
            "CVE-2012-3554", "CVE-2012-2306", "CVE-2012-3395",
            "CVE-2012-3881",
        ]

    def test_products_match_paper(self):
        products = " | ".join(r.product for r in TABLE1_RECORDS)
        assert "Joomla" in products
        assert "Drupal" in products
        assert "Moodle" in products
        assert "RTG" in products


class TestCohort:
    def test_cohort_size_about_thirty(self):
        # Section II-A: "approximately 30 in number".
        assert 28 <= len(july_2012_cohort()) <= 32

    def test_cohort_includes_table1(self):
        ids = {r.cve_id for r in july_2012_cohort()}
        for record in TABLE1_RECORDS:
            assert record.cve_id in ids

    def test_cve_ids_unique(self):
        ids = [r.cve_id for r in july_2012_cohort()]
        assert len(ids) == len(set(ids))

    def test_contexts_are_known(self):
        for record in july_2012_cohort():
            assert record.context in CONTEXT_FAMILIES

    def test_risk_levels(self):
        for record in july_2012_cohort():
            assert record.risk in ("high", "medium")


class TestCoverage:
    def test_full_corpus_covers_everything(self):
        samples = CorpusGenerator(seed=11).generate(1000)
        covered = coverage(july_2012_cohort(), samples)
        assert all(covered.values())

    def test_empty_corpus_covers_nothing(self):
        covered = coverage(july_2012_cohort(), [])
        assert not any(covered.values())

    def test_partial_corpus(self):
        samples = [
            AttackSample(sample_id="x", payload="id=1 order by 3",
                         family="enumeration")
        ]
        covered = coverage(july_2012_cohort(), samples)
        order_by_records = [
            r for r in july_2012_cohort() if r.context == "order-by"
        ]
        numeric_records = [
            r for r in july_2012_cohort() if r.context == "string"
        ]
        assert all(covered[r.cve_id] for r in order_by_records)
        assert not any(covered[r.cve_id] for r in numeric_records)
