"""Tests for evasion mutators, including the normalize-undoes-mutate law."""

import numpy as np
import pytest

from repro.corpus.mutators import (
    MUTATORS,
    comment_spaces,
    double_encode_quotes,
    mixed_case,
    plus_spaces,
    tab_spaces,
    unicode_fullwidth,
    url_encode_specials,
)
from repro.normalize import normalize


@pytest.fixture
def rng():
    return np.random.default_rng(13)


PAYLOAD = "1' union select 1,2,concat(database(),char(58)),4-- -"


class TestIndividualMutators:
    def test_mixed_case_preserves_letters(self, rng):
        mutated = mixed_case(PAYLOAD, rng)
        assert mutated.lower() == PAYLOAD.lower()

    def test_url_encode_encodes_most_specials(self, rng):
        mutated = url_encode_specials(PAYLOAD, rng)
        # p=0.8 per special; with ~10 specials at least one must encode.
        assert "%2" in mutated.lower() or "%3" in mutated.lower()

    def test_double_encode_quotes(self, rng):
        assert double_encode_quotes("a'b", rng) == "a%2527b"

    def test_plus_spaces(self, rng):
        assert plus_spaces("a b c", rng) == "a+b+c"

    def test_comment_spaces_replaces_only_spaces(self, rng):
        mutated = comment_spaces("union select", rng)
        assert mutated.replace("/**/", " ").replace("/*x*/", " ") \
            .replace("%09", " ").replace("%0a", " ") == "union select"

    def test_tab_spaces_only_whitespace_changes(self, rng):
        mutated = tab_spaces("a b", rng)
        assert mutated.replace("\t", " ").replace("\n", " ") \
            .replace("  ", " ") == "a b"

    def test_unicode_fullwidth_folds_back(self, rng):
        mutated = unicode_fullwidth("select", rng)
        from repro.normalize.unicode_map import fold
        assert fold(mutated) == "select"


class TestNormalizerUndoesMutations:
    """The core law: every mutator's output normalizes to the same string
    as the unmutated payload."""

    @pytest.mark.parametrize("mutator", MUTATORS, ids=lambda m: m.__name__)
    def test_single_mutation(self, mutator, rng):
        mutated = mutator(PAYLOAD, rng)
        assert normalize(mutated) == normalize(PAYLOAD)

    @pytest.mark.parametrize("seed", range(5))
    def test_stacked_mutations(self, seed):
        rng = np.random.default_rng(seed)
        mutated = PAYLOAD
        for _ in range(2):
            mutator = MUTATORS[int(rng.integers(len(MUTATORS)))]
            mutated = mutator(mutated, rng)
        assert normalize(mutated) == normalize(PAYLOAD)
