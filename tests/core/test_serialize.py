"""Tests for signature-set JSON serialization."""

import json

import numpy as np
import pytest

from repro.core import (
    signature_set_from_json,
    signature_set_to_json,
)


class TestRoundtrip:
    def test_trained_set_roundtrips(self, small_signatures):
        text = signature_set_to_json(small_signatures)
        restored = signature_set_from_json(text)
        assert len(restored) == len(small_signatures)
        for original, copy in zip(small_signatures, restored):
            assert copy.bicluster_index == original.bicluster_index
            assert copy.threshold == original.threshold
            assert np.allclose(copy.model.theta, original.model.theta)
            assert copy.features.patterns == original.features.patterns

    def test_restored_set_scores_identically(self, small_signatures):
        restored = signature_set_from_json(
            signature_set_to_json(small_signatures)
        )
        payloads = [
            "id=1' union select 1,2,3-- -",
            "q=campus%20parking",
            "cat=9' and sleep(5)#",
        ]
        for payload in payloads:
            assert restored.evaluate(payload)[0] == pytest.approx(
                small_signatures.evaluate(payload)[0]
            )

    def test_json_is_valid_and_versioned(self, small_signatures):
        data = json.loads(signature_set_to_json(small_signatures))
        assert data["schema"] == 1
        assert len(data["signatures"]) == len(small_signatures)


class TestValidation:
    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            signature_set_from_json("{not json")

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            signature_set_from_json('{"schema": 99, "signatures": []}')

    def test_theta_length_checked(self):
        payload = {
            "schema": 1,
            "signatures": [{
                "bicluster": 1,
                "threshold": 0.5,
                "theta": [0.1, 0.2, 0.3],  # 2 coefs for 1 feature
                "features": [{
                    "pattern": "x", "label": "l", "source": "s"
                }],
            }],
        }
        with pytest.raises(ValueError):
            signature_set_from_json(json.dumps(payload))

    def test_empty_set(self):
        restored = signature_set_from_json(
            '{"schema": 1, "signatures": []}'
        )
        assert len(restored) == 0
