"""The PR-4 migration shims: ``score()``/``alerts()`` must warn and
delegate to ``evaluate()``.

No direct coverage existed for the deprecation contract — a refactor
could silently drop the warning (or worse, fork the scoring logic) and
nothing would fail.  These tests pin both halves: the
``DeprecationWarning`` is actually emitted, and the shims return exactly
what ``evaluate()`` returns.
"""

import warnings

import pytest


ATTACK = "id=1' union select 1,2,database()-- -"
BENIGN = "q=student+union+hours"


class TestScoreShim:
    def test_emits_deprecation_warning(self, small_signatures):
        with pytest.warns(DeprecationWarning, match="evaluate"):
            small_signatures.score(ATTACK)

    def test_delegates_to_evaluate(self, small_signatures):
        expected_score, _ = small_signatures.evaluate(ATTACK)
        with pytest.warns(DeprecationWarning):
            assert small_signatures.score(ATTACK) == expected_score

    def test_benign_payload_too(self, small_signatures):
        expected_score, _ = small_signatures.evaluate(BENIGN)
        with pytest.warns(DeprecationWarning):
            assert small_signatures.score(BENIGN) == expected_score


class TestAlertsShim:
    def test_emits_deprecation_warning(self, small_signatures):
        with pytest.warns(DeprecationWarning, match="evaluate"):
            small_signatures.alerts(ATTACK)

    def test_delegates_to_evaluate(self, small_signatures):
        _, expected_fired = small_signatures.evaluate(ATTACK)
        with pytest.warns(DeprecationWarning):
            assert small_signatures.alerts(ATTACK) == expected_fired

    def test_warning_names_the_caller_frame(self, small_signatures):
        # stacklevel=2: the warning must point at this file, not at
        # signature.py, or every deprecation report blames the library.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            small_signatures.alerts(ATTACK)
        assert len(caught) == 1
        assert caught[0].filename == __file__


class TestEvaluateStaysQuiet:
    def test_evaluate_emits_no_warning(self, small_signatures):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            score, fired = small_signatures.evaluate(ATTACK)
        assert score > 0.5 and fired
