"""Tests for incremental signature updates (Experiment 2 substrate)."""

import numpy as np
import pytest

from repro.core import incremental_update


class TestIncrementalUpdate:
    def test_empty_update_is_noop(self, small_pipeline, small_result):
        update = incremental_update(small_pipeline, small_result, [])
        assert update.signature_set is small_result.signature_set
        assert update.added_rows == 0

    def test_new_samples_assigned_to_biclusters(
        self, small_pipeline, small_result
    ):
        fresh = [
            "id=9' union select 1,2,3,4-- -",
            "cat=4' and sleep(7)-- -",
            "u=1' or '1'='1",
        ]
        update = incremental_update(small_pipeline, small_result, fresh)
        assert update.added_rows == 3
        assert sum(update.assigned.values()) == 3

    def test_signature_count_preserved(self, small_pipeline, small_result):
        fresh = ["id=9' union select 1,2-- -"] * 5
        update = incremental_update(small_pipeline, small_result, fresh)
        assert len(update.signature_set) == len(small_result.signature_set)

    def test_theta_actually_retrained(self, small_pipeline, small_result):
        fresh = [
            f"id={i}' union select {i},2,3-- -" for i in range(40)
        ]
        update = incremental_update(small_pipeline, small_result, fresh)
        changed = any(
            new.model.theta.shape != old.model.theta.shape
            or not np.allclose(new.model.theta, old.model.theta)
            for new, old in zip(
                update.signature_set, small_result.signature_set
            )
        )
        assert changed

    def test_cluster_structure_fixed(self, small_pipeline, small_result):
        """The paper retrains Θ only; bicluster feature sets must not
        change."""
        fresh = ["id=5' or 1=1-- -"] * 10
        update = incremental_update(small_pipeline, small_result, fresh)
        for new, old in zip(
            update.signature_set, small_result.signature_set
        ):
            assert new.bicluster_index == old.bicluster_index
            assert new.bicluster_feature_count == old.bicluster_feature_count

    def test_updated_set_still_detects(self, small_pipeline, small_result):
        fresh = [
            "id=9' union select 1,2,3,4-- -",
            "cat=4' and sleep(7)-- -",
        ]
        update = incremental_update(small_pipeline, small_result, fresh)
        assert update.signature_set.evaluate(
            "x=1' union select 7,8,9-- -"
        )[0] > 0.6


class TestWarmStrategy:
    FRESH = [
        "id=9' union select 1,2,3,4-- -",
        "cat=4' and sleep(7)-- -",
        "u=1' or '1'='1",
    ] * 5

    def test_unknown_strategy_rejected(self, small_pipeline, small_result):
        with pytest.raises(ValueError):
            incremental_update(
                small_pipeline, small_result, self.FRESH, strategy="magic"
            )

    def test_warm_keeps_feature_subsets(self, small_pipeline,
                                        small_result):
        update = incremental_update(
            small_pipeline, small_result, self.FRESH, strategy="warm"
        )
        for new, old in zip(
            update.signature_set, small_result.signature_set
        ):
            assert new.features.patterns == old.features.patterns

    def test_warm_cheaper_than_retrain(self, small_pipeline, small_result):
        warm = incremental_update(
            small_pipeline, small_result, self.FRESH, strategy="warm"
        )
        retrain = incremental_update(
            small_pipeline, small_result, self.FRESH, strategy="retrain"
        )
        assert warm.newton_iterations < retrain.newton_iterations

    def test_warm_still_detects(self, small_pipeline, small_result):
        update = incremental_update(
            small_pipeline, small_result, self.FRESH, strategy="warm"
        )
        assert update.signature_set.evaluate(
            "x=1' union select 7,8,9-- -"
        )[0] > 0.6

    def test_warm_keeps_thresholds(self, small_pipeline, small_result):
        update = incremental_update(
            small_pipeline, small_result, self.FRESH, strategy="warm"
        )
        for new, old in zip(
            update.signature_set, small_result.signature_set
        ):
            assert new.threshold == old.threshold
