"""Tests for incremental signature updates (Experiment 2 substrate)."""

import numpy as np
import pytest

from repro.core import incremental_update


class TestIncrementalUpdate:
    def test_empty_update_is_noop(self, small_pipeline, small_result):
        update = incremental_update(small_pipeline, small_result, [])
        assert update.signature_set is small_result.signature_set
        assert update.added_rows == 0

    def test_new_samples_assigned_to_biclusters(
        self, small_pipeline, small_result
    ):
        fresh = [
            "id=9' union select 1,2,3,4-- -",
            "cat=4' and sleep(7)-- -",
            "u=1' or '1'='1",
        ]
        update = incremental_update(small_pipeline, small_result, fresh)
        assert update.added_rows == 3
        assert sum(update.assigned.values()) == 3

    def test_signature_count_preserved(self, small_pipeline, small_result):
        fresh = ["id=9' union select 1,2-- -"] * 5
        update = incremental_update(small_pipeline, small_result, fresh)
        assert len(update.signature_set) == len(small_result.signature_set)

    def test_theta_actually_retrained(self, small_pipeline, small_result):
        fresh = [
            f"id={i}' union select {i},2,3-- -" for i in range(40)
        ]
        update = incremental_update(small_pipeline, small_result, fresh)
        changed = any(
            new.model.theta.shape != old.model.theta.shape
            or not np.allclose(new.model.theta, old.model.theta)
            for new, old in zip(
                update.signature_set, small_result.signature_set
            )
        )
        assert changed

    def test_cluster_structure_fixed(self, small_pipeline, small_result):
        """The paper retrains Θ only; bicluster feature sets must not
        change."""
        fresh = ["id=5' or 1=1-- -"] * 10
        update = incremental_update(small_pipeline, small_result, fresh)
        for new, old in zip(
            update.signature_set, small_result.signature_set
        ):
            assert new.bicluster_index == old.bicluster_index
            assert new.bicluster_feature_count == old.bicluster_feature_count

    def test_updated_set_still_detects(self, small_pipeline, small_result):
        fresh = [
            "id=9' union select 1,2,3,4-- -",
            "cat=4' and sleep(7)-- -",
        ]
        update = incremental_update(small_pipeline, small_result, fresh)
        assert update.signature_set.evaluate(
            "x=1' union select 7,8,9-- -"
        )[0] > 0.6


class TestWarmStrategy:
    FRESH = [
        "id=9' union select 1,2,3,4-- -",
        "cat=4' and sleep(7)-- -",
        "u=1' or '1'='1",
    ] * 5

    def test_unknown_strategy_rejected(self, small_pipeline, small_result):
        with pytest.raises(ValueError):
            incremental_update(
                small_pipeline, small_result, self.FRESH, strategy="magic"
            )

    def test_warm_keeps_feature_subsets(self, small_pipeline,
                                        small_result):
        update = incremental_update(
            small_pipeline, small_result, self.FRESH, strategy="warm"
        )
        for new, old in zip(
            update.signature_set, small_result.signature_set
        ):
            assert new.features.patterns == old.features.patterns

    def test_warm_cheaper_than_retrain(self, small_pipeline, small_result):
        warm = incremental_update(
            small_pipeline, small_result, self.FRESH, strategy="warm"
        )
        retrain = incremental_update(
            small_pipeline, small_result, self.FRESH, strategy="retrain"
        )
        assert warm.newton_iterations < retrain.newton_iterations

    def test_warm_still_detects(self, small_pipeline, small_result):
        update = incremental_update(
            small_pipeline, small_result, self.FRESH, strategy="warm"
        )
        assert update.signature_set.evaluate(
            "x=1' union select 7,8,9-- -"
        )[0] > 0.6

    def test_warm_keeps_thresholds(self, small_pipeline, small_result):
        update = incremental_update(
            small_pipeline, small_result, self.FRESH, strategy="warm"
        )
        for new, old in zip(
            update.signature_set, small_result.signature_set
        ):
            assert new.threshold == old.threshold


class TestWarmStateValidation:
    """Hardening: a warm state whose catalog disagrees with its matrix
    (or whose signatures reference foreign features) must die loudly
    instead of silently mis-indexing columns."""

    FRESH = ["id=9' union select 1,2-- -"]

    def test_catalog_count_mismatch_rejected(
        self, small_pipeline, small_result
    ):
        from dataclasses import replace

        from repro.features.definitions import FeatureCatalog

        truncated = replace(
            small_result,
            catalog=FeatureCatalog(list(small_result.catalog)[:-1]),
        )
        with pytest.raises(ValueError, match="catalog mismatch"):
            incremental_update(small_pipeline, truncated, self.FRESH)

    def test_catalog_order_mismatch_rejected(
        self, small_pipeline, small_result
    ):
        from dataclasses import replace

        from repro.features.definitions import FeatureCatalog

        shuffled = list(small_result.catalog)
        shuffled[0], shuffled[1] = shuffled[1], shuffled[0]
        reordered = replace(
            small_result, catalog=FeatureCatalog(shuffled)
        )
        with pytest.raises(ValueError, match="order diverged"):
            incremental_update(small_pipeline, reordered, self.FRESH)

    def test_foreign_signature_features_rejected(
        self, small_pipeline, small_result
    ):
        from dataclasses import replace

        from repro.core.signature import SignatureSet
        from repro.features.definitions import (
            SOURCE_RESERVED,
            FeatureCatalog,
            FeatureDefinition,
        )

        old = small_result.signature_set.signatures[0]
        alien = FeatureCatalog([
            FeatureDefinition(
                index=position,
                pattern=rf"zzz-never-seen-{position}",
                label=f"alien-{position}",
                source=SOURCE_RESERVED,
            )
            for position in range(len(old.features))
        ])
        doctored = SignatureSet(
            [replace(old, features=alien, _compiled=[])]
            + list(small_result.signature_set.signatures[1:]),
            normalizer=small_result.signature_set.normalizer,
        )
        state = replace(small_result, signature_set=doctored)
        with pytest.raises(ValueError, match="absent from the warm"):
            incremental_update(
                small_pipeline, state, self.FRESH, strategy="warm"
            )

    def test_cold_start_without_biclusters_rejected(
        self, small_pipeline, small_result
    ):
        from dataclasses import replace

        cold = replace(
            small_result,
            biclusters=[
                replace(b, is_black_hole=True)
                for b in small_result.biclusters
            ],
        )
        with pytest.raises(ValueError, match="cold start"):
            incremental_update(small_pipeline, cold, self.FRESH)

    def test_cold_start_empty_payloads_is_noop(
        self, small_pipeline, small_result
    ):
        # The other cold-start edge: nothing to fold in is a no-op,
        # not an error, even before any validation runs.
        update = incremental_update(small_pipeline, small_result, [])
        assert update.signature_set is small_result.signature_set
        assert update.newton_iterations == 0
