"""Tests for the bicluster → signature generalization step."""

import numpy as np
import pytest

from repro.cluster import Bicluster
from repro.core import GeneralizerConfig, SignatureGeneralizer
from repro.features import build_catalog


@pytest.fixture(scope="module")
def training_data():
    """Synthetic bicluster: positives active on features 0-2, negatives
    mostly flat, a useless constant feature at column 3."""
    rng = np.random.default_rng(8)
    catalog = build_catalog().subset(list(range(6)))
    positives = np.zeros((120, 6))
    positives[:, 0] = rng.poisson(2, 120) + 1
    positives[:, 1] = rng.poisson(1, 120)
    positives[:, 2] = 1
    negatives = np.zeros((300, 6))
    negatives[:, 4] = rng.poisson(1, 300)
    bicluster = Bicluster(
        index=3,
        sample_indices=np.arange(120),
        feature_indices=np.array([0, 1, 2, 3]),
        is_black_hole=False,
    )
    return catalog, positives, negatives, bicluster


class TestTraining:
    def test_signature_separates_classes(self, training_data):
        catalog, positives, negatives, bicluster = training_data
        training = SignatureGeneralizer().train(
            bicluster, positives, negatives, catalog
        )
        signature = training.signature
        original = {d.pattern: i for i, d in enumerate(catalog)}
        columns = [original[d.pattern] for d in signature.features]

        def proba(rows):
            z = signature.model.intercept + rows[:, columns] @ (
                signature.model.coefficients
            )
            return 1 / (1 + np.exp(-z))

        assert proba(positives).mean() > proba(negatives).mean() + 0.5

    def test_positive_probability_high(self, training_data):
        catalog, positives, negatives, bicluster = training_data
        training = SignatureGeneralizer().train(
            bicluster, positives, negatives, catalog
        )
        signature = training.signature
        # Reconstruct feature columns for scoring.
        original = {d.pattern: i for i, d in enumerate(catalog)}
        columns = [original[d.pattern] for d in signature.features]
        z = signature.model.intercept + positives[:, columns] @ (
            signature.model.coefficients
        )
        assert (1 / (1 + np.exp(-z))).mean() > 0.8

    def test_metadata_recorded(self, training_data):
        catalog, positives, negatives, bicluster = training_data
        training = SignatureGeneralizer().train(
            bicluster, positives, negatives, catalog
        )
        assert training.signature.bicluster_index == 3
        assert training.signature.training_samples == 120
        assert training.signature.bicluster_feature_count == 4

    def test_constant_feature_pruned(self, training_data):
        catalog, positives, negatives, bicluster = training_data
        training = SignatureGeneralizer().train(
            bicluster, positives, negatives, catalog
        )
        patterns = [d.pattern for d in training.signature.features]
        assert catalog[3].pattern not in patterns
        assert training.pruned_features >= 1

    def test_prune_disabled_keeps_all(self, training_data):
        catalog, positives, negatives, bicluster = training_data
        config = GeneralizerConfig(prune_ratio=0.0)
        training = SignatureGeneralizer(config).train(
            bicluster, positives, negatives, catalog
        )
        assert training.signature.n_features == 4

    def test_negative_subsampling_cap(self, training_data):
        catalog, positives, negatives, bicluster = training_data
        config = GeneralizerConfig(max_negative_samples=50)
        rng = np.random.default_rng(0)
        training = SignatureGeneralizer(config).train(
            bicluster, positives, negatives, catalog, rng=rng
        )
        assert training.report.newton_iterations >= 1

    def test_threshold_propagates(self, training_data):
        catalog, positives, negatives, bicluster = training_data
        config = GeneralizerConfig(threshold=0.8)
        training = SignatureGeneralizer(config).train(
            bicluster, positives, negatives, catalog
        )
        assert training.signature.threshold == 0.8
