"""Tests for the four-phase pipeline."""

import numpy as np
import pytest

from repro.core import PipelineConfig, PSigenePipeline


class TestPhase1:
    def test_crawler_collects_samples(self, small_pipeline, small_result):
        assert len(small_result.samples) >= 800

    def test_direct_generation_mode(self):
        config = PipelineConfig(
            seed=1, n_attack_samples=50, use_crawler=False
        )
        samples = PSigenePipeline(config).collect_samples()
        assert len(samples) == 50
        assert all(s.family for s in samples)

    def test_crawled_samples_attributed(self, small_result):
        assert all(s.portal for s in small_result.samples)


class TestPhase2:
    def test_pruning_from_477(self, small_result):
        assert small_result.pruning.initial_features == 477
        assert small_result.pruning.final_features < 300

    def test_matrix_aligned_with_samples(self, small_result):
        assert small_result.matrix.n_samples == len(small_result.samples)

    def test_benign_matrix_same_catalog(self, small_result):
        assert (
            small_result.benign_matrix.catalog.patterns
            == small_result.matrix.catalog.patterns
        )

    def test_matrix_is_sparse_like_paper(self, small_result):
        # Paper: ~85% zeros, ~6% ones.
        assert small_result.matrix.sparsity() > 0.6

    def test_some_binary_features(self, small_result):
        # Paper: 70 of 159 behaved as binary features.
        mask = small_result.matrix.binary_feature_mask()
        assert 0 < mask.sum() < small_result.matrix.n_features


class TestPhase3:
    def test_biclusters_selected(self, small_result):
        assert 3 <= len(small_result.biclusters) <= 11

    def test_five_percent_rule_on_clustered_subset(
        self, small_result, small_config
    ):
        clustered = min(
            small_config.max_cluster_rows, small_result.matrix.n_samples
        )
        for bicluster in small_result.biclustering.biclusters:
            assert bicluster.n_samples >= 0.05 * clustered * 0.9

    def test_extension_grows_biclusters(self, small_result):
        raw_total = sum(
            b.n_samples for b in small_result.biclustering.biclusters
        )
        extended_total = sum(b.n_samples for b in small_result.biclusters)
        assert extended_total >= raw_total

    def test_extended_indices_valid(self, small_result):
        n = small_result.matrix.n_samples
        for bicluster in small_result.biclusters:
            assert (bicluster.sample_indices >= 0).all()
            assert (bicluster.sample_indices < n).all()

    def test_biclusters_nonoverlapping(self, small_result):
        seen = set()
        for bicluster in small_result.biclustering.biclusters:
            members = set(bicluster.sample_indices.tolist())
            assert not members & seen
            seen |= members

    def test_cophenetic_reported(self, small_result):
        assert 0.5 < small_result.biclustering.cophenetic_correlation <= 1.0

    def test_black_hole_present(self, small_result):
        # The probe families must produce at least one black hole.
        assert any(b.is_black_hole for b in small_result.biclusters)


class TestPhase4:
    def test_one_signature_per_active_bicluster(self, small_result):
        active = [
            b for b in small_result.biclusters
            if not b.is_black_hole and b.n_samples >= 2
        ]
        assert len(small_result.signature_set) == len(active)

    def test_no_signature_for_black_holes(self, small_result):
        black_holes = {
            b.index for b in small_result.biclusters if b.is_black_hole
        }
        signature_indices = {
            s.bicluster_index for s in small_result.signature_set
        }
        assert not black_holes & signature_indices

    def test_signature_features_subset_of_bicluster(self, small_result):
        by_index = {b.index: b for b in small_result.biclusters}
        for training in small_result.trainings:
            signature = training.signature
            bicluster = by_index[signature.bicluster_index]
            bicluster_patterns = {
                small_result.catalog[int(i)].pattern
                for i in bicluster.feature_indices
            }
            for definition in signature.features:
                assert definition.pattern in bicluster_patterns

    def test_logistic_pruning_observed(self, small_result):
        # Table VI: signatures use at most as many features as their
        # bicluster, usually fewer.
        for row in small_result.table6():
            assert (
                row["features_signature"] <= row["features_biclustering"]
            )

    def test_table6_rows_complete(self, small_result):
        rows = small_result.table6()
        assert len(rows) == len(small_result.signature_set)
        for row in rows:
            assert row["samples"] > 0
            assert row["features_signature"] > 0


class TestDeterminism:
    def test_same_config_same_signatures(self):
        config = PipelineConfig(
            seed=77, n_attack_samples=300, n_benign_train=800,
            max_cluster_rows=250,
        )
        first = PSigenePipeline(config).run()
        second = PSigenePipeline(config).run()
        assert len(first.signature_set) == len(second.signature_set)
        for a, b in zip(first.signature_set, second.signature_set):
            assert np.allclose(a.model.theta, b.model.theta)
