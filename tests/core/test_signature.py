"""Tests for GeneralizedSignature and SignatureSet."""

import numpy as np
import pytest

from repro.core import GeneralizedSignature, SignatureSet
from repro.features import build_catalog
from repro.learn import LogisticModel
from repro.normalize import Normalizer


def _toy_signature(threshold=0.5, bicluster_index=1):
    """Two features: union-select and quote-or; strong positive weights."""
    catalog = build_catalog()
    labels = ["kw:union", "kw:sleep"]
    indices = [catalog.by_label(label).index for label in labels]
    features = catalog.subset(indices)
    model = LogisticModel(np.array([-4.0, 3.0, 3.0]))
    return GeneralizedSignature(
        bicluster_index=bicluster_index,
        features=features,
        model=model,
        threshold=threshold,
        bicluster_feature_count=10,
        training_samples=100,
    )


class TestSignature:
    def test_feature_vector_counts(self):
        signature = _toy_signature()
        vector = signature.feature_vector("1' union select sleep(5)")
        assert vector.tolist() == [1.0, 1.0]

    def test_probability_rises_with_evidence(self):
        signature = _toy_signature()
        none = signature.probability("id=1")
        one = signature.probability("1' union select 2")
        both = signature.probability("1' union select sleep(5)")
        assert none < one < both

    def test_probability_is_sigmoid_of_theta(self):
        signature = _toy_signature()
        # counts (1, 1): z = -4 + 3 + 3 = 2.
        expected = 1 / (1 + np.exp(-2.0))
        assert signature.probability(
            "1' union select sleep(1)"
        ) == pytest.approx(expected)

    def test_matches_uses_threshold(self):
        low = _toy_signature(threshold=0.5)
        high = _toy_signature(threshold=0.99)
        payload = "1' union select sleep(1)"  # p ≈ 0.88
        assert low.matches(payload)
        assert not high.matches(payload)

    def test_misaligned_model_rejected(self):
        catalog = build_catalog().subset([0, 1])
        with pytest.raises(ValueError):
            GeneralizedSignature(
                bicluster_index=1,
                features=catalog,
                model=LogisticModel(np.array([0.0, 1.0])),  # 1 coef, 2 feats
            )

    def test_describe_prints_theta(self):
        signature = _toy_signature()
        text = signature.describe()
        assert "Sig_b1" in text
        assert "-4.000000" in text
        assert "kw:union" in text

    def test_n_features(self):
        assert _toy_signature().n_features == 2


class TestSignatureSet:
    def _set(self):
        return SignatureSet(
            [_toy_signature(bicluster_index=1),
             _toy_signature(threshold=0.9, bicluster_index=2)],
        )

    def test_len_and_iter(self):
        assert len(self._set()) == 2
        assert [s.bicluster_index for s in self._set()] == [1, 2]

    def test_score_is_max_probability(self):
        signatures = self._set()
        payload = "1' union select sleep(1)"
        probabilities = signatures.probabilities(payload)
        score, _fired = signatures.evaluate(payload)
        assert score == pytest.approx(probabilities.max())

    def test_alerts_lists_fired_indices(self):
        signatures = self._set()
        _score, fired = signatures.evaluate("1' union select sleep(1)")
        assert fired == [1]  # second signature's 0.9 threshold not met

    def test_deprecated_entry_points_warn_but_work(self):
        signatures = self._set()
        payload = "1' union select sleep(1)"
        score, fired = signatures.evaluate(payload)
        with pytest.warns(DeprecationWarning, match="evaluate"):
            assert signatures.score(payload) == pytest.approx(score)
        with pytest.warns(DeprecationWarning, match="evaluate"):
            assert signatures.alerts(payload) == fired

    def test_normalization_inside_set(self):
        signatures = self._set()
        raw, _ = signatures.evaluate("1' union select sleep(1)")
        evaded, _ = signatures.evaluate(
            "1%2527/**/UNION/**/SELECT/**/SLEEP(1)"
        )
        assert evaded == pytest.approx(raw)

    def test_subset_by_bicluster(self):
        subset = self._set().subset([2])
        assert len(subset) == 1
        assert subset[0].bicluster_index == 2

    def test_with_threshold_overrides_all(self):
        replaced = self._set().with_threshold(0.1)
        assert all(s.threshold == 0.1 for s in replaced)

    def test_with_threshold_does_not_mutate(self):
        original = self._set()
        original.with_threshold(0.1)
        assert original[1].threshold == 0.9

    def test_empty_set_scores_zero(self):
        assert SignatureSet([]).evaluate("anything")[0] == 0.0

    def test_evaluate_matches_per_signature_probabilities(self):
        # Checked against probabilities(), which walks the signatures
        # independently of the evaluate() single-pass implementation.
        signatures = self._set()
        for payload in (
            "1' union select sleep(1)",
            "1%2527/**/UNION/**/SELECT/**/SLEEP(1)",
            "course=cs101&term=fall2012",
            "",
        ):
            score, fired = signatures.evaluate(payload)
            probabilities = signatures.probabilities(payload)
            assert score == pytest.approx(probabilities.max())
            assert fired == [
                s.bicluster_index
                for s, p in zip(signatures, probabilities)
                if p >= s.threshold
            ]

    def test_evaluate_normalized_skips_normalization(self):
        signatures = self._set()
        payload = "1%27 UNION SELECT SLEEP(1)"
        normalized = signatures.normalizer(payload)
        assert signatures.evaluate_normalized(
            normalized
        ) == signatures.evaluate(payload)

    def test_evaluate_empty_set(self):
        assert SignatureSet([]).evaluate("1' union select 1") == (0.0, [])


class TestEvaluateNormalizedEdges:
    def _tie_signature(self, threshold):
        """Zero model: probability is exactly sigmoid(0) = 0.5 always."""
        catalog = build_catalog()
        features = catalog.subset([0, 1])
        return GeneralizedSignature(
            bicluster_index=1,
            features=features,
            model=LogisticModel(np.zeros(3)),
            threshold=threshold,
            bicluster_feature_count=10,
            training_samples=100,
        )

    def test_empty_set(self):
        assert SignatureSet([]).evaluate_normalized("payload") == (
            0.0, []
        )

    def test_empty_set_does_not_warm(self):
        assert SignatureSet([]).warm() is False

    def test_all_below_threshold(self):
        signatures = SignatureSet([self._tie_signature(0.99)])
        score, fired = signatures.evaluate_normalized("id=1")
        assert score == 0.5
        assert fired == []

    def test_probability_exactly_at_threshold_fires(self):
        # Alerting is >=, not >: a probability equal to the threshold
        # must fire, on the fused and the legacy path alike.
        from repro.match import fused_disabled

        signatures = SignatureSet([self._tie_signature(0.5)])
        score, fired = signatures.evaluate_normalized("anything")
        assert (score, fired) == (0.5, [1])
        with fused_disabled():
            assert signatures.evaluate_normalized("anything") == (
                0.5, [1]
            )

    def test_fused_agrees_with_legacy_over_fuzz_corpus(
        self, small_signatures
    ):
        from repro.conformance import generate_corpus
        from repro.match import fused_disabled

        payloads = generate_corpus(seed=97, budget="small")
        normalized = [small_signatures.normalizer(p) for p in payloads]
        fused = [
            small_signatures.evaluate_normalized(n) for n in normalized
        ]
        with fused_disabled():
            legacy = [
                small_signatures.evaluate_normalized(n)
                for n in normalized
            ]
        assert fused == legacy

    def test_threshold_sweep_compiles_nothing_new(self, small_signatures):
        # The with_threshold ROC sweep reuses both the compile memo and
        # the fused evaluator: after one evaluation, sweeping thresholds
        # must not invoke re.compile again.
        from repro.regexlib import compile_cache_stats

        small_signatures.evaluate_normalized("1' union select 1")
        before = compile_cache_stats().misses
        for threshold in (0.1, 0.5, 0.9, 0.99):
            swept = small_signatures.with_threshold(threshold)
            swept.evaluate_normalized("1' union select 1")
        assert compile_cache_stats().misses == before


class TestTrainedSignatures:
    """Against the session-scoped trained pipeline."""

    def test_attacks_score_high(self, small_signatures):
        attacks = [
            "id=1' union select 1,2,concat(database(),char(58)),4-- -",
            "cat=5' and sleep(9)-- -",
            "page=1' or '1'='1",
        ]
        for payload in attacks:
            assert small_signatures.evaluate(payload)[0] > 0.6, payload

    def test_benign_scores_low(self, small_signatures):
        benign = [
            "course=cs101&term=fall2012&section=2",
            "q=campus%20shuttle%20schedule&page=1",
            "invoice=123456&amount=50.00&currency=usd",
            "",
        ]
        for payload in benign:
            assert small_signatures.evaluate(payload)[0] < 0.5, payload

    def test_zero_day_generalization(self, small_signatures):
        """Payloads with structures *not* in the grammar (novel table
        names, novel numbers, different casing) must still be caught —
        the generalization claim of the paper."""
        novel = [
            "zz=777' UNION SELECT password,3,4 FROM secret_vault-- -",
            "k=9' AND SLEEP(123)-- -",
            "v=-42' uNiOn SeLeCt 99,98,97,96,95,94 fRoM flags#",
        ]
        for payload in novel:
            assert small_signatures.evaluate(payload)[0] > 0.6, payload
