"""Tests for the ReDoS linter."""

import pytest

from repro.ids.rules import Rule
from repro.regexlib.redos import lint_pattern, lint_ruleset


class TestKnownBadShapes:
    @pytest.mark.parametrize("pattern,expected", [
        (r"(a+)+b", "nested unbounded repetition"),
        (r"(\s*x)*y", "nested unbounded repetition"),
        (r"((ab)*c)*d", "nested unbounded repetition"),
        (r"(a|ab)+c", "overlapping alternation"),
        (r"(x|xy|z)*w", "overlapping alternation"),
        (r"\s*\s*x", "adjacent overlapping"),
        (r"a*a+b", "adjacent overlapping"),
    ])
    def test_flagged(self, pattern, expected):
        report = lint_pattern(pattern)
        assert report.analyzable
        assert any(expected in f for f in report.findings), report.findings


class TestKnownGoodShapes:
    @pytest.mark.parametrize("pattern", [
        r"union\s+select",
        r"[^&]*=[0-9]+",
        r"sleep\s*\(\s*\d+",
        r"(abc|def)+x",          # disjoint branches
        r"a+b+c",                 # adjacent but non-overlapping
        r"\bselect\b",
        r"a{2,4}b",               # bounded repetition never blows up
    ])
    def test_clean(self, pattern):
        report = lint_pattern(pattern)
        assert report.analyzable
        assert report.safe, report.findings


class TestUnanalyzable:
    @pytest.mark.parametrize("pattern", [
        r"(?=look)x",
        r"(a)\1",
    ])
    def test_reported_not_guessed(self, pattern):
        report = lint_pattern(pattern)
        assert not report.analyzable
        assert report.findings == []
        assert not report.safe

    def test_anchors_stripped_not_blocking(self):
        report = lint_pattern(r"^union\s+select$")
        assert report.analyzable
        assert report.safe


class TestRulesetLinting:
    def test_only_enabled_rules_checked(self):
        rules = [
            Rule(1, "on", r"(a+)+b"),
            Rule(2, "off", r"(b+)+c", enabled=False),
        ]
        reports = lint_ruleset(rules)
        assert set(reports) == {"1"}

    def test_reproduced_rulesets_have_no_exponential_patterns(self):
        """Star-height-2 (the truly exponential shape) must not appear in
        any enabled rule we ship, except where a bounded context makes it
        benign; adjacent-overlap warnings (polynomial) are tolerated."""
        from repro.ids.rulesets import (
            build_bro_ruleset,
            build_modsec_ruleset,
            build_snort_ruleset,
        )

        for ruleset in (
            build_bro_ruleset(), build_snort_ruleset(),
            build_modsec_ruleset(),
        ):
            reports = lint_ruleset(ruleset.rules)
            exponential = {
                sid: r.findings
                for sid, r in reports.items()
                if any("nested unbounded" in f for f in r.findings)
                and sid != "981250"  # (?:,\s*\d+\s*)+ — bounded by digits
            }
            assert not exponential, (ruleset.name, exponential)

    def test_psigene_signature_features_lintable(self, small_signatures):
        """Most deployed pSigene feature patterns analyze clean."""
        patterns = {
            d.pattern
            for signature in small_signatures
            for d in signature.features
        }
        analyzable = [lint_pattern(p) for p in patterns]
        clean = sum(1 for r in analyzable if r.safe)
        assert clean >= len(analyzable) * 0.5
