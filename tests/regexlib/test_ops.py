"""Tests for count_all and the compile cache."""

import pytest

from repro.regexlib import (
    PatternError,
    compile_cache_clear,
    compile_cache_stats,
    compile_pattern,
    count_all,
    matches,
    validate,
)


class TestCountAll:
    def test_zero_matches(self):
        assert count_all("union", "hello world") == 0

    def test_single_match(self):
        assert count_all("union", "union select") == 1

    def test_multiple_matches(self):
        assert count_all("char", "char(97),char(98),char(99)") == 3

    def test_case_insensitive_default(self):
        assert count_all("union", "UNION UNION") == 2

    def test_case_sensitive_option(self):
        assert count_all("union", "UNION union", ignore_case=False) == 1

    def test_nonoverlapping(self):
        assert count_all("aa", "aaaa") == 2

    def test_paper_example_feature(self):
        # Table III feature 37: =[-0-9\%]*
        assert count_all(r"=[-0-9\%]*", "a=1&b=2&c=x") == 3

    def test_paper_example_char_pattern(self):
        pattern = r"ch(a)?r\s*?\(\s*?\d"
        payload = "concat(database(),char(58),user(),char(58))"
        assert count_all(pattern, payload) == 2

    def test_empty_matching_pattern_rejected(self):
        with pytest.raises(PatternError):
            count_all(r"a*", "aaa")

    def test_invalid_pattern_rejected(self):
        with pytest.raises(PatternError):
            count_all(r"(unclosed", "x")

    def test_empty_text(self):
        assert count_all("x", "") == 0


class TestMatches:
    def test_positive(self):
        assert matches(r"union\s+select", "1' union select 2")

    def test_negative(self):
        assert not matches(r"union\s+select", "union of students")


class TestValidate:
    def test_good_pattern(self):
        assert validate(r"\bselect\b")

    def test_bad_syntax(self):
        assert not validate(r"(oops")

    def test_empty_matcher_invalid(self):
        assert not validate(r"x*")

    def test_optional_prefix_ok_if_anchored_by_required(self):
        assert validate(r"\)?;")


class TestCompileCache:
    def test_same_object_returned(self):
        first = compile_pattern("cache-test-pattern")
        second = compile_pattern("cache-test-pattern")
        assert first is second

    def test_flags_distinguish_entries(self):
        ci = compile_pattern("flagtest", ignore_case=True)
        cs = compile_pattern("flagtest", ignore_case=False)
        assert ci is not cs

    def test_default_and_explicit_flag_share_one_entry(self):
        # The memo keys on the flag's value, not its spelling: passing
        # ignore_case=True explicitly must hit the default's entry.
        compile_cache_clear()
        compile_pattern("keyed-once")
        before = compile_cache_stats()
        compile_pattern("keyed-once", ignore_case=True)
        after = compile_cache_stats()
        assert after.misses == before.misses
        assert after.hits == before.hits + 1
        assert after.size == before.size

    def test_stats_counters_move(self):
        compile_cache_clear()
        start = compile_cache_stats()
        assert (start.hits, start.misses, start.size) == (0, 0, 0)
        compile_pattern("stats-probe")
        compile_pattern("stats-probe")
        stats = compile_cache_stats()
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.size == 1
        assert stats.maxsize >= stats.size

    def test_failed_compile_not_counted_as_miss(self):
        compile_cache_clear()
        with pytest.raises(PatternError):
            compile_pattern("(unclosed")
        stats = compile_cache_stats()
        assert stats.misses == 0
        assert stats.size == 0
