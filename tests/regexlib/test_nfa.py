"""Tests for the Thompson-NFA engine, differential against ``re``."""

import re

import pytest

from repro.regexlib.nfa import NfaMatcher, UnsupportedPatternError
from repro.regexlib.parser import RegexSyntaxError


def _ref(pattern, text):
    return bool(re.search(pattern, text, re.IGNORECASE))


SUBSET_PATTERNS = [
    r"union\s+select",
    r"union\s+(?:all\s+)?select",
    r"ch(a)?r\s*\(\s*\d",
    r"[^a-zA-Z&]+=",
    r"sleep\s*\(\s*\d+",
    r"order\s+by\s+[0-9]{1,3}",
    r"--[\s']",
    r"0x[0-9a-f]{4,8}",
    r"(abc|abd|ae)x",
    r"a+b*c?d",
    r"[\s+]*select",
    r"\d\s*=\s*\d",
]

TEXTS = [
    "id=1' union select 1,2,3-- -",
    "id=1' UNION ALL SELECT NULL,NULL",
    "concat(database(),char(58),user())",
    "q=campus shuttle schedule",
    "x' and sleep(5)-- -",
    "1' ORDER BY 10-- -",
    "benign text with = signs and 0xdeadbeef",
    "aaabbbcccd",
    "abdx abcx aex",
    "",
    "5=5 and 6 = 6",
]


class TestDifferentialAgainstRe:
    @pytest.mark.parametrize("pattern", SUBSET_PATTERNS)
    def test_search_agrees_with_re(self, pattern):
        matcher = NfaMatcher(pattern)
        for text in TEXTS:
            assert matcher.search(text) == _ref(pattern, text), (
                pattern, text
            )

    def test_count_on_literal_tokens(self):
        matcher = NfaMatcher(r"char")
        assert matcher.count("char(97),char(98),char(99)") == 3

    def test_count_zero(self):
        assert NfaMatcher(r"union").count("no keywords here") == 0

    def test_count_consistent_with_search(self):
        for pattern in SUBSET_PATTERNS:
            matcher = NfaMatcher(pattern)
            for text in TEXTS:
                assert (matcher.count(text) > 0) == matcher.search(text)


class TestSemantics:
    def test_case_insensitive_literals(self):
        assert NfaMatcher("UnIoN").search("union select")

    def test_negated_class(self):
        matcher = NfaMatcher(r"[^0-9]=")
        assert matcher.search("a=1")
        assert not matcher.search("1=1")

    def test_counted_repetition_bounds(self):
        matcher = NfaMatcher(r"ab{2,3}c")
        assert not matcher.search("abc")
        assert matcher.search("abbc")
        assert matcher.search("abbbc")
        assert not matcher.search("abbbbc")

    def test_dot_excludes_newline(self):
        matcher = NfaMatcher(r"a.b")
        assert matcher.search("axb")
        assert not matcher.search("a\nb")

    def test_word_boundaries(self):
        matcher = NfaMatcher(r"\bselect\b")
        assert matcher.search("please select one")
        assert not matcher.search("selection")
        assert matcher.search("select")

    def test_non_boundary(self):
        matcher = NfaMatcher(r"x\By")
        assert matcher.search("wxyz")

    def test_escape_sets(self):
        matcher = NfaMatcher(r"\d\s\w")
        assert matcher.search("x 5 a y")
        assert not matcher.search("xx")

    def test_lazy_quantifier_same_occurrence_semantics(self):
        greedy = NfaMatcher(r"in\s*\(+\s*select")
        lazy = NfaMatcher(r"in\s*?\(+\s*?select")
        text = "1 in ( select 2"
        assert greedy.search(text) == lazy.search(text) is True

    def test_hex_escape(self):
        assert NfaMatcher(r"\x41").search("A")


class TestLinearTime:
    def test_redos_payload_runs_fast(self):
        """The classic exponential backtracker finishes instantly here."""
        import time

        matcher = NfaMatcher(r"(a+)+b")
        payload = "a" * 200 + "c"
        start = time.perf_counter()
        assert not matcher.search(payload)
        assert time.perf_counter() - start < 0.5

    def test_state_count_reported(self):
        matcher = NfaMatcher(r"union\s+select")
        assert matcher.state_count > 10


class TestRejections:
    @pytest.mark.parametrize("pattern", [
        r"a*",            # matches empty string
        r"(?:x)?",        # matches empty string
    ])
    def test_nullable_rejected(self, pattern):
        with pytest.raises(UnsupportedPatternError):
            NfaMatcher(pattern)

    @pytest.mark.parametrize("pattern", [
        r"^anchored",
        r"(?=lookahead)x",
        r"(back)\1",
        r"a{500}",
    ])
    def test_unsupported_syntax_reported(self, pattern):
        with pytest.raises(UnsupportedPatternError):
            NfaMatcher(pattern)

    @pytest.mark.parametrize("pattern", [
        r"(unbalanced",
        r"*dangling",
        r"[unterminated",
    ])
    def test_malformed_rejected(self, pattern):
        with pytest.raises((RegexSyntaxError, UnsupportedPatternError)):
            NfaMatcher(pattern)


class TestAgainstCatalog:
    def test_feature_catalog_coverage(self):
        """A substantial share of the real feature catalog compiles and
        agrees with ``re`` on attack samples."""
        from repro.corpus import CorpusGenerator
        from repro.features import build_catalog
        from repro.normalize import normalize

        catalog = build_catalog()
        payloads = [
            normalize(s.payload)
            for s in CorpusGenerator(seed=77).generate(30)
        ]
        compiled = 0
        for definition in catalog:
            try:
                matcher = NfaMatcher(definition.pattern)
            except (UnsupportedPatternError, RegexSyntaxError):
                continue
            compiled += 1
            for payload in payloads:
                assert matcher.search(payload) == bool(
                    re.search(definition.pattern, payload, re.IGNORECASE)
                ), definition.pattern
        assert compiled > len(catalog) * 0.8
