"""Tests for regex tokenization and signature deconstruction."""

import pytest

from repro.regexlib import (
    RegexSyntaxError,
    deconstruct,
    literal_text,
    split_alternation,
    tokenize,
    top_level_groups,
)


class TestTokenize:
    def test_literals(self):
        kinds = [t.kind for t in tokenize("abc")]
        assert kinds == ["literal"] * 3

    def test_escape(self):
        tokens = tokenize(r"\s\d")
        assert [t.text for t in tokens] == [r"\s", r"\d"]
        assert all(t.kind == "escape" for t in tokens)

    def test_character_class(self):
        tokens = tokenize(r"[a-z0-9]")
        assert len(tokens) == 1
        assert tokens[0].kind == "class"

    def test_negated_class_with_bracket(self):
        tokens = tokenize(r"[^]a]")
        assert tokens[0].kind == "class"
        assert tokens[0].text == r"[^]a]"

    def test_class_with_escaped_bracket(self):
        tokens = tokenize(r"[a\]b]")
        assert tokens[0].text == r"[a\]b]"

    def test_group_open_plain(self):
        tokens = tokenize("(a)")
        assert tokens[0].kind == "group_open"
        assert tokens[0].text == "("

    def test_group_open_noncapturing(self):
        tokens = tokenize("(?:a)")
        assert tokens[0].text == "(?:"

    def test_alternation(self):
        kinds = [t.kind for t in tokenize("a|b")]
        assert kinds == ["literal", "alternation", "literal"]

    def test_quantifiers(self):
        tokens = tokenize("a*b+c?d{2,3}")
        quantifiers = [t.text for t in tokens if t.kind == "quantifier"]
        assert quantifiers == ["*", "+", "?", "{2,3}"]

    def test_lazy_quantifier(self):
        tokens = tokenize(r"a*?")
        assert tokens[1].text == "*?"

    def test_unclosed_brace_is_literal(self):
        tokens = tokenize("a{2")
        assert tokens[1].kind == "literal"
        assert tokens[1].text == "{"

    def test_anchors(self):
        kinds = [t.kind for t in tokenize("^a$")]
        assert kinds == ["anchor", "literal", "anchor"]

    def test_dangling_backslash_raises(self):
        with pytest.raises(RegexSyntaxError):
            tokenize("abc\\")

    def test_unterminated_class_raises(self):
        with pytest.raises(RegexSyntaxError):
            tokenize("[abc")

    def test_positions(self):
        tokens = tokenize(r"a\sb")
        assert [t.position for t in tokens] == [0, 1, 3]


class TestSplitAlternation:
    def test_no_alternation(self):
        assert split_alternation("abc") == ["abc"]

    def test_top_level_split(self):
        assert split_alternation("a|b|c") == ["a", "b", "c"]

    def test_nested_alternation_kept(self):
        assert split_alternation("a|b(c|d)") == ["a", "b(c|d)"]

    def test_alternation_in_class_kept(self):
        assert split_alternation("[|]x") == ["[|]x"]

    def test_escaped_pipe_kept(self):
        assert split_alternation(r"a\|b") == [r"a\|b"]

    def test_unbalanced_raises(self):
        with pytest.raises(RegexSyntaxError):
            split_alternation("a(b|c")

    def test_unbalanced_close_raises(self):
        with pytest.raises(RegexSyntaxError):
            split_alternation("a)b")


class TestTopLevelGroups:
    def test_single_group(self):
        assert top_level_groups("(?:abc)") == ["abc"]

    def test_multiple_groups(self):
        assert top_level_groups("(?:a)|(?:b|c)d") == ["a", "b|c"]

    def test_nested_groups_not_doubled(self):
        assert top_level_groups("(a(b)c)") == ["a(b)c"]

    def test_no_groups(self):
        assert top_level_groups("abc") == []


class TestDeconstruct:
    def test_modsec_style_signature(self):
        # The paper's example: seven case-insensitive groups joined by |.
        signature = (
            r"(?:is\s+null)|(?:like\s+null)|(?:in\s*?\(+\s*?select)|"
            r"(?:\)?;)"
        )
        components = deconstruct(signature)
        assert r"is\s+null" in components
        assert r"like\s+null" in components
        assert r"in\s*?\(+\s*?select" in components
        assert r"\)?;" in components

    def test_plain_pattern_single_component(self):
        assert deconstruct(r"union\s+select") == [r"union\s+select"]

    def test_branch_with_trailing_text_not_recursed(self):
        components = deconstruct(r"(?:a)x|b")
        assert components == ["(?:a)x", "b"]

    def test_nested_group_recursion(self):
        assert deconstruct("(?:(?:a|b))") == ["a", "b"]

    def test_empty_branches_dropped(self):
        assert deconstruct("a||b") == ["a", "b"]

    def test_all_components_are_valid_regexes(self):
        import re
        signature = (
            r"(?:'\s*?(?:and|or)\s*?[\(\'0-9a-z])|(?:\d\s*?=\s*?\d)|"
            r"(?:ch(a)?r\s*?\(\s*?\d)"
        )
        for component in deconstruct(signature):
            re.compile(component)


class TestLiteralText:
    def test_plain(self):
        assert literal_text("union") == "union"

    def test_whitespace_escape(self):
        assert literal_text(r"union\s+select") == "union select"

    def test_class_dropped(self):
        assert literal_text(r"a[0-9]b") == "ab"

    def test_escaped_punctuation_kept(self):
        assert literal_text(r"\)\;") == ");"
