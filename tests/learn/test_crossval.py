"""Tests for k-fold cross-validation."""

import numpy as np
import pytest

from repro.learn.crossval import cross_validate


@pytest.fixture(scope="module")
def separable():
    rng = np.random.default_rng(4)
    x = np.vstack([
        rng.poisson(0.5, (150, 6)), rng.poisson(3.0, (150, 6))
    ]).astype(float)
    y = np.concatenate([np.zeros(150), np.ones(150)])
    return x, y


class TestCrossValidate:
    def test_fold_count(self, separable):
        x, y = separable
        report = cross_validate(x, y, k=5)
        assert len(report.folds) == 5

    def test_separable_data_high_tpr(self, separable):
        x, y = separable
        report = cross_validate(x, y, k=5)
        assert report.mean_tpr > 0.85
        assert report.mean_fpr < 0.15

    def test_folds_partition_data(self, separable):
        x, y = separable
        report = cross_validate(x, y, k=4)
        held_out_total = sum(
            f.confusion.tp + f.confusion.fn + f.confusion.fp
            + f.confusion.tn
            for f in report.folds
        )
        assert held_out_total == len(y)

    def test_stratification_keeps_both_classes(self, separable):
        x, y = separable
        report = cross_validate(x, y, k=5)
        for fold in report.folds:
            assert fold.confusion.tp + fold.confusion.fn > 0
            assert fold.confusion.fp + fold.confusion.tn > 0

    def test_auc_proxy_positive_on_separable(self, separable):
        x, y = separable
        report = cross_validate(x, y, k=3)
        assert all(f.auc_proxy > 0.4 for f in report.folds)

    def test_random_labels_near_chance(self):
        rng = np.random.default_rng(6)
        x = rng.poisson(2.0, (200, 5)).astype(float)
        y = (rng.random(200) < 0.5).astype(float)
        report = cross_validate(x, y, k=4)
        # On noise, TPR and FPR move together (no real separation).
        assert abs(report.mean_tpr - (1 - report.mean_fpr)) < 0.35

    def test_deterministic(self, separable):
        x, y = separable
        first = cross_validate(x, y, k=3, seed=9)
        second = cross_validate(x, y, k=3, seed=9)
        assert first.mean_tpr == second.mean_tpr

    def test_k_too_small_rejected(self, separable):
        x, y = separable
        with pytest.raises(ValueError):
            cross_validate(x, y, k=1)

    def test_too_few_samples_rejected(self):
        x = np.ones((4, 2))
        y = np.array([0.0, 0, 1, 1])
        with pytest.raises(ValueError):
            cross_validate(x, y, k=3)

    def test_std_reported(self, separable):
        x, y = separable
        report = cross_validate(x, y, k=5)
        assert report.std_tpr >= 0.0
