"""Tests for detection metrics and ROC computation."""

import numpy as np
import pytest

from repro.learn import Confusion, confusion_from_alerts, roc_curve


class TestConfusion:
    def test_tpr(self):
        assert Confusion(tp=9, fn=1, fp=0, tn=10).tpr == pytest.approx(0.9)

    def test_fpr(self):
        assert Confusion(tp=0, fn=0, fp=3, tn=997).fpr == pytest.approx(
            0.003
        )

    def test_empty_attack_set(self):
        assert Confusion(tp=0, fn=0, fp=1, tn=1).tpr == 0.0

    def test_empty_benign_set(self):
        assert Confusion(tp=1, fn=1, fp=0, tn=0).fpr == 0.0

    def test_precision_and_f1(self):
        confusion = Confusion(tp=8, fn=2, fp=2, tn=88)
        assert confusion.precision == pytest.approx(0.8)
        assert confusion.f1 == pytest.approx(2 * 8 / (16 + 2 + 2))

    def test_from_alerts(self):
        confusion = confusion_from_alerts(
            [True, True, False], [False, False, True, False]
        )
        assert (confusion.tp, confusion.fn) == (2, 1)
        assert (confusion.fp, confusion.tn) == (1, 3)


class TestRocCurve:
    def test_perfect_separation(self):
        curve = roc_curve(
            np.array([0.9, 0.95, 0.99]), np.array([0.01, 0.05, 0.1])
        )
        assert curve.auc() == pytest.approx(1.0, abs=1e-6)

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(0)
        curve = roc_curve(rng.uniform(size=3000), rng.uniform(size=3000))
        assert curve.auc() == pytest.approx(0.5, abs=0.03)

    def test_monotone_tpr_with_fpr(self):
        rng = np.random.default_rng(1)
        curve = roc_curve(
            rng.uniform(0.3, 1.0, 200), rng.uniform(0.0, 0.7, 200)
        )
        order = np.argsort(curve.fpr)
        assert (np.diff(curve.tpr[order]) >= -1e-12).all()

    def test_thresholds_descending(self):
        curve = roc_curve(np.array([0.5]), np.array([0.5]))
        assert (np.diff(curve.thresholds) <= 0).all()

    def test_partial_auc_bounded(self):
        rng = np.random.default_rng(2)
        curve = roc_curve(
            rng.uniform(0.5, 1.0, 100), rng.uniform(0.0, 0.5, 100)
        )
        partial = curve.auc(max_fpr=0.05)
        assert 0.0 <= partial <= 0.05 + 1e-9

    def test_figure3_style_operating_point(self):
        """At the operating threshold the curve must pass through the
        measured (FPR, TPR) of the detector."""
        attack = np.array([0.2, 0.7, 0.8, 0.99])
        benign = np.array([0.1, 0.2, 0.4, 0.6])
        curve = roc_curve(attack, benign)
        at_half = np.argmin(np.abs(curve.thresholds - 0.5))
        assert curve.tpr[at_half] == pytest.approx(0.75)
        assert curve.fpr[at_half] == pytest.approx(0.25)

    def test_empty_benign(self):
        curve = roc_curve(np.array([0.5, 0.9]), np.array([]))
        assert (curve.fpr == 0).all()
