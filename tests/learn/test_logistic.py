"""Tests for logistic regression via Newton-PCG."""

import numpy as np
import pytest

from repro.learn import LogisticModel, log_loss, sigmoid, train_logistic


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(0.0) == pytest.approx(0.5)

    def test_symmetry(self):
        z = np.linspace(-5, 5, 11)
        assert np.allclose(sigmoid(z) + sigmoid(-z), 1.0)

    def test_extreme_values_stable(self):
        assert sigmoid(1000.0) == pytest.approx(1.0)
        assert sigmoid(-1000.0) == pytest.approx(0.0)
        assert np.isfinite(sigmoid(np.array([-1e8, 1e8]))).all()

    def test_range(self):
        z = np.random.default_rng(0).normal(0, 10, 100)
        p = sigmoid(z)
        assert ((p > 0) & (p < 1)).all()


class TestLogLoss:
    def test_perfect_predictions(self):
        y = np.array([0.0, 1.0])
        assert log_loss(y, np.array([0.0, 1.0])) < 1e-10

    def test_coin_flip(self):
        y = np.array([0.0, 1.0])
        assert log_loss(y, np.array([0.5, 0.5])) == pytest.approx(
            np.log(2)
        )

    def test_confident_wrong_is_costly(self):
        y = np.array([1.0])
        assert log_loss(y, np.array([0.001])) > 5


@pytest.fixture(scope="module")
def separable():
    rng = np.random.default_rng(1)
    x = np.vstack([
        rng.normal(-2, 1, (200, 4)), rng.normal(2, 1, (200, 4))
    ])
    y = np.concatenate([np.zeros(200), np.ones(200)])
    return x, y


class TestTraining:
    def test_high_accuracy_on_separable(self, separable):
        x, y = separable
        model, report = train_logistic(x, y)
        assert report.converged
        assert (model.predict(x) == y).mean() > 0.95

    def test_probabilities_calibrated_direction(self, separable):
        x, y = separable
        model, _ = train_logistic(x, y)
        p = model.predict_proba(x)
        assert p[y == 1].mean() > 0.8
        assert p[y == 0].mean() < 0.2

    def test_intercept_first_theta_layout(self, separable):
        x, y = separable
        model, _ = train_logistic(x, y)
        assert model.theta.shape == (x.shape[1] + 1,)
        assert model.intercept == model.theta[0]
        assert (model.coefficients == model.theta[1:]).all()

    def test_regularization_shrinks_weights(self, separable):
        x, y = separable
        loose, _ = train_logistic(x, y, l2=0.01)
        tight, _ = train_logistic(x, y, l2=100.0)
        assert np.linalg.norm(tight.coefficients) < np.linalg.norm(
            loose.coefficients
        )

    def test_class_weighting_handles_imbalance(self):
        rng = np.random.default_rng(2)
        x = np.vstack([
            rng.normal(-1, 1, (950, 3)), rng.normal(1.2, 1, (50, 3))
        ])
        y = np.concatenate([np.zeros(950), np.ones(50)])
        weighted, _ = train_logistic(x, y, class_weighted=True)
        unweighted, _ = train_logistic(x, y, class_weighted=False)
        recall_weighted = weighted.predict(x)[y == 1].mean()
        recall_unweighted = unweighted.predict(x)[y == 1].mean()
        assert recall_weighted >= recall_unweighted

    def test_matches_closed_form_direction(self):
        # On 1-D data the decision boundary should sit between the means.
        rng = np.random.default_rng(3)
        x = np.concatenate([rng.normal(0, 0.5, 300),
                            rng.normal(4, 0.5, 300)])[:, None]
        y = np.concatenate([np.zeros(300), np.ones(300)])
        model, _ = train_logistic(x, y, l2=1e-6)
        boundary = -model.intercept / model.coefficients[0]
        assert 1.0 < boundary < 3.0

    def test_deterministic(self, separable):
        x, y = separable
        first, _ = train_logistic(x, y)
        second, _ = train_logistic(x, y)
        assert np.allclose(first.theta, second.theta)

    def test_report_counts(self, separable):
        x, y = separable
        _, report = train_logistic(x, y)
        assert report.newton_iterations >= 1
        assert report.pcg_iterations >= report.newton_iterations
        assert report.final_loss > 0


class TestValidation:
    def test_single_class_rejected(self):
        x = np.ones((5, 2))
        with pytest.raises(ValueError):
            train_logistic(x, np.ones(5))

    def test_label_values_checked(self):
        x = np.ones((4, 2))
        with pytest.raises(ValueError):
            train_logistic(x, np.array([0, 1, 2, 1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            train_logistic(np.ones((4, 2)), np.array([0.0, 1.0]))

    def test_one_dim_features_rejected(self):
        with pytest.raises(ValueError):
            train_logistic(np.ones(4), np.array([0.0, 1.0, 0, 1]))


class TestModel:
    def test_decision_is_linear(self):
        model = LogisticModel(np.array([1.0, 2.0, -1.0]))
        x = np.array([[1.0, 1.0]])
        assert model.decision(x)[0] == pytest.approx(1 + 2 - 1)

    def test_predict_threshold(self):
        model = LogisticModel(np.array([0.0, 1.0]))
        assert model.predict(np.array([[1.0]]), threshold=0.5)[0] == 1
        assert model.predict(np.array([[-1.0]]), threshold=0.5)[0] == 0

    def test_single_row_input(self):
        model = LogisticModel(np.array([0.0, 1.0, 1.0]))
        p = model.predict_proba(np.array([0.5, 0.5]))
        assert p.shape == (1,)
