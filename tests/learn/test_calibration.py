"""Tests for probability calibration analysis."""

import numpy as np
import pytest

from repro.learn.calibration import (
    calibration_report,
    score_signature_set,
)


class TestPerfectCalibration:
    def test_oracle_probabilities(self):
        """Labels drawn exactly at the stated probabilities → low ECE."""
        rng = np.random.default_rng(3)
        probabilities = rng.uniform(0, 1, 20_000)
        labels = (rng.random(20_000) < probabilities).astype(float)
        report = calibration_report(probabilities, labels)
        assert report.ece < 0.03
        assert report.n_samples == 20_000

    def test_hard_labels_zero_error(self):
        probabilities = np.array([0.0, 0.0, 1.0, 1.0])
        labels = np.array([0.0, 0.0, 1.0, 1.0])
        report = calibration_report(probabilities, labels)
        assert report.ece == pytest.approx(0.0)
        assert report.brier == pytest.approx(0.0)


class TestMiscalibration:
    def test_overconfident_model_high_ece(self):
        # Predicts 0.95 but only half are attacks.
        probabilities = np.full(1000, 0.95)
        labels = np.array([1.0, 0.0] * 500)
        report = calibration_report(probabilities, labels)
        assert report.ece == pytest.approx(0.45, abs=0.01)

    def test_brier_penalizes_confident_errors(self):
        good = calibration_report(
            np.array([0.9, 0.1]), np.array([1.0, 0.0])
        )
        bad = calibration_report(
            np.array([0.1, 0.9]), np.array([1.0, 0.0])
        )
        assert bad.brier > good.brier


class TestBins:
    def test_bins_cover_all_samples(self):
        rng = np.random.default_rng(5)
        probabilities = rng.uniform(0, 1, 500)
        labels = rng.integers(0, 2, 500).astype(float)
        report = calibration_report(probabilities, labels, n_bins=10)
        assert sum(b.count for b in report.bins) == 500

    def test_extreme_probabilities_binned(self):
        report = calibration_report(
            np.array([0.0, 1.0]), np.array([0.0, 1.0])
        )
        assert sum(b.count for b in report.bins) == 2

    def test_empty_bins_omitted(self):
        report = calibration_report(
            np.array([0.05, 0.95]), np.array([0.0, 1.0]), n_bins=10
        )
        assert len(report.bins) == 2

    def test_bin_gap(self):
        report = calibration_report(
            np.full(10, 0.75), np.ones(10)
        )
        assert report.bins[0].gap == pytest.approx(0.25)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            calibration_report(np.zeros(3), np.zeros(4))

    def test_empty(self):
        with pytest.raises(ValueError):
            calibration_report(np.zeros(0), np.zeros(0))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            calibration_report(np.array([1.5]), np.array([1.0]))

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            calibration_report(
                np.array([0.5]), np.array([1.0]), n_bins=1
            )


class TestSignatureSetCalibration:
    def test_trained_signatures_reasonably_calibrated(
        self, small_signatures
    ):
        from repro.corpus import BenignTrafficGenerator, CorpusGenerator

        attacks = [
            s.payload for s in CorpusGenerator(seed=41).generate(150)
        ]
        benign = [
            p for p in BenignTrafficGenerator(seed=42).trace(300).payloads()
            if p
        ]
        scores, labels = score_signature_set(
            small_signatures, attacks, benign
        )
        report = calibration_report(scores, labels, n_bins=5)
        # The max-over-signatures score is not a true posterior, but it
        # must separate the classes decisively and not be wildly off.
        assert report.brier < 0.25
        assert report.ece < 0.45
