"""Tests for the preconditioned conjugate gradients solver."""

import numpy as np
import pytest

from repro.learn import pcg


def _spd(n, seed=0, conditioning=1.0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a @ a.T + conditioning * n * np.eye(n)


class TestCorrectness:
    def test_solves_spd_system(self):
        a = _spd(30, seed=1)
        b = np.random.default_rng(2).normal(size=30)
        result = pcg(lambda v: a @ v, b)
        assert result.converged
        assert np.linalg.norm(a @ result.x - b) < 1e-6

    def test_identity_system(self):
        b = np.arange(5, dtype=float)
        result = pcg(lambda v: v, b)
        assert np.allclose(result.x, b)
        assert result.iterations <= 2

    def test_diagonal_system_with_jacobi(self):
        diag = np.array([1.0, 10.0, 100.0, 1000.0])
        b = np.ones(4)
        result = pcg(lambda v: diag * v, b, preconditioner=diag)
        assert result.converged
        assert np.allclose(result.x, b / diag)

    def test_warm_start(self):
        a = _spd(20, seed=3)
        b = np.random.default_rng(4).normal(size=20)
        exact = np.linalg.solve(a, b)
        result = pcg(lambda v: a @ v, b, x0=exact)
        assert result.iterations == 0
        assert result.converged


class TestPreconditioning:
    def test_jacobi_helps_ill_conditioned(self):
        rng = np.random.default_rng(5)
        diag = 10.0 ** rng.uniform(0, 5, size=60)
        a = np.diag(diag) + 0.01 * _spd(60, seed=6, conditioning=0.0)
        a = (a + a.T) / 2 + 1e-3 * np.eye(60)
        b = rng.normal(size=60)
        plain = pcg(lambda v: a @ v, b, max_iterations=50)
        jacobi = pcg(
            lambda v: a @ v, b, preconditioner=np.diag(a).copy(),
            max_iterations=50,
        )
        assert jacobi.residual_norm < plain.residual_norm

    def test_nonpositive_preconditioner_rejected(self):
        with pytest.raises(ValueError):
            pcg(lambda v: v, np.ones(3), preconditioner=np.array([1., 0, 1]))


class TestTermination:
    def test_iteration_cap(self):
        a = _spd(40, seed=7, conditioning=0.001)
        b = np.random.default_rng(8).normal(size=40)
        result = pcg(lambda v: a @ v, b, max_iterations=2, tol=1e-14)
        assert result.iterations == 2
        assert not result.converged

    def test_zero_rhs(self):
        result = pcg(lambda v: v, np.zeros(4))
        assert result.converged
        assert np.allclose(result.x, 0.0)

    def test_indefinite_bails_gracefully(self):
        a = np.diag([1.0, -1.0])
        result = pcg(lambda v: a @ v, np.array([1.0, 1.0]))
        assert not result.converged

    def test_convergence_within_dimension_iterations(self):
        # CG converges in at most n steps in exact arithmetic.
        a = _spd(25, seed=9)
        b = np.random.default_rng(10).normal(size=25)
        result = pcg(lambda v: a @ v, b)
        assert result.iterations <= 25 + 5
