"""No bench escapes the trajectory: artifacts ↔ guard set ↔ emitters.

Three closures, each failing with the name of what is missing:

1. every committed ``BENCH_*.json`` has a floors entry in
   ``scripts/ci_bench_guard.py`` (no unguarded artifact);
2. every floors entry has a committed artifact (no phantom guard);
3. every benchmark module emits a JSON artifact through the shared
   writer (no bench producing only a text table).
"""

import importlib.util
import os

from repro.bench import list_artifacts, load_artifact

REPO_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")
BENCHMARKS_DIR = os.path.join(REPO_ROOT, "benchmarks")

#: Bench modules whose artifact is emitted elsewhere: none today — every
#: ``benchmarks/test_*.py`` must reference the shared emitter itself.
EMITTER_EXEMPT: frozenset[str] = frozenset()


def _guard_floors():
    path = os.path.join(REPO_ROOT, "scripts", "ci_bench_guard.py")
    spec = importlib.util.spec_from_file_location("_ci_bench_guard", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.FLOORS


def _committed_slugs():
    return {
        load_artifact(path)["bench"]
        for path in list_artifacts(RESULTS_DIR)
    }


def test_every_artifact_is_guarded():
    floors = _guard_floors()
    unguarded = sorted(_committed_slugs() - set(floors))
    assert not unguarded, (
        f"committed artifacts without a FLOORS entry in "
        f"scripts/ci_bench_guard.py: {unguarded}"
    )


def test_every_guard_entry_has_an_artifact():
    floors = _guard_floors()
    phantom = sorted(set(floors) - _committed_slugs())
    assert not phantom, (
        f"FLOORS entries without a committed BENCH_*.json: {phantom} — "
        f"run scripts/reproduce_all.py and commit the results"
    )


def test_floors_reference_recorded_metrics():
    floors = _guard_floors()
    by_slug = {
        payload["bench"]: payload
        for payload in map(load_artifact, list_artifacts(RESULTS_DIR))
    }
    for slug, triples in floors.items():
        metrics = by_slug[slug]["metrics"]
        for metric, op, _bound in triples:
            assert metric in metrics, (
                f"FLOORS[{slug!r}] guards metric {metric!r} which the "
                f"committed artifact does not record"
            )
            assert op in (">=", "<=", "=="), (slug, metric, op)


def test_every_bench_module_emits_an_artifact():
    missing = []
    for name in sorted(os.listdir(BENCHMARKS_DIR)):
        if not (name.startswith("test_") and name.endswith(".py")):
            continue
        if name in EMITTER_EXEMPT:
            continue
        with open(os.path.join(BENCHMARKS_DIR, name)) as handle:
            source = handle.read()
        if "emit(" not in source:
            missing.append(name)
    assert not missing, (
        f"bench modules without a JSON artifact emitter: {missing}"
    )
