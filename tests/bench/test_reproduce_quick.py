"""Smoke: ``reproduce_all.py --quick`` produces a valid bundle.

Runs the real script end to end into a scratch directory: the quick
bench subset re-emits its artifacts, the corpus hash ledger is written,
and SUMMARY.json validates against the summary schema.  This is the
one test proving a fresh clone can regenerate the evaluation trajectory
with a single command.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.bench import list_artifacts, load_artifact, validate_summary

REPO_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
SCRIPT = os.path.join(REPO_ROOT, "scripts", "reproduce_all.py")

QUICK_SLUGS = {
    "table1_vulndb",
    "table2_feature_sources",
    "table4_rulesets",
    "figure4_cumulative_tpr",
}


@pytest.mark.smoke
def test_reproduce_quick_bundle(tmp_path):
    out_dir = str(tmp_path / "bundle")
    result = subprocess.run(
        [sys.executable, SCRIPT, "--quick", "--out", out_dir],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"reproduce_all --quick failed\nstdout:\n{result.stdout}\n"
        f"stderr:\n{result.stderr}"
    )

    # Every quick bench re-emitted a schema-valid artifact.
    slugs = {
        load_artifact(path)["bench"]
        for path in list_artifacts(out_dir)
    }
    assert QUICK_SLUGS <= slugs, f"missing artifacts: {QUICK_SLUGS - slugs}"

    # The corpus hash ledger exists and fingerprints the shared corpora.
    with open(os.path.join(out_dir, "CORPUS_HASHES.json")) as handle:
        ledger = json.load(handle)
    assert ledger["schema"] == 1
    assert ledger["corpora"], "empty corpus ledger"
    for digest in ledger["corpora"].values():
        assert len(digest) == 64 and int(digest, 16) >= 0

    # SUMMARY.json folds the bundle and validates.
    with open(os.path.join(out_dir, "SUMMARY.json")) as handle:
        summary = validate_summary(json.load(handle))
    assert summary["mode"] == "quick"
    assert QUICK_SLUGS <= set(summary["benches"])
    assert summary["corpus_hashes"] == ledger["corpora"]
