"""The shared bench-artifact schema: round-trips, rejections, canon.

Every benchmark emits through one writer, so these tests pin the three
properties the trajectory depends on: a valid result survives a
serialize → load → validate round-trip unchanged; malformed payloads are
rejected loudly (missing, extra, and mistyped fields alike); and every
committed ``BENCH_*.json`` re-serializes byte-identically — nobody wrote
one by hand or through a different dumper.
"""

import json
import math
import os

import numpy as np
import pytest

from repro.bench import (
    BENCH_KINDS,
    BENCH_SCHEMA,
    BenchResult,
    BenchSchemaError,
    build_summary,
    corpus_digest,
    dump_bench_json,
    list_artifacts,
    load_artifact,
    validate_bench,
    validate_summary,
    write_artifact,
)

COMMITTED_RESULTS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir,
    "benchmarks", "results",
)


def make_result(**overrides):
    defaults = dict(
        bench="demo_bench",
        kind="perf",
        seed=2012,
        metrics={"speedup": 3.25, "identical": True, "requests": 400},
        data={"rows": [{"workers": 1, "us": 12.5}]},
        corpus={"payloads": corpus_digest(["a", "b"])},
    )
    defaults.update(overrides)
    return BenchResult(**defaults)


class TestRoundTrip:
    def test_to_dict_validates_and_is_json_safe(self):
        payload = make_result().to_dict()
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["bench"] == "demo_bench"
        assert validate_bench(payload) is payload
        json.dumps(payload)  # no numpy leakage

    def test_serialize_load_validate_round_trip(self):
        text = make_result().to_json()
        payload = validate_bench(json.loads(text))
        assert dump_bench_json(payload) == text

    def test_numpy_scalars_coerced(self):
        result = make_result(metrics={
            "count": np.int64(7),
            "rate": np.float64(0.25),
            "ok": np.bool_(True),
        })
        payload = result.to_dict()
        assert payload["metrics"] == {
            "count": 7, "rate": 0.25, "ok": True,
        }
        assert type(payload["metrics"]["count"]) is int
        assert type(payload["metrics"]["ok"]) is bool

    def test_provenance_collected_when_absent(self):
        payload = make_result().to_dict()
        assert set(payload["provenance"]) == {
            "git", "python", "platform", "numpy",
        }

    def test_all_kinds_accepted(self):
        for kind in BENCH_KINDS:
            validate_bench(make_result(kind=kind).to_dict())

    def test_write_and_load_artifact(self, tmp_path):
        path = write_artifact(make_result(), str(tmp_path))
        assert os.path.basename(path) == "BENCH_demo_bench.json"
        assert load_artifact(path)["metrics"]["speedup"] == 3.25
        assert list_artifacts(str(tmp_path)) == [path]

    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        from repro.bench import results_dir
        from repro.bench.writer import RESULTS_DIR_ENV

        monkeypatch.setenv(RESULTS_DIR_ENV, str(tmp_path / "scratch"))
        assert results_dir() == str(tmp_path / "scratch")
        assert os.path.isdir(results_dir())


class TestRejection:
    def test_missing_field(self):
        payload = make_result().to_dict()
        del payload["metrics"]
        with pytest.raises(BenchSchemaError, match="missing"):
            validate_bench(payload)

    def test_extra_field(self):
        payload = make_result().to_dict()
        payload["extra"] = 1
        with pytest.raises(BenchSchemaError, match="unknown"):
            validate_bench(payload)

    def test_mistyped_seed(self):
        payload = make_result().to_dict()
        payload["seed"] = "2012"
        with pytest.raises(BenchSchemaError):
            validate_bench(payload)

    def test_bad_slug(self):
        with pytest.raises(BenchSchemaError):
            make_result(bench="Demo Bench!").to_dict()

    def test_bad_kind(self):
        with pytest.raises(BenchSchemaError):
            make_result(kind="vibes").to_dict()

    def test_empty_metrics(self):
        with pytest.raises(BenchSchemaError):
            make_result(metrics={}).to_dict()

    def test_nan_metric(self):
        with pytest.raises(BenchSchemaError):
            make_result(metrics={"speedup": math.nan}).to_dict()

    def test_non_hex_corpus_digest(self):
        with pytest.raises(BenchSchemaError):
            make_result(corpus={"payloads": "nothex"}).to_dict()

    def test_wrong_schema_version(self):
        payload = make_result().to_dict()
        payload["schema"] = 99
        with pytest.raises(BenchSchemaError):
            validate_bench(payload)

    def test_wrong_provenance_keys(self):
        payload = make_result().to_dict()
        payload["provenance"] = {"git": "abc"}
        with pytest.raises(BenchSchemaError):
            validate_bench(payload)

    def test_non_flat_metric_value(self):
        with pytest.raises(BenchSchemaError):
            make_result(metrics={"nested": {"a": 1}}).to_dict()


class TestSummary:
    def test_build_and_validate(self):
        artifacts = [
            make_result(bench="one").to_dict(),
            make_result(bench="two").to_dict(),
        ]
        hashes = {"payloads": corpus_digest(["a", "b"])}
        summary = validate_summary(
            build_summary(artifacts, mode="quick", corpus_hashes=hashes)
        )
        assert set(summary["benches"]) == {"one", "two"}
        assert summary["corpus_hashes"] == hashes

    def test_duplicate_slug_rejected(self):
        artifacts = [make_result().to_dict(), make_result().to_dict()]
        with pytest.raises(BenchSchemaError, match="duplicate"):
            build_summary(artifacts, mode="full", corpus_hashes={})

    def test_bad_mode_rejected(self):
        summary = build_summary(
            [make_result().to_dict()], mode="full", corpus_hashes={}
        )
        summary["mode"] = "partial"
        with pytest.raises(BenchSchemaError):
            validate_summary(summary)

    def test_corpus_digest_is_order_sensitive(self):
        assert corpus_digest(["a", "b"]) != corpus_digest(["b", "a"])
        assert corpus_digest(["a", "b"]) == corpus_digest(iter(["a", "b"]))


class TestCommittedArtifacts:
    def test_every_committed_artifact_is_canonical(self):
        paths = list_artifacts(COMMITTED_RESULTS_DIR)
        assert paths, "no committed BENCH_*.json artifacts"
        for path in paths:
            payload = load_artifact(path)  # schema-valid
            with open(path, encoding="utf-8") as handle:
                raw = handle.read()
            assert dump_bench_json(payload) == raw, (
                f"{os.path.basename(path)} is not canonical; rewrite it "
                f"through repro.bench.write_artifact"
            )

    def test_committed_slugs_match_filenames(self):
        for path in list_artifacts(COMMITTED_RESULTS_DIR):
            name = os.path.basename(path)
            slug = name[len("BENCH_"):-len(".json")]
            assert load_artifact(path)["bench"] == slug, name
