"""Surface scoring: ScoreRequest validation, verdict folding, parity.

The load-bearing contract: ``score_request`` with the legacy selection
is verdict-identical to flattening the request and calling the detector
directly — that equivalence is what lets every entry point migrate to
the surface API without revalidating a single alert.
"""

import pytest

from repro.http import HttpRequest
from repro.ids import DeterministicRuleSet, PSigeneDetector, Rule
from repro.surfaces import (
    DEFAULT_SURFACES,
    LEGACY_SURFACES,
    InjectionSurface,
    ScoreRequest,
    score_request,
)


def toy():
    return DeterministicRuleSet("toy", [
        Rule(1, "union", r"union\s+select"),
        Rule(2, "quote-or", r"'\s*or\s"),
    ])


class TestScoreRequestValidation:
    def test_requires_exactly_one_input(self):
        with pytest.raises(ValueError):
            ScoreRequest()
        with pytest.raises(ValueError):
            ScoreRequest(request=HttpRequest(), payload="x")

    def test_payload_form(self):
        assert ScoreRequest(payload="q=1").payload == "q=1"

    def test_request_form_defaults_to_legacy_selection(self):
        scored = ScoreRequest(request=HttpRequest(query="q=1"))
        assert scored.surfaces == LEGACY_SURFACES


class TestFolding:
    def test_alert_is_any_and_score_is_max(self):
        request = HttpRequest(
            query="id=1' or 1=1",
            headers={"cookie": "s=1 union select 2"},
        )
        detection = score_request(
            toy().inspect, request,
            (InjectionSurface.QUERY, InjectionSurface.COOKIE),
        )
        assert detection.alert
        assert detection.score == 1.0
        # Union of fired sids, first-seen order across units.
        assert detection.matched_sids == [2, 1]
        assert [s.value for s in detection.alerting_surfaces] == [
            "query", "cookie",
        ]

    def test_verdict_per_unit(self):
        request = HttpRequest(
            query="benign=1",
            headers={"cookie": "s=x' or 1=1"},
        )
        detection = score_request(
            toy().inspect, request,
            (InjectionSurface.QUERY, InjectionSurface.COOKIE),
        )
        by_surface = {
            v.surface.value: v.detection.alert
            for v in detection.verdicts
        }
        assert by_surface == {"query": False, "cookie": True}

    def test_attribution_shape(self):
        request = HttpRequest(headers={"cookie": "s=1 union select 2"})
        attribution = score_request(
            toy().inspect, request, (InjectionSurface.COOKIE,)
        ).attribution()
        assert attribution["surfaces"] == "cookie"
        verdict = attribution["verdicts"][0]
        assert verdict["surface"] == "cookie"
        assert verdict["locator"] == "s"
        assert verdict["alert"] is True
        assert verdict["sids"] == [1]

    def test_zero_units_scores_clean(self):
        detection = score_request(
            toy().inspect, HttpRequest(), (InjectionSurface.COOKIE,)
        )
        assert not detection.alert and detection.score == 0.0


class TestLegacyParity:
    REQUESTS = [
        HttpRequest(query="id=1' or 1=1"),
        HttpRequest(query="q=hello"),
        HttpRequest(
            method="POST", query="a=1",
            headers={
                "content-type": "application/x-www-form-urlencoded"
            },
            body="b=1 union select 2",
        ),
        HttpRequest(
            method="POST",
            headers={"content-type": "application/json"},
            body='{"k": "1 union select 2"}',
        ),
        HttpRequest(),
    ]

    @pytest.mark.parametrize("request_", REQUESTS)
    def test_legacy_selection_matches_direct_inspect(self, request_):
        detector = toy()
        direct = detector.inspect(request_.flat_payload())
        surfaced = score_request(
            detector.inspect, request_, LEGACY_SURFACES
        )
        assert surfaced.alert == direct.alert
        assert surfaced.score == direct.score
        assert surfaced.matched_sids == list(direct.matched_sids)

    def test_psigene_detector_inspect_request(self, small_signatures):
        detector = PSigeneDetector(small_signatures)
        request = HttpRequest(query="id=1' or 1=1--")
        direct = detector.inspect(request.flat_payload())
        surfaced = detector.inspect_request(request)
        assert surfaced.alert == direct.alert
        assert surfaced.score == direct.score
        full = detector.inspect_request(request, DEFAULT_SURFACES)
        assert full.alert == direct.alert
