"""Evasion search: determinism, report shape, and adversarial pressure.

The search's value is as a committed regression gauge, so the tests pin
what the bench depends on: bit-identical reruns, per-base independence
(inserting a base never perturbs the others), and a report whose
numbers add up.
"""

import numpy as np

from repro.ids import DeterministicRuleSet, Rule
from repro.surfaces import EvasionSearch, evasion_bases


def brittle():
    """A literal-anchored ruleset the mutators can realistically break."""
    return DeterministicRuleSet("brittle", [
        Rule(1, "union", r"union select"),
        Rule(2, "or1", r"' ?or ?1=1"),
        Rule(3, "comment", r"--\s*$"),
    ])


class TestDeterminism:
    def test_same_seed_same_report(self):
        bases = evasion_bases(seed=7, count=8)
        first = EvasionSearch(brittle().inspect, seed=7).run(bases)
        second = EvasionSearch(brittle().inspect, seed=7).run(bases)
        assert first.to_dict() == second.to_dict()
        assert [o.variant for o in first.outcomes] == [
            o.variant for o in second.outcomes
        ]

    def test_outcomes_are_per_base_independent(self):
        bases = evasion_bases(seed=7, count=8)
        full = EvasionSearch(brittle().inspect, seed=7).run(bases)
        prefix = EvasionSearch(brittle().inspect, seed=7).run(bases[:3])
        assert [o.variant for o in full.outcomes[:3]] == [
            o.variant for o in prefix.outcomes
        ]

    def test_bases_are_deterministic(self):
        assert evasion_bases(seed=3, count=5) == evasion_bases(
            seed=3, count=5
        )


class TestReport:
    def test_counts_add_up(self):
        report = EvasionSearch(brittle().inspect, seed=2012).run(
            evasion_bases(seed=2012, count=16)
        )
        assert len(report.outcomes) == 16
        assert 0 <= report.evaded <= report.attacked <= 16
        assert 0.0 <= report.survival_rate <= 1.0
        summary = report.to_dict()
        assert summary["bases"] == 16
        assert summary["attacked"] == report.attacked
        assert summary["evaded"] == report.evaded

    def test_undetected_base_is_not_attacked(self):
        never_fires = DeterministicRuleSet("mute", [
            Rule(1, "nope", r"zzz-never-present"),
        ])
        report = EvasionSearch(never_fires.inspect, seed=1).run(
            evasion_bases(seed=1, count=4)
        )
        assert report.attacked == 0
        assert report.survival_rate == 0.0
        assert all(not o.detected_base for o in report.outcomes)

    def test_move_effectiveness_only_counts_successful_chains(self):
        report = EvasionSearch(brittle().inspect, seed=2012).run(
            evasion_bases(seed=2012, count=16)
        )
        effectiveness = report.move_effectiveness()
        total_moves = sum(effectiveness.values())
        chain_moves = sum(
            len(o.chain)
            for o in report.outcomes
            if o.detected_base and o.evaded
        )
        assert total_moves == chain_moves


class TestPressure:
    def test_brittle_rules_are_evadable(self):
        """Literal-anchored rules must fall to the mutator arsenal —
        if the adversary can't break THESE, the search is broken."""
        report = EvasionSearch(
            brittle().inspect, seed=2012, rounds=8, branching=8
        ).run(evasion_bases(seed=2012, count=16))
        assert report.attacked > 0
        assert report.evaded > 0
        # Every claimed evasion must actually not alert.
        for outcome in report.outcomes:
            if outcome.evaded:
                assert not brittle().inspect(outcome.variant).alert
                assert len(outcome.chain) >= 1

    def test_chain_replays_from_reported_moves(self):
        """An evading outcome's chain is real evidence, not a log: the
        variant differs from the base and scores strictly lower."""
        report = EvasionSearch(brittle().inspect, seed=2012).run(
            evasion_bases(seed=2012, count=16)
        )
        evading = [o for o in report.outcomes if o.evaded]
        assert evading, "expected at least one evasion against brittle rules"
        for outcome in evading:
            assert outcome.variant != outcome.base
            assert outcome.variant_score < outcome.base_score


class TestRngIsolation:
    def test_search_does_not_touch_global_numpy_state(self):
        np.random.seed(123)
        before = np.random.random()
        np.random.seed(123)
        EvasionSearch(brittle().inspect, seed=5).run(
            evasion_bases(seed=5, count=4)
        )
        after = np.random.random()
        assert before == after
