"""Per-surface extractor units: the tentpole's parsing edge cases.

Each extractor owns one request channel; these tests pin the locator
grammar (it appears in wire responses and bench artifacts) and the
hostile-input behaviour: nested and escaped JSON, duplicate cookie
names, multipart boundary edges, and non-UTF-8 header bytes.
"""

import json

import pytest

from repro.http import HttpRequest
from repro.surfaces import (
    DEFAULT_SURFACES,
    LEGACY_SURFACES,
    InjectionSurface,
    extract_surfaces,
    format_surfaces,
    legacy_flatten,
    parse_surfaces,
    scoring_units,
)


def values_of(request, surface):
    return [
        (sv.locator, sv.value)
        for sv in extract_surfaces(request, DEFAULT_SURFACES)
        if sv.surface is surface
    ]


class TestParseSurfaces:
    def test_all_is_every_surface_in_canonical_order(self):
        assert parse_surfaces("all") == DEFAULT_SURFACES

    def test_canonical_order_and_dedup(self):
        assert parse_surfaces("cookie,query,cookie,form") == (
            InjectionSurface.QUERY,
            InjectionSurface.FORM_BODY,
            InjectionSurface.COOKIE,
        )

    def test_legacy_spelling(self):
        assert parse_surfaces("query,form") == LEGACY_SURFACES

    def test_unknown_name_lists_the_valid_ones(self):
        with pytest.raises(ValueError, match="second-order"):
            parse_surfaces("query,bogus")

    def test_roundtrips_through_format(self):
        selection = parse_surfaces("json,header,second-order")
        assert parse_surfaces(format_surfaces(selection)) == selection


class TestJsonExtraction:
    def test_nested_paths(self):
        request = HttpRequest(
            method="POST",
            headers={"content-type": "application/json"},
            body=json.dumps(
                {"a": {"b": "deep"}, "items": ["x", {"k": "y"}]}
            ),
        )
        extracted = values_of(request, InjectionSurface.JSON_BODY)
        assert ("$.a.b", "deep") in extracted
        assert ("$.items[0]", "x") in extracted
        assert ("$.items[1].k", "y") in extracted

    def test_escaped_nested_json_string_is_rewalked(self):
        inner = json.dumps({"q": "1' or 1=1--"})
        request = HttpRequest(
            method="POST",
            headers={"content-type": "application/json"},
            body=json.dumps({"wrapped": inner}),
        )
        extracted = values_of(request, InjectionSurface.JSON_BODY)
        # The string leaf itself is harvested AND its decoded interior.
        assert ("$.wrapped", inner) in extracted
        assert ("$.wrapped!json.q", "1' or 1=1--") in extracted

    def test_malformed_body_becomes_one_opaque_value(self):
        request = HttpRequest(
            method="POST",
            headers={"content-type": "application/json"},
            body="{not json' or 1=1--",
        )
        extracted = values_of(request, InjectionSurface.JSON_BODY)
        assert extracted == [("$!malformed", "{not json' or 1=1--")]

    def test_non_json_content_type_yields_nothing(self):
        request = HttpRequest(
            method="POST",
            headers={"content-type": "text/plain"},
            body='{"k": "v"}',
        )
        assert values_of(request, InjectionSurface.JSON_BODY) == []


class TestCookieExtraction:
    def test_duplicate_names_get_ordinal_locators(self):
        request = HttpRequest(
            headers={"cookie": "sid=a; sid=b; sid=c; other=d"}
        )
        extracted = values_of(request, InjectionSurface.COOKIE)
        assert ("sid", "a") in extracted
        assert ("sid#2", "b") in extracted
        assert ("sid#3", "c") in extracted
        assert ("other", "d") in extracted

    def test_no_cookie_header(self):
        assert values_of(HttpRequest(), InjectionSurface.COOKIE) == []


class TestMultipartExtraction:
    def _request(self, body, boundary='"bnd"'):
        return HttpRequest(
            method="POST",
            headers={
                "content-type":
                    f"multipart/form-data; boundary={boundary}"
            },
            body=body,
        )

    def test_quoted_boundary_and_filename(self):
        body = (
            "--bnd\r\n"
            'Content-Disposition: form-data; name="f"; '
            'filename="evil\' or 1=1--.txt"\r\n\r\n'
            "content here\r\n"
            "--bnd--\r\n"
        )
        extracted = values_of(
            self._request(body), InjectionSurface.MULTIPART
        )
        assert ("part:f:filename", "evil' or 1=1--.txt") in extracted
        assert ("part:f", "content here") in extracted

    def test_lf_only_bodies_are_tolerated(self):
        body = (
            "--bnd\n"
            'Content-Disposition: form-data; name="f"\n\n'
            "payload\n"
            "--bnd--\n"
        )
        extracted = values_of(
            self._request(body, boundary="bnd"),
            InjectionSurface.MULTIPART,
        )
        assert ("part:f", "payload") in extracted

    def test_missing_boundary_yields_whole_body(self):
        request = HttpRequest(
            method="POST",
            headers={"content-type": "multipart/form-data"},
            body="raw' union select--",
        )
        extracted = values_of(request, InjectionSurface.MULTIPART)
        assert extracted == [("part:!unbounded", "raw' union select--")]


class TestHeaderExtraction:
    def test_skip_set_excludes_structural_headers(self):
        request = HttpRequest(headers={
            "host": "a", "content-type": "b", "cookie": "c=d",
            "user-agent": "sqlmap/1.0",
        })
        extracted = values_of(request, InjectionSurface.HEADER)
        assert extracted == [("user-agent", "sqlmap/1.0")]

    def test_non_utf8_header_bytes_survive(self):
        # Raw high bytes decoded as latin-1 — a real scanner trick for
        # smuggling past naive UTF-8 validators.
        hostile = "caf\xe9' or \xff1=1--"
        request = HttpRequest(headers={"x-custom": hostile})
        extracted = values_of(request, InjectionSurface.HEADER)
        assert extracted == [("x-custom", hostile)]


class TestSecondOrder:
    def test_stored_pairs_are_harvested(self):
        request = HttpRequest(
            stored=(("comment", "x' or 1=1--"), ("bio", "hi")),
        )
        extracted = values_of(request, InjectionSurface.SECOND_ORDER)
        assert extracted == [
            ("stored:comment", "x' or 1=1--"), ("stored:bio", "hi"),
        ]


class TestScoringUnits:
    """The legacy merge: query+form score as ONE flattened unit."""

    def test_legacy_selection_is_one_flattened_unit(self):
        request = HttpRequest(
            method="POST",
            query="a=1",
            headers={
                "content-type": "application/x-www-form-urlencoded"
            },
            body="b=2",
        )
        units = scoring_units(request, LEGACY_SURFACES)
        assert len(units) == 1
        assert units[0].value == "a=1&b=2"
        assert units[0].value == request.flat_payload()

    def test_legacy_unit_emitted_even_when_empty(self):
        units = scoring_units(HttpRequest(), LEGACY_SURFACES)
        assert len(units) == 1 and units[0].value == ""

    def test_query_only_selection(self):
        request = HttpRequest(
            method="POST",
            query="a=1",
            headers={
                "content-type": "application/x-www-form-urlencoded"
            },
            body="b=2",
        )
        units = scoring_units(request, (InjectionSurface.QUERY,))
        assert [u.value for u in units] == ["a=1"]

    def test_non_legacy_surfaces_are_per_value_units(self):
        request = HttpRequest(
            query="a=1",
            headers={"cookie": "s=x; t=y"},
        )
        units = scoring_units(
            request,
            (InjectionSurface.QUERY, InjectionSurface.COOKIE),
        )
        assert [u.value for u in units] == ["a=1", "x", "y"]


class TestLegacyFlatten:
    CASES = [
        HttpRequest(query="id=1"),
        HttpRequest(),
        HttpRequest(
            method="POST", query="q=x",
            headers={
                "content-type": "application/x-www-form-urlencoded"
            },
            body="u=admin",
        ),
        HttpRequest(
            method="POST",
            headers={"content-type": "application/json"},
            body='{"k": "v"}',
        ),
        HttpRequest(method="POST", body="bare=1"),
        HttpRequest(method="GET", body="odd=1"),
    ]

    @pytest.mark.parametrize("request_", CASES)
    def test_identical_to_flat_payload(self, request_):
        assert legacy_flatten(request_) == request_.flat_payload()
