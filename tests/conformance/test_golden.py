"""Golden-corpus snapshots: record, read back, detect drift and rot."""

import json

import pytest

from repro.conformance import (
    GoldenError,
    Verdict,
    diff_golden,
    read_golden,
    write_golden,
)


PAYLOADS = ["id=1' union select 1", "q=hello", "q=café&x=%27"]
VERDICTS = [
    Verdict(alert=True, score=0.93, fired=(1, 4)),
    Verdict(alert=False, score=0.02, fired=()),
    Verdict(alert=False, score=None, fired=()),
]


def record(path, payloads=PAYLOADS, verdicts=VERDICTS):
    write_golden(
        str(path), list(payloads), list(verdicts),
        detector="toy", seed=2012, budget="small",
        extra={"source": "test"},
    )


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        target = tmp_path / "golden.jsonl"
        record(target)
        golden = read_golden(str(target))
        assert len(golden) == 3
        assert golden.payloads == PAYLOADS
        assert golden.verdicts == VERDICTS
        assert golden.ids == ["g-00000", "g-00001", "g-00002"]
        assert golden.meta["detector"] == "toy"
        assert golden.meta["seed"] == 2012
        assert golden.meta["source"] == "test"

    def test_none_score_survives_the_round_trip(self, tmp_path):
        target = tmp_path / "golden.jsonl"
        record(target)
        assert read_golden(str(target)).verdicts[2].score is None

    def test_unicode_payload_is_stored_readably(self, tmp_path):
        # ensure_ascii=False: review diffs should show café, not é.
        target = tmp_path / "golden.jsonl"
        record(target)
        assert "café" in target.read_text()

    def test_length_mismatch_refused_at_write(self, tmp_path):
        with pytest.raises(ValueError, match="payloads"):
            write_golden(
                str(tmp_path / "bad.jsonl"), PAYLOADS, VERDICTS[:1],
                detector="toy", seed=1, budget="small",
            )


class TestReadValidation:
    def test_empty_file(self, tmp_path):
        target = tmp_path / "empty.jsonl"
        target.write_text("")
        with pytest.raises(GoldenError, match="empty"):
            read_golden(str(target))

    def test_unparseable_header(self, tmp_path):
        target = tmp_path / "bad.jsonl"
        target.write_text("{not json\n")
        with pytest.raises(GoldenError, match="bad meta"):
            read_golden(str(target))

    def test_wrong_kind(self, tmp_path):
        target = tmp_path / "bad.jsonl"
        target.write_text(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(GoldenError, match="not a conformance"):
            read_golden(str(target))

    def test_wrong_schema(self, tmp_path):
        target = tmp_path / "bad.jsonl"
        target.write_text(json.dumps({
            "kind": "repro-conformance-golden", "schema": 99,
        }) + "\n")
        with pytest.raises(GoldenError, match="schema"):
            read_golden(str(target))

    def test_incomplete_record(self, tmp_path):
        target = tmp_path / "bad.jsonl"
        record(target)
        lines = target.read_text().splitlines()
        broken = json.loads(lines[1])
        del broken["fired"]
        lines[1] = json.dumps(broken)
        target.write_text("\n".join(lines) + "\n")
        with pytest.raises(GoldenError, match="incomplete record"):
            read_golden(str(target))

    def test_header_count_contradiction(self, tmp_path):
        target = tmp_path / "bad.jsonl"
        record(target)
        lines = target.read_text().splitlines()
        target.write_text("\n".join(lines[:-1]) + "\n")  # drop a record
        with pytest.raises(GoldenError, match="declares"):
            read_golden(str(target))

    def test_blank_lines_are_tolerated(self, tmp_path):
        target = tmp_path / "golden.jsonl"
        record(target)
        target.write_text(target.read_text() + "\n\n")
        assert len(read_golden(str(target))) == 3


class TestDiffGolden:
    def test_identical_verdicts_are_quiet(self, tmp_path):
        target = tmp_path / "golden.jsonl"
        record(target)
        golden = read_golden(str(target))
        assert diff_golden(golden, list(VERDICTS)) == []

    def test_flipped_verdict_is_caught(self, tmp_path):
        target = tmp_path / "golden.jsonl"
        record(target)
        golden = read_golden(str(target))
        drifted = list(VERDICTS)
        drifted[0] = Verdict(alert=False, score=0.93, fired=())
        out = diff_golden(golden, drifted)
        assert {d.field for d in out} == {"alert", "fired"}
        assert all(d.baseline == "golden" for d in out)

    def test_small_score_drift_is_within_golden_tolerance(self, tmp_path):
        # The golden tolerance is wider than the in-process one: it must
        # absorb a JSON float round-trip, not flag it.
        target = tmp_path / "golden.jsonl"
        record(target)
        golden = read_golden(str(target))
        drifted = list(VERDICTS)
        drifted[0] = Verdict(alert=True, score=0.93 + 1e-9, fired=(1, 4))
        assert diff_golden(golden, drifted) == []

    def test_large_score_drift_is_caught(self, tmp_path):
        target = tmp_path / "golden.jsonl"
        record(target)
        golden = read_golden(str(target))
        drifted = list(VERDICTS)
        drifted[0] = Verdict(alert=True, score=0.5, fired=(1, 4))
        out = diff_golden(golden, drifted)
        assert [d.field for d in out] == ["score"]
