"""The differential oracle end-to-end.

Two acceptance-level facts live here: a healthy detector is conformant
across every registered path, and an *injected* scoring perturbation is
actually caught — the oracle must be able to fail, or its green runs
mean nothing.
"""

import pytest

from repro.conformance import (
    ClusterPath,
    ConformanceError,
    DetectorPath,
    Oracle,
    SerialPath,
    Verdict,
    default_paths,
    extraction_divergences,
    format_report,
    generate_corpus,
    serial_verdicts,
)
from repro.ids import DeterministicRuleSet, PSigeneDetector, Rule
from repro.obs.registry import get_registry


def toy_detector():
    return DeterministicRuleSet(
        "toy", [Rule(1, "union", r"union\s+select")]
    )


PAYLOADS = [
    "id=1' union select 1,2,3-- -",
    "q=hello world",
    "",
    "q=a+b",
    "search=union+square+hotels",
]


class PerturbedPath(DetectorPath):
    """A deliberately wrong path: scores drift on alerting payloads."""

    name = "perturbed"

    def run(self, detector, payloads):
        out = []
        for verdict in serial_verdicts(detector, payloads):
            if verdict.alert:
                out.append(Verdict(
                    alert=verdict.alert,
                    score=verdict.score + 0.25,
                    fired=verdict.fired,
                ))
            else:
                out.append(verdict)
        return out


class ExplodingPath(DetectorPath):
    name = "exploding"

    def run(self, detector, payloads):
        raise ConformanceError("this path always fails")


class TestOracleConformant:
    def test_toy_detector_agrees_on_every_path(self):
        # Cluster mode self-excludes (no signature_set on the rule set);
        # everything else — engine, batch fan-out, live gateway — runs.
        report = Oracle(toy_detector(), check_extraction=False).run(
            PAYLOADS
        )
        assert report.ok, format_report(report)
        assert report.paths[0] == "serial"
        assert "gateway" in report.paths
        assert "batch-w8" in report.paths
        assert all(name != "cluster-w4" for name in report.paths)
        assert all(
            report.path_wall_s[name] >= 0 for name in report.paths
        )

    def test_counters_account_for_the_run(self):
        payload_counter = get_registry().counter(
            "repro_conformance_payloads_total", ""
        )
        before = payload_counter.value
        Oracle(
            toy_detector(),
            paths=[SerialPath()],
            check_extraction=False,
        ).run(PAYLOADS)
        assert payload_counter.value == before + len(PAYLOADS)

    @pytest.mark.smoke
    def test_trained_detector_full_path_matrix(self, small_signatures):
        # The acceptance bar: the real pSigene detector, every path
        # including cluster sharding and the TCP gateway, a fuzzed
        # corpus big enough to cross MIN_PARALLEL_BATCH — zero
        # divergences.
        detector = PSigeneDetector(small_signatures)
        corpus = generate_corpus(seed=2012, budget="small")
        report = Oracle(
            detector, extraction_workers=(1, 2)
        ).run(corpus)
        assert report.ok, format_report(report)
        assert "cluster-w4" in report.paths
        assert "extraction" in report.paths
        assert report.n_payloads == len(corpus)


class TestOracleCatchesInjectedFaults:
    def test_scoring_perturbation_yields_divergences(self):
        # If this fails, the harness is decorative: an injected +0.25
        # score drift MUST surface as a non-empty divergence report.
        oracle = Oracle(
            toy_detector(),
            paths=[SerialPath(), PerturbedPath()],
            check_extraction=False,
        )
        report = oracle.run(PAYLOADS)
        assert not report.ok
        divergences = report.divergences_for("perturbed")
        assert divergences
        assert all(d.field == "score" for d in divergences)
        # Exactly the alerting payloads drifted.
        alerting = [
            i for i, v in enumerate(
                serial_verdicts(toy_detector(), PAYLOADS)
            ) if v.alert
        ]
        assert [d.index for d in divergences] == alerting
        # And the report renders them for a human.
        assert "perturbed vs serial" in format_report(report)

    def test_divergence_counter_increments(self):
        counter = get_registry().counter(
            "repro_conformance_divergences_total", ""
        )
        before = counter.value
        report = Oracle(
            toy_detector(),
            paths=[SerialPath(), PerturbedPath()],
            check_extraction=False,
        ).run(PAYLOADS)
        assert counter.value == before + len(report.divergences)

    def test_exploding_path_is_an_error_divergence_not_a_crash(self):
        report = Oracle(
            toy_detector(),
            paths=[SerialPath(), ExplodingPath(), PerturbedPath()],
            check_extraction=False,
        ).run(PAYLOADS)
        errors = [d for d in report.divergences if d.field == "error"]
        assert len(errors) == 1
        assert errors[0].path == "exploding"
        assert "always fails" in errors[0].observed
        # The later path still ran and still reported its drift.
        assert report.divergences_for("perturbed")

    def test_baseline_failure_is_fatal(self):
        oracle = Oracle(
            toy_detector(),
            paths=[ExplodingPath(), SerialPath()],
            check_extraction=False,
        )
        with pytest.raises(ConformanceError, match="baseline"):
            oracle.run(PAYLOADS)

    def test_oracle_requires_a_baseline(self):
        with pytest.raises(ValueError, match="at least one path"):
            Oracle(toy_detector(), paths=[])


class TestPathRegistry:
    def test_default_paths_are_serial_first(self):
        paths = default_paths()
        assert paths[0].name == "serial"
        names = [p.name for p in paths]
        assert names.index("serial") < names.index("gateway")
        assert {"batch-w1", "batch-w2", "batch-w8"} <= set(names)

    def test_legacy_serial_path_is_registered(self):
        # The fused-vs-legacy differential must run on every oracle
        # invocation, right after the ground-truth path.
        names = [p.name for p in default_paths()]
        assert names[1] == "serial-legacy"


class TestLegacySerialPath:
    def test_agrees_with_fused_serial(self, small_signatures):
        from repro.conformance import LegacySerialPath

        detector = PSigeneDetector(small_signatures)
        fused = SerialPath().run(detector, PAYLOADS)
        legacy = LegacySerialPath().run(detector, PAYLOADS)
        assert fused == legacy

    def test_runs_with_fused_disabled(self):
        from repro.conformance import LegacySerialPath
        from repro.match import fused_enabled

        class Probe:
            name = "probe"

            def inspect(self, payload):
                states.append(fused_enabled())
                return toy_detector().inspect(payload)

        states: list[bool] = []
        LegacySerialPath().run(Probe(), ["x"])
        assert states == [False]

    def test_cluster_path_requires_a_signature_set(self, small_signatures):
        path = ClusterPath()
        assert not path.supports(toy_detector())
        assert path.supports(PSigeneDetector(small_signatures))


class TestExtractionParity:
    def test_parallel_matrices_match_serial(self):
        corpus = generate_corpus(seed=2012, budget="small")
        assert extraction_divergences(corpus, worker_counts=(1, 2)) == []
