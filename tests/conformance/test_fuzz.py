"""The seeded fuzz corpus: deterministic, adversarial, wire-safe."""

import pytest

from repro.conformance import BUDGETS, generate_corpus
from repro.conformance.fuzz import _STATIC_EDGES
from repro.parallel.batch import MIN_PARALLEL_BATCH


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        assert generate_corpus(seed=7) == generate_corpus(seed=7)

    def test_different_seed_differs(self):
        assert generate_corpus(seed=7) != generate_corpus(seed=8)

    def test_payloads_are_unique(self):
        corpus = generate_corpus(seed=2012)
        assert len(corpus) == len(set(corpus))


class TestBudgets:
    def test_known_budgets(self):
        assert set(BUDGETS) == {"small", "medium", "large"}

    def test_unknown_budget_raises(self):
        with pytest.raises(ValueError, match="unknown budget"):
            generate_corpus(budget="gigantic")

    def test_budgets_scale(self):
        small = generate_corpus(seed=2012, budget="small")
        medium = generate_corpus(seed=2012, budget="medium")
        assert len(medium) > len(small)

    def test_small_budget_exceeds_parallel_threshold(self):
        # Batches below MIN_PARALLEL_BATCH short-circuit to the serial
        # loop; a corpus under the threshold would never exercise the
        # real multiprocess fan-out the oracle exists to check.
        assert len(generate_corpus(budget="small")) > MIN_PARALLEL_BATCH


class TestAdversarialContent:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(seed=2012, budget="small")

    def test_wire_safe(self, corpus):
        # The line protocol frames on newlines: raw CR/LF in a payload
        # would make the gateway see a different request count than the
        # offline paths and invalidate every comparison.
        for payload in corpus:
            assert "\n" not in payload and "\r" not in payload

    def test_static_edges_included(self, corpus):
        for edge in _STATIC_EDGES:
            assert edge in corpus

    def test_empty_payload_included(self, corpus):
        assert "" in corpus

    def test_unicode_evasions_included(self, corpus):
        assert any(
            any(ord(ch) > 127 for ch in payload) for payload in corpus
        )

    def test_plus_and_percent_edges_included(self, corpus):
        assert "q=a+b" in corpus
        assert "discount=100%" in corpus

    def test_long_tail_payload_included(self, corpus):
        assert any(len(payload) > 2000 for payload in corpus)

    def test_attacks_and_benign_both_present(self, corpus):
        # The corpus must straddle the decision boundary: a corpus the
        # detector answers uniformly would hide alert-flag divergences.
        assert any("union" in p.lower() for p in corpus)
        assert "search=union+square+hotels" in corpus
