"""Sharded live-TCP conformance: the fleet against the serial baseline.

The acceptance claim of DESIGN.md §15: verdicts through an N-shard
fleet on one shared port are bit-identical to ``detector.inspect``
offline, including while a two-phase hot reload races the replay.
"""

import multiprocessing

import pytest

from repro.conformance import (
    Oracle,
    ShardedGatewayPath,
    default_paths,
    format_report,
)
from repro.ids import DeterministicRuleSet, PSigeneDetector, Rule


def toy_detector():
    return DeterministicRuleSet(
        "toy", [Rule(1, "union", r"union\s+select")]
    )


PAYLOADS = [
    "id=1' union select 1,2,3-- -",
    "q=hello world",
    "",
    "a=UNION  SELECT 1",
    "search=union+square+hotels",
    "id=1 AND 1=1",
] * 10


needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet paths need the fork start method",
)


class TestSupportsGating:
    def test_reload_variant_needs_signature_set(self):
        path = ShardedGatewayPath(shards=2, midstream_reload=True)
        if "fork" not in multiprocessing.get_all_start_methods():
            assert not path.supports(toy_detector())
            return
        # A rule set has no serializable SignatureSet to re-deploy.
        assert not path.supports(toy_detector())

    @needs_fork
    def test_plain_variant_supports_any_detector(self):
        assert ShardedGatewayPath(shards=2).supports(toy_detector())

    def test_shard_count_validated(self):
        with pytest.raises(ValueError):
            ShardedGatewayPath(shards=0)

    def test_names_distinguish_variants(self):
        assert ShardedGatewayPath(shards=2).name == "fleet-s2"
        names = {
            path.name
            for path in default_paths(fleet=True, fleet_shards=2)
        }
        assert "fleet-s2" in names
        assert "fleet-s2-reload" in names
        assert "fleet-s2" not in {
            path.name for path in default_paths(fleet=False)
        }


class TestShardedConformance:
    @needs_fork
    def test_fleet_matches_serial_baseline(self):
        report = Oracle(
            toy_detector(),
            paths=[ShardedGatewayPath(shards=2, workers=2)],
            check_extraction=False,
        ).run(PAYLOADS)
        assert report.ok, format_report(report)
        assert report.divergences == []

    @needs_fork
    @pytest.mark.smoke
    def test_fleet_midstream_reload_matches_serial(self, small_signatures):
        """Zero divergences even while the replay races a fleet-wide
        two-phase reload — no matter which generation answered."""
        detector = PSigeneDetector(small_signatures)
        report = Oracle(
            detector,
            paths=[
                ShardedGatewayPath(shards=2, workers=2),
                ShardedGatewayPath(
                    shards=2, workers=2, midstream_reload=True
                ),
            ],
            check_extraction=False,
        ).run(PAYLOADS)
        assert report.ok, format_report(report)
        assert report.divergences == []
        assert set(report.paths) >= {"fleet-s2", "fleet-s2-reload"}
