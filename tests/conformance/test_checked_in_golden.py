"""The repository's checked-in golden corpus still reproduces.

``conformance/golden/small-seed2012.jsonl`` was recorded with
``repro conform record`` against the canonical small training
configuration — the same one the ``small_signatures`` fixture trains.
If this test fails, a change moved a recorded verdict: either revert
it, or (when the change is intentional) re-record the snapshot and
review the diff line by line.
"""

from pathlib import Path

import pytest

from repro.conformance import (
    diff_golden,
    generate_corpus,
    read_golden,
    serial_verdicts,
)
from repro.ids import PSigeneDetector

GOLDEN = (
    Path(__file__).resolve().parents[2]
    / "conformance" / "golden" / "small-seed2012.jsonl"
)


@pytest.mark.smoke
class TestCheckedInGolden:
    def test_snapshot_exists_and_parses(self):
        golden = read_golden(str(GOLDEN))
        assert golden.meta["detector"] == "psigene"
        assert golden.meta["seed"] == 2012
        assert golden.meta["budget"] == "small"
        assert len(golden) == golden.meta["n"]

    def test_snapshot_matches_the_generated_corpus(self):
        # The recorded payloads are exactly generate_corpus(seed, budget)
        # for the header's parameters — nobody hand-edited the file.
        golden = read_golden(str(GOLDEN))
        assert golden.payloads == generate_corpus(
            seed=golden.meta["seed"], budget=golden.meta["budget"]
        )

    def test_fixture_detector_reproduces_every_verdict(
        self, small_signatures
    ):
        golden = read_golden(str(GOLDEN))
        divergences = diff_golden(
            golden,
            serial_verdicts(
                PSigeneDetector(small_signatures), golden.payloads
            ),
        )
        assert divergences == [], "\n".join(
            d.describe() for d in divergences[:10]
        )
