"""The two surface-era conformance paths: framed wire, legacy parity.

Acceptance criterion of the surface redesign: both new paths run with
zero divergences against the serial baseline over fuzzed corpora — the
framed data plane and the surface scorer's legacy selection are
verdict-identical to ``detector.inspect``.
"""

from repro.conformance import (
    GatewayFramedPath,
    Oracle,
    SerialPath,
    SurfacesLegacyParityPath,
    default_paths,
    generate_corpus,
)
from repro.ids import DeterministicRuleSet, Rule


def toy_detector():
    return DeterministicRuleSet("toy", [
        Rule(1, "union", r"union\s+select"),
        Rule(2, "quote-or", r"'\s*or\s"),
        Rule(3, "comment", r"--\s*$"),
    ])


def corpus():
    return generate_corpus(seed=2012, budget="small")


class TestRegistration:
    def test_both_paths_are_registered_by_default(self):
        names = {path.name for path in default_paths()}
        assert "surfaces-legacy-parity" in names
        assert "gateway-framed" in names

    def test_framed_path_sits_with_the_gateway_paths(self):
        names = {path.name for path in default_paths(gateway=False)}
        assert "gateway-framed" not in names
        assert "surfaces-legacy-parity" in names


class TestZeroDivergences:
    def test_surfaces_legacy_parity_matches_serial(self):
        report = Oracle(
            toy_detector(),
            paths=[SerialPath(), SurfacesLegacyParityPath()],
            check_extraction=False,
        ).run(corpus())
        assert report.ok, report.summary()

    def test_gateway_framed_matches_serial(self):
        report = Oracle(
            toy_detector(),
            paths=[SerialPath(), GatewayFramedPath()],
            check_extraction=False,
        ).run(corpus())
        assert report.ok, report.summary()

    def test_both_against_trained_signatures(self, small_signatures):
        from repro.ids import PSigeneDetector

        report = Oracle(
            PSigeneDetector(small_signatures),
            paths=[
                SerialPath(),
                SurfacesLegacyParityPath(),
                GatewayFramedPath(),
            ],
            check_extraction=False,
        ).run(corpus())
        assert report.ok, report.summary()
