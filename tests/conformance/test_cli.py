"""The ``repro conform`` command line: run, record, diff."""

import json

import pytest

from repro.__main__ import main
from repro.core import signature_set_to_json


@pytest.fixture(scope="module")
def signature_file(small_signatures, tmp_path_factory):
    path = tmp_path_factory.mktemp("conform-cli") / "signatures.json"
    path.write_text(signature_set_to_json(small_signatures))
    return str(path)


class TestConformRun:
    @pytest.mark.smoke
    def test_conformant_run_exits_0(self, signature_file, capsys):
        code = main([
            "conform", "run", "-s", signature_file, "--budget", "small",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        # Both the mounted detector and the Perdisci baseline self-check.
        assert out.count("CONFORMANT") == 2
        assert "divergences=0" in out
        assert "gateway" in out and "cluster-w4" in out

    def test_no_perdisci_skips_the_baseline(self, signature_file, capsys):
        code = main([
            "conform", "run", "-s", signature_file, "--no-perdisci",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert out.count("CONFORMANT") == 1


class TestConformRecordAndDiff:
    @pytest.fixture(scope="class")
    def recorded(self, signature_file, tmp_path_factory):
        path = tmp_path_factory.mktemp("golden") / "small.jsonl"
        code = main([
            "conform", "record", "-s", signature_file,
            "-o", str(path),
        ])
        assert code == 0
        return path

    def test_record_writes_a_valid_snapshot(self, recorded):
        lines = recorded.read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta["kind"] == "repro-conformance-golden"
        assert meta["n"] == len(lines) - 1
        assert meta["source"].startswith("file:")

    def test_diff_against_fresh_recording_is_clean(
        self, signature_file, recorded, capsys
    ):
        code = main([
            "conform", "diff", "-s", signature_file, str(recorded),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "GOLDEN OK" in out

    def test_tampered_snapshot_exits_6(
        self, signature_file, recorded, tmp_path, capsys
    ):
        lines = recorded.read_text().splitlines()
        # Flip the first recorded verdict.
        record = json.loads(lines[1])
        record["alert"] = not record["alert"]
        record["fired"] = []
        lines[1] = json.dumps(record, sort_keys=True, ensure_ascii=False)
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text("\n".join(lines) + "\n")

        code = main([
            "conform", "diff", "-s", signature_file, str(tampered),
        ])
        out = capsys.readouterr().out
        assert code == 6
        assert "GOLDEN DIVERGENT" in out
        assert "alert" in out

    def test_missing_snapshot_is_a_clean_error(self, signature_file):
        with pytest.raises(SystemExit, match="not found"):
            main([
                "conform", "diff", "-s", signature_file,
                "/nonexistent/golden.jsonl",
            ])

    def test_corrupt_snapshot_is_a_clean_error(
        self, signature_file, tmp_path
    ):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        with pytest.raises(SystemExit, match="bad meta"):
            main(["conform", "diff", "-s", signature_file, str(bad)])
