"""Verdict normalization and the element-wise diff semantics."""

import json

import pytest

from repro.conformance import (
    ConformanceReport,
    Divergence,
    Verdict,
    diff_verdicts,
)
from repro.conformance.verdict import MAX_PAYLOAD_CHARS
from repro.ids import DeterministicRuleSet, Rule


def verdict(alert=False, score=0.0, fired=()):
    return Verdict(alert=alert, score=score, fired=tuple(fired))


class TestVerdictNormalForm:
    def test_from_detection(self):
        detector = DeterministicRuleSet(
            "toy", [Rule(7, "union", r"union\s+select")]
        )
        seen = Verdict.from_detection(
            detector.inspect("id=1' union select 1")
        )
        assert seen.alert is True
        assert seen.fired == (7,)
        assert seen.score == pytest.approx(1.0)

    def test_to_dict_is_json_ready(self):
        data = verdict(alert=True, score=0.75, fired=(3, 9)).to_dict()
        assert json.loads(json.dumps(data)) == {
            "alert": True, "score": 0.75, "fired": [3, 9],
        }


class TestDiffVerdicts:
    def test_identical_sequences_have_no_divergence(self):
        truth = [verdict(), verdict(alert=True, score=0.9, fired=(1,))]
        assert diff_verdicts(
            "serial", truth, "other", list(truth), ["a", "b"]
        ) == []

    def test_alert_flip_is_reported(self):
        out = diff_verdicts(
            "serial", [verdict(alert=True, fired=())],
            "other", [verdict(alert=False, fired=())],
            ["q=1"],
        )
        assert len(out) == 1
        d = out[0]
        assert (d.field, d.index) == ("alert", 0)
        assert (d.expected, d.observed) == (True, False)
        assert d.payload == "q=1"

    def test_fired_mismatch_is_reported(self):
        out = diff_verdicts(
            "serial", [verdict(alert=True, fired=(1, 2))],
            "other", [verdict(alert=True, fired=(1,))],
            ["q=1"],
        )
        assert [d.field for d in out] == ["fired"]
        assert out[0].expected == [1, 2] and out[0].observed == [1]

    def test_score_beyond_tolerance_is_reported(self):
        out = diff_verdicts(
            "serial", [verdict(score=0.5)],
            "other", [verdict(score=0.5 + 1e-3)],
            ["q=1"], score_tolerance=1e-6,
        )
        assert [d.field for d in out] == ["score"]

    def test_score_within_tolerance_is_quiet(self):
        assert diff_verdicts(
            "serial", [verdict(score=0.5)],
            "other", [verdict(score=0.5 + 1e-12)],
            ["q=1"],
        ) == []

    def test_none_score_skips_the_comparison(self):
        # The serial engine path exposes no score for non-alerts; that
        # must not read as a divergence against a path that does.
        assert diff_verdicts(
            "serial", [verdict(score=0.2)],
            "other", [verdict(score=None)],
            ["q=1"],
        ) == []

    def test_length_mismatch_is_one_count_divergence(self):
        out = diff_verdicts(
            "serial", [verdict(), verdict()],
            "other", [verdict()],
            ["a", "b"],
        )
        assert len(out) == 1
        assert out[0].field == "count" and out[0].index is None
        assert (out[0].expected, out[0].observed) == (2, 1)

    def test_long_payload_is_elided(self):
        long = "q=" + "x" * 500
        out = diff_verdicts(
            "serial", [verdict(alert=True)],
            "other", [verdict(alert=False)],
            [long],
        )
        assert len(out[0].payload) == MAX_PAYLOAD_CHARS + 1
        assert out[0].payload.endswith("…")


class TestDivergenceAndReport:
    def test_describe_names_everything(self):
        text = Divergence(
            baseline="serial", path="gateway", index=3, field="alert",
            expected=True, observed=False, payload="id=1",
        ).describe()
        assert "gateway vs serial" in text
        assert "payload[3].alert" in text and "'id=1'" in text

    def test_path_level_describe(self):
        text = Divergence(
            baseline="serial", path="batch-w8", index=None,
            field="error", expected="a verdict per payload",
            observed="boom",
        ).describe()
        assert "path.error" in text

    def test_report_ok_and_summary(self):
        report = ConformanceReport(detector="toy", n_payloads=5)
        report.paths = ["serial", "gateway"]
        assert report.ok
        assert "CONFORMANT" in report.summary()
        report.divergences.append(Divergence(
            baseline="serial", path="gateway", index=0,
            field="alert", expected=True, observed=False,
        ))
        assert not report.ok
        assert "DIVERGENT" in report.summary()
        assert len(report.divergences_for("gateway")) == 1
        assert report.divergences_for("serial") == []

    def test_report_to_dict_is_json_ready(self):
        report = ConformanceReport(detector="toy", n_payloads=1)
        report.paths = ["serial"]
        report.path_wall_s["serial"] = 0.123456789
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is True
        assert data["path_wall_s"]["serial"] == pytest.approx(0.123457)
