"""Run-manifest schema validation and pipeline emission tests."""

import json

import pytest

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    ManifestError,
    build_manifest,
    git_describe,
    validate_manifest,
    write_manifest,
)


def minimal_manifest(**overrides):
    manifest = build_manifest(
        seed=2012,
        config={"n_attack_samples": 100},
        phases=[{
            "name": "pipeline.run", "depth": 0,
            "wall_s": 1.5, "cpu_s": 1.2, "attrs": {"seed": 2012},
        }],
        counts={"samples": 100, "signatures": 4},
        git="abc1234",
    )
    manifest.update(overrides)
    return manifest


class TestSchema:
    def test_built_manifest_validates(self):
        manifest = minimal_manifest()
        assert validate_manifest(manifest) is manifest
        assert manifest["schema"] == MANIFEST_SCHEMA

    def test_non_dict_rejected(self):
        with pytest.raises(ManifestError, match="object"):
            validate_manifest(["not", "a", "manifest"])

    @pytest.mark.parametrize("key", [
        "schema", "created_unix", "git", "seed", "config", "phases",
        "counts",
    ])
    def test_missing_key_rejected(self, key):
        manifest = minimal_manifest()
        del manifest[key]
        with pytest.raises(ManifestError, match=key):
            validate_manifest(manifest)

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(ManifestError, match="schema"):
            validate_manifest(minimal_manifest(schema=99))

    def test_phase_missing_field_rejected(self):
        manifest = minimal_manifest()
        del manifest["phases"][0]["wall_s"]
        with pytest.raises(ManifestError, match="wall_s"):
            validate_manifest(manifest)

    def test_non_int_count_rejected(self):
        with pytest.raises(ManifestError, match="counts"):
            validate_manifest(minimal_manifest(counts={"samples": "many"}))

    def test_git_describe_never_raises(self):
        assert isinstance(git_describe("/definitely/not/a/repo"), str)


class TestWrite:
    def test_write_and_reload(self, tmp_path):
        path = write_manifest(minimal_manifest(), str(tmp_path))
        with open(path) as handle:
            reloaded = json.load(handle)
        validate_manifest(reloaded)
        assert reloaded["seed"] == 2012

    def test_collision_gets_suffix(self, tmp_path):
        manifest = minimal_manifest()
        first = write_manifest(manifest, str(tmp_path))
        second = write_manifest(manifest, str(tmp_path))
        assert first != second
        assert second.endswith("-1.json")

    def test_invalid_manifest_not_written(self, tmp_path):
        with pytest.raises(ManifestError):
            write_manifest({"schema": 1}, str(tmp_path))
        assert list(tmp_path.iterdir()) == []


class TestPipelineEmission:
    """End-to-end: a tiny pipeline run emits trace + manifest."""

    @pytest.fixture(scope="class")
    def run_result(self, tmp_path_factory):
        from repro.core import PipelineConfig, PSigenePipeline

        manifest_dir = tmp_path_factory.mktemp("runs")
        config = PipelineConfig(
            n_attack_samples=400,
            n_benign_train=1200,
            max_cluster_rows=300,
            manifest_dir=str(manifest_dir),
        )
        return PSigenePipeline(config).run(), manifest_dir

    def test_every_phase_appears_as_named_span(self, run_result):
        result, _ = run_result
        root = result.trace["spans"][0]
        assert root["name"] == "pipeline.run"
        names = [child["name"] for child in root["children"]]
        assert names == [
            "phase.crawl", "phase.features", "phase.bicluster",
            "phase.generalize",
        ]

    def test_library_spans_nest_under_phases(self, run_result):
        result, _ = run_result
        root = result.trace["spans"][0]
        by_name = {child["name"]: child for child in root["children"]}
        crawl_children = [
            c["name"] for c in by_name["phase.crawl"]["children"]
        ]
        assert "crawl.run" in crawl_children
        features_children = [
            c["name"] for c in by_name["phase.features"]["children"]
        ]
        assert "features.extract_many" in features_children
        bicluster_children = [
            c["name"] for c in by_name["phase.bicluster"]["children"]
        ]
        assert "cluster.linkage" in bicluster_children

    def test_manifest_written_and_valid(self, run_result):
        result, manifest_dir = run_result
        assert result.manifest_path is not None
        with open(result.manifest_path) as handle:
            manifest = json.load(handle)
        validate_manifest(manifest)
        assert manifest["counts"]["samples"] == len(result.samples)
        assert manifest["counts"]["signatures"] == len(
            result.signature_set
        )
        phase_names = [p["name"] for p in manifest["phases"]]
        assert phase_names[0] == "pipeline.run"
        assert list(manifest_dir.iterdir())

    def test_no_manifest_without_dir(self):
        from repro.core import PipelineConfig, PSigenePipeline

        result = PSigenePipeline(PipelineConfig(
            n_attack_samples=400, n_benign_train=1200,
            max_cluster_rows=300,
        )).run()
        assert result.manifest_path is None
        assert result.trace is not None
