"""Tests for ``repro obs dump`` and ``repro obs validate``."""

import asyncio
import json
import threading

import pytest

from repro.__main__ import main


class TestObsValidate:
    def _write(self, tmp_path, manifest):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest))
        return str(path)

    def test_valid_manifest_exits_zero(self, tmp_path, capsys):
        from repro.obs.manifest import build_manifest

        path = self._write(tmp_path, build_manifest(
            seed=1, config={}, counts={"samples": 5},
            phases=[{
                "name": "pipeline.run", "depth": 0,
                "wall_s": 0.1, "cpu_s": 0.1, "attrs": {},
            }],
            git="abc",
        ))
        assert main(["obs", "validate", path]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK ")
        assert "pipeline.run" in out

    def test_invalid_manifest_exits_5(self, tmp_path, capsys):
        path = self._write(tmp_path, {"schema": 1, "seed": "nope"})
        assert main(["obs", "validate", path]) == 5
        assert capsys.readouterr().out.startswith("INVALID ")

    def test_missing_file_is_systemexit(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "validate", str(tmp_path / "absent.json")])

    def test_unparseable_json_is_systemexit(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit):
            main(["obs", "validate", str(path)])


class TestObsDump:
    def test_dump_scrapes_live_gateway(self, capsys):
        """Boot a gateway on an ephemeral port in a background loop,
        point ``repro obs dump`` at it, and check the dumped exposition
        parses."""
        from repro.ids import DeterministicRuleSet, Rule
        from repro.obs.prometheus import parse_exposition, sample_value
        from repro.serve import DetectionGateway, SignatureStore

        started = threading.Event()
        done = threading.Event()
        address: dict = {}

        async def serve():
            detector = DeterministicRuleSet(
                "toy", [Rule(1, "union", r"union\s+select")]
            )
            gateway = DetectionGateway(SignatureStore(detector))
            host, port = await gateway.start()
            address["host"], address["port"] = host, port
            started.set()
            while not done.is_set():
                await asyncio.sleep(0.01)
            await gateway.stop()

        thread = threading.Thread(
            target=lambda: asyncio.run(serve()), daemon=True
        )
        thread.start()
        assert started.wait(timeout=10)
        try:
            code = main([
                "obs", "dump",
                "--host", address["host"],
                "--port", str(address["port"]),
            ])
        finally:
            done.set()
            thread.join(timeout=10)
        assert code == 0
        body = capsys.readouterr().out
        families = parse_exposition(body)
        assert sample_value(families, "repro_inspected_total") == 0.0
        assert sample_value(families, "repro_store_version") == 1.0

    def test_dump_unreachable_gateway_is_systemexit(self):
        with pytest.raises(SystemExit, match="cannot scrape"):
            main([
                "obs", "dump", "--port", "1",  # nothing listens there
                "--timeout", "0.5",
            ])
