"""Tests for the metrics registry and its instruments."""

import pickle
import threading

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("repro_test_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("repro_test_total").inc(-1)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("repro test total")

    def test_thread_safety(self):
        counter = Counter("repro_test_total")

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0

    def test_callback_evaluated_at_read(self):
        state = {"depth": 3}
        gauge = Gauge("repro_depth", function=lambda: state["depth"])
        assert gauge.value == 3.0
        state["depth"] = 7
        assert gauge.value == 7.0

    def test_set_clears_callback(self):
        gauge = Gauge("repro_depth", function=lambda: 99)
        gauge.set(1)
        assert gauge.value == 1.0


class TestHistogram:
    def test_count_sum_mean(self):
        histogram = Histogram("repro_lat_seconds")
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(0.006)
        assert histogram.mean == pytest.approx(0.002)

    def test_quantile_within_one_bucket(self):
        histogram = Histogram("repro_lat_seconds", growth=1.25)
        for _ in range(100):
            histogram.observe(0.010)
        # The covering edge can overshoot by at most the growth factor.
        assert 0.010 <= histogram.quantile(0.5) <= 0.010 * 1.25

    def test_cumulative_buckets_monotone_and_complete(self):
        histogram = Histogram("repro_lat_seconds")
        for value in (1e-7, 0.001, 0.5, 120.0):  # under, mid, mid, over
            histogram.observe(value)
        pairs = histogram.cumulative_buckets()
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)
        assert counts[-1] == histogram.count == 4

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            Histogram("repro_x", low=0.0)
        with pytest.raises(ValueError):
            Histogram("repro_x", growth=1.0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_a_total")
        b = registry.counter("repro_a_total")
        assert a is b

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_a_total", labels={"feature": "x"})
        b = registry.counter("repro_a_total", labels={"feature": "y"})
        assert a is not b
        a.inc(2)
        assert b.value == 0

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_a_total")

    def test_collect_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("repro_z_total")
        registry.counter("repro_a_total")
        names = [i.name for i in registry.collect()]
        assert names == sorted(names)

    def test_snapshot_includes_labels_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", labels={"k": "v"}).inc(3)
        registry.histogram("repro_b_seconds").observe(0.01)
        snap = registry.snapshot()
        assert snap["repro_a_total{k=v}"] == 3
        assert snap["repro_b_seconds"]["count"] == 1


class TestNullRegistry:
    def test_everything_is_inert(self):
        registry = NullRegistry()
        counter = registry.counter("repro_a_total")
        counter.inc(100)
        histogram = registry.histogram("repro_b_seconds")
        histogram.observe(1.0)
        assert counter.value == 0.0
        assert histogram.count == 0
        assert registry.collect() == []
        assert registry.snapshot() == {}


class TestAmbientRegistry:
    def test_use_registry_swaps_and_restores(self):
        before = get_registry()
        private = MetricsRegistry()
        with use_registry(private) as installed:
            assert installed is private
            assert get_registry() is private
        assert get_registry() is before

    def test_cached_normalizer_reports_into_ambient_registry(self):
        from repro.parallel.cache import CachedNormalizer

        with use_registry(MetricsRegistry()) as registry:
            normalizer = CachedNormalizer(maxsize=8)
            normalizer("id=1")
            normalizer("id=1")
            snap = registry.snapshot()
        assert snap["repro_normalize_cache_misses_total"] == 1
        assert snap["repro_normalize_cache_hits_total"] == 1

    def test_cached_normalizer_rebinds_after_pickle(self):
        from repro.parallel.cache import CachedNormalizer

        with use_registry(MetricsRegistry()):
            normalizer = CachedNormalizer(maxsize=8)
        with use_registry(MetricsRegistry()) as second:
            revived = pickle.loads(pickle.dumps(normalizer))
            revived("id=1")
            assert second.snapshot()[
                "repro_normalize_cache_misses_total"
            ] == 1
