"""Exposition round-trip tests: render → strict-parse → values agree.

Includes the acceptance-criteria check that the gateway's ``/metrics``
Prometheus exposition and its ``/stats`` JSON report the same counters —
they are two renderings of one set of instruments.
"""

import asyncio
import json

import pytest

from repro.obs.prometheus import (
    CONTENT_TYPE,
    ExpositionError,
    parse_exposition,
    render_exposition,
    sample_value,
)
from repro.obs.registry import MetricsRegistry


def rendered_registry():
    registry = MetricsRegistry()
    registry.counter(
        "repro_a_total", "A counter.", labels={"feature": 'kw "q"\\n'}
    ).inc(3)
    registry.counter("repro_a_total", "A counter.").inc(1)
    registry.gauge("repro_depth", "A gauge.").set(2.5)
    histogram = registry.histogram("repro_lat_seconds", "A histogram.")
    for value in (0.001, 0.020, 0.020, 3.0):
        histogram.observe(value)
    return registry


class TestRoundTrip:
    def test_values_survive_render_and_parse(self):
        registry = rendered_registry()
        families = parse_exposition(render_exposition(registry))
        assert sample_value(
            families, "repro_a_total", {"feature": 'kw "q"\\n'}
        ) == 3.0
        assert sample_value(families, "repro_a_total") == 1.0
        assert sample_value(families, "repro_depth") == 2.5
        assert sample_value(families, "repro_lat_seconds_count") == 4.0
        assert sample_value(
            families, "repro_lat_seconds_sum"
        ) == pytest.approx(3.041)

    def test_histogram_buckets_cumulative_to_count(self):
        families = parse_exposition(
            render_exposition(rendered_registry())
        )
        buckets = [
            s for s in families["repro_lat_seconds"]
            if s.name == "repro_lat_seconds_bucket"
        ]
        values = [s.value for s in buckets]
        assert values == sorted(values)
        assert buckets[-1].labels["le"] == "+Inf"
        assert buckets[-1].value == 4.0

    def test_exposition_ends_with_newline_and_types(self):
        text = render_exposition(rendered_registry())
        assert text.endswith("\n")
        assert "# TYPE repro_a_total counter" in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_lat_seconds histogram" in text
        # One TYPE line per family, even with multiple labeled series.
        assert text.count("# TYPE repro_a_total") == 1

    def test_empty_registry_renders_empty(self):
        assert render_exposition(MetricsRegistry()) == ""
        assert parse_exposition("") == {}


class TestStrictParser:
    def test_missing_trailing_newline_rejected(self):
        with pytest.raises(ExpositionError, match="newline"):
            parse_exposition("# TYPE a counter\na 1")

    def test_sample_without_type_rejected(self):
        with pytest.raises(ExpositionError, match="no TYPE"):
            parse_exposition("orphan 1\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ExpositionError, match="bad TYPE"):
            parse_exposition("# TYPE a exotic\na 1\n")

    def test_malformed_label_rejected(self):
        with pytest.raises(ExpositionError, match="malformed label"):
            parse_exposition('# TYPE a counter\na{k=unquoted} 1\n')

    def test_duplicate_series_rejected(self):
        with pytest.raises(ExpositionError, match="duplicate series"):
            parse_exposition("# TYPE a counter\na 1\na 2\n")

    def test_bad_value_rejected(self):
        with pytest.raises(ExpositionError, match="bad sample value"):
            parse_exposition("# TYPE a counter\na one\n")

    def test_infinity_spellings_accepted(self):
        families = parse_exposition("# TYPE a gauge\na +Inf\n")
        assert sample_value(families, "a") == float("inf")


async def http_text(host, port, path):
    """Raw GET returning (status, content-type, body text)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header, _, body = raw.partition(b"\r\n\r\n")
    status = int(header.split()[1])
    content_type = ""
    for line in header.decode().split("\r\n"):
        if line.lower().startswith("content-type:"):
            content_type = line.split(":", 1)[1].strip()
    return status, content_type, body.decode()


class TestGatewayMetricsEndpoint:
    """Scrape a live gateway; /metrics must agree with /stats."""

    def _scenario(self):
        from repro.ids import DeterministicRuleSet, Rule
        from repro.serve import DetectionGateway, SignatureStore

        async def run():
            detector = DeterministicRuleSet(
                "toy", [Rule(1, "union", r"union\s+select")]
            )
            gateway = DetectionGateway(SignatureStore(detector))
            host, port = await gateway.start()
            reader, writer = await asyncio.open_connection(host, port)
            for payload in ("id=1' union select 1", "q=hi", "q=ok"):
                writer.write(payload.encode() + b"\n")
                await writer.drain()
                await reader.readline()
            writer.close()
            await writer.wait_closed()
            stats_status, _, stats_body = await http_text(
                host, port, "/stats"
            )
            metrics_status, content_type, metrics_body = await http_text(
                host, port, "/metrics"
            )
            await gateway.stop()
            return (
                stats_status, json.loads(stats_body),
                metrics_status, content_type, metrics_body,
            )

        return asyncio.run(run())

    def test_metrics_agree_with_stats(self):
        (
            stats_status, stats,
            metrics_status, content_type, body,
        ) = self._scenario()
        assert stats_status == 200 and metrics_status == 200
        assert content_type == CONTENT_TYPE
        families = parse_exposition(body)  # strict: malformed lines raise
        counters = stats["counters"]
        assert sample_value(
            families, "repro_inspected_total"
        ) == counters["inspected"] == 3
        assert sample_value(
            families, "repro_alerted_total"
        ) == counters["alerted"] == 1
        assert sample_value(
            families, "repro_service_seconds_count"
        ) == stats["latency"]["service"]["count"]

    def test_live_gauges_exported(self):
        *_, body = self._scenario()
        families = parse_exposition(body)
        assert sample_value(families, "repro_store_version") == 1.0
        assert sample_value(families, "repro_queue_depth") == 0.0
