"""Tests for span tracing: nesting, determinism, ambient activation."""

import json

from repro.obs.registry import MetricsRegistry
from repro.obs import trace


class TestNesting:
    def test_children_nest_under_parent(self):
        tracer = trace.Tracer()
        with tracer.span("pipeline.run"):
            with tracer.span("phase.crawl"):
                pass
            with tracer.span("phase.features"):
                with tracer.span("features.extract_many"):
                    pass
        assert [r.name for r in tracer.roots] == ["pipeline.run"]
        root = tracer.roots[0]
        assert [c.name for c in root.children] == [
            "phase.crawl", "phase.features",
        ]
        assert root.children[1].children[0].name == "features.extract_many"

    def test_siblings_after_close_are_roots(self):
        tracer = trace.Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_timings_recorded(self):
        tracer = trace.Tracer()
        with tracer.span("work"):
            sum(range(1000))
        span = tracer.roots[0]
        assert span.wall_s >= 0.0
        assert span.cpu_s >= 0.0

    def test_exception_still_closes_span(self):
        tracer = trace.Tracer()
        try:
            with tracer.span("outer"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.roots[0].wall_s >= 0.0
        with tracer.span("after"):
            pass
        # The failed span must have been popped: "after" is a new root.
        assert [r.name for r in tracer.roots] == ["outer", "after"]


class TestAmbient:
    def test_module_span_is_noop_without_tracer(self):
        assert trace.current_tracer() is None
        with trace.span("orphan", n=1) as span:
            span.set(extra=2)
        assert span.attrs == {"n": 1, "extra": 2}

    def test_activate_routes_module_spans(self):
        tracer = trace.Tracer()
        with tracer.activate():
            assert trace.current_tracer() is tracer
            with trace.span("inside"):
                pass
        assert trace.current_tracer() is None
        assert [r.name for r in tracer.roots] == ["inside"]


class TestExport:
    def _traced(self):
        tracer = trace.Tracer()
        with tracer.span("pipeline.run", seed=7):
            with tracer.span("phase.crawl", pages=3):
                pass
        return tracer

    def test_structural_export_is_deterministic(self):
        first = self._traced().to_json(timings=False)
        second = self._traced().to_json(timings=False)
        assert first == second

    def test_export_schema_and_attr_order(self):
        exported = self._traced().export(timings=False)
        assert exported["schema"] == 1
        root = exported["spans"][0]
        assert root["name"] == "pipeline.run"
        assert root["children"][0]["attrs"] == {"pages": 3}

    def test_json_round_trips(self):
        text = self._traced().to_json()
        parsed = json.loads(text)
        assert parsed["spans"][0]["wall_s"] >= 0.0

    def test_phase_summaries_flatten_depth_first(self):
        rows = self._traced().phase_summaries()
        assert [(r["name"], r["depth"]) for r in rows] == [
            ("pipeline.run", 0), ("phase.crawl", 1),
        ]
        assert rows[0]["attrs"] == {"seed": 7}


class TestRegistryFeed:
    def test_spans_feed_histograms(self):
        registry = MetricsRegistry()
        tracer = trace.Tracer(registry=registry)
        with tracer.span("phase.crawl"):
            pass
        histogram = registry.histogram("repro_span_phase_crawl_seconds")
        assert histogram.count == 1
