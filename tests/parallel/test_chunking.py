"""Tests for deterministic chunk planning."""

import pytest

from repro.parallel import assign_round_robin, chunk_spans, plan_chunks


class TestPlanChunks:
    def test_spans_cover_range_exactly_once(self):
        for n in (1, 7, 64, 100, 1000):
            for workers in (1, 2, 4, 8):
                spans = plan_chunks(n, workers)
                covered = [i for start, stop in spans
                           for i in range(start, stop)]
                assert covered == list(range(n))

    def test_explicit_chunk_size(self):
        spans = plan_chunks(10, 4, chunk_size=4)
        assert spans == [(0, 4), (4, 8), (8, 10)]

    def test_empty_batch(self):
        assert plan_chunks(0, 4) == []

    def test_deterministic(self):
        assert plan_chunks(999, 8) == plan_chunks(999, 8)

    def test_tiny_batch_single_chunk(self):
        spans = plan_chunks(3, 8)
        assert spans == [(0, 3)]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            plan_chunks(-1, 2)
        with pytest.raises(ValueError):
            plan_chunks(10, 0)
        with pytest.raises(ValueError):
            plan_chunks(10, 2, chunk_size=0)


class TestChunkSpans:
    def test_materializes_slices(self):
        items = list(range(10))
        spans = plan_chunks(10, 2, chunk_size=4)
        assert chunk_spans(items, spans) == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9]
        ]


class TestAssignRoundRobin:
    def test_every_chunk_assigned_once(self):
        assignment = assign_round_robin(10, 3)
        flat = sorted(i for worker in assignment for i in worker)
        assert flat == list(range(10))

    def test_balanced_within_one(self):
        assignment = assign_round_robin(10, 3)
        sizes = [len(worker) for worker in assignment]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            assign_round_robin(5, 0)
