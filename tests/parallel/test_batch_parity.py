"""Batched / multiprocess matching must agree with the serial engine."""

import numpy as np
import pytest

from repro.core import SignatureSet
from repro.http import HttpRequest, LABEL_ATTACK, LABEL_BENIGN, Trace
from repro.ids import PSigeneDetector, SignatureEngine
from repro.ids.rules import Detection
from repro.parallel import run_batch
from repro.parallel.batch import _with_cached_normalizer


@pytest.fixture(scope="module")
def mixed_trace():
    """Attacks and benign requests interleaved, with repeats (cache food)."""
    attack = [
        "id=1' union select 1,2,3-- -",
        "q=2' and sleep(5)-- -",
        "u=3' or '1'='1",
        "x=4' and extractvalue(1,concat(0x7e,user()))-- -",
    ]
    benign = [
        "course=cs101&term=fall2012",
        "q=select+a+union+rep",
        "page=3&sort=desc",
    ]
    requests = []
    for round_index in range(20):
        for payload in attack:
            requests.append(
                HttpRequest(query=payload, label=LABEL_ATTACK)
            )
        for payload in benign:
            requests.append(
                HttpRequest(query=payload, label=LABEL_BENIGN)
            )
    return Trace(name="mixed", requests=requests)


def _alerts_key(run):
    return [
        (a.request_index, a.detector, a.matched, pytest.approx(a.score))
        for a in run.alerts
    ]


class TestRunBatchParity:
    @pytest.mark.smoke
    def test_two_workers_identical(self, small_signatures, mixed_trace):
        engine = SignatureEngine(PSigeneDetector(small_signatures))
        serial = engine.run(mixed_trace)
        batched = engine.run_batch(mixed_trace, workers=2)
        assert batched.alert_flags.tolist() == serial.alert_flags.tolist()
        assert _alerts_key(batched) == _alerts_key(serial)

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_worker_sweep_identical(
        self, workers, small_signatures, mixed_trace
    ):
        engine = SignatureEngine(PSigeneDetector(small_signatures))
        serial = engine.run(mixed_trace)
        batched = engine.run_batch(
            mixed_trace, workers=workers, chunk_size=13
        )
        assert batched.alert_flags.tolist() == serial.alert_flags.tolist()
        assert _alerts_key(batched) == _alerts_key(serial)

    def test_scores_populated_for_every_request(
        self, small_signatures, mixed_trace
    ):
        detector = PSigeneDetector(small_signatures)
        run = run_batch(detector, mixed_trace, workers=2)
        assert run.scores.shape == (len(mixed_trace),)
        spot = [0, len(mixed_trace) // 2, len(mixed_trace) - 1]
        for index in spot:
            score, _ = small_signatures.evaluate(
                mixed_trace[index].flat_payload()
            )
            assert run.scores[index] == pytest.approx(score)

    def test_cache_disabled_identical(self, small_signatures, mixed_trace):
        detector = PSigeneDetector(small_signatures)
        cached = run_batch(detector, mixed_trace, workers=2)
        uncached = run_batch(
            detector, mixed_trace, workers=2, normalization_cache=0
        )
        assert (
            cached.alert_flags.tolist() == uncached.alert_flags.tolist()
        )
        assert np.allclose(cached.scores, uncached.scores)


class TestEdgeCases:
    def test_empty_trace(self, small_signatures):
        run = run_batch(
            PSigeneDetector(small_signatures),
            Trace(name="empty"),
            workers=4,
        )
        assert run.alert_flags.size == 0
        assert run.alerts == []
        assert run.scores.size == 0

    def test_empty_signature_set(self, mixed_trace):
        run = run_batch(
            PSigeneDetector(SignatureSet([])), mixed_trace, workers=2
        )
        assert not run.alert_flags.any()
        assert run.alerts == []

    def test_invalid_workers_rejected(self, small_signatures, mixed_trace):
        with pytest.raises(ValueError):
            run_batch(
                PSigeneDetector(small_signatures), mixed_trace, workers=0
            )


class _KeywordDetector:
    """A trivial picklable detector with no signature_set attribute."""

    name = "keyword"

    def inspect(self, payload: str) -> Detection:
        hit = "union" in payload.lower()
        return Detection(
            alert=hit, score=1.0 if hit else 0.0,
            matched_sids=[1] if hit else [],
        )


class TestGenericDetectors:
    def test_detector_without_signature_set(self, mixed_trace):
        detector = _KeywordDetector()
        serial = SignatureEngine(detector).run(mixed_trace)
        batched = run_batch(detector, mixed_trace, workers=2)
        assert batched.alert_flags.tolist() == serial.alert_flags.tolist()

    def test_cache_wrapper_leaves_foreign_detectors_alone(self):
        detector = _KeywordDetector()
        assert _with_cached_normalizer(detector, 4096) is detector

    def test_cache_wrapper_does_not_mutate_original(self, small_signatures):
        detector = PSigeneDetector(small_signatures)
        clone = _with_cached_normalizer(detector, 4096)
        assert clone is not detector
        assert detector.signature_set is small_signatures
        assert clone.signature_set.signatures == small_signatures.signatures
