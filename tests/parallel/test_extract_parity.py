"""Parallel feature extraction must be bit-identical to serial extraction."""

import pytest

from repro.corpus.grammar import CorpusGenerator
from repro.features import FeatureCatalog, FeatureExtractor
from repro.parallel import ParallelFeatureExtractor


@pytest.fixture(scope="module")
def payloads():
    """A mixed batch: generated attacks plus benign-looking repeats."""
    samples = CorpusGenerator(seed=7).generate(120)
    return [s.payload for s in samples] + [
        "course=cs101&term=fall2012",
        "q=select+a+course",
    ] * 20


@pytest.fixture(scope="module")
def extractor():
    return FeatureExtractor()


@pytest.fixture(scope="module")
def serial_matrix(extractor, payloads):
    return extractor.extract_many(payloads)


class TestExtractParity:
    @pytest.mark.smoke
    def test_two_workers_identical(self, extractor, payloads, serial_matrix):
        parallel = ParallelFeatureExtractor(
            extractor, workers=2
        ).extract_many(payloads)
        assert parallel.counts.dtype == serial_matrix.counts.dtype
        assert (parallel.counts == serial_matrix.counts).all()
        assert parallel.sample_ids == serial_matrix.sample_ids

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_worker_sweep_identical(
        self, workers, extractor, payloads, serial_matrix
    ):
        parallel = ParallelFeatureExtractor(
            extractor, workers=workers, chunk_size=17
        ).extract_many(payloads)
        assert (parallel.counts == serial_matrix.counts).all()
        assert parallel.sample_ids == serial_matrix.sample_ids

    def test_extractor_workers_kwarg_identical(
        self, extractor, payloads, serial_matrix
    ):
        matrix = extractor.extract_many(payloads, workers=2)
        assert (matrix.counts == serial_matrix.counts).all()

    def test_custom_sample_ids_preserved_in_order(self, extractor, payloads):
        ids = [f"row-{i}" for i in range(len(payloads))]
        matrix = ParallelFeatureExtractor(
            extractor, workers=2
        ).extract_many(payloads, sample_ids=ids)
        assert matrix.sample_ids == ids

    def test_cache_disabled_still_identical(
        self, extractor, payloads, serial_matrix
    ):
        parallel = ParallelFeatureExtractor(
            extractor, workers=2, normalization_cache=0
        ).extract_many(payloads)
        assert (parallel.counts == serial_matrix.counts).all()


class TestEdgeCases:
    def test_empty_batch(self, extractor):
        matrix = ParallelFeatureExtractor(
            extractor, workers=4
        ).extract_many([])
        assert matrix.n_samples == 0
        assert matrix.n_features == len(extractor.catalog)

    def test_empty_catalog(self):
        empty = FeatureExtractor(catalog=FeatureCatalog([]))
        matrix = ParallelFeatureExtractor(empty, workers=2).extract_many(
            ["id=1' union select 1"] * 80
        )
        assert matrix.counts.shape == (80, 0)

    def test_small_batch_stays_in_process(self, extractor):
        # Below MIN_PARALLEL_BATCH the serial path runs; output unchanged.
        parallel = ParallelFeatureExtractor(extractor, workers=4)
        matrix = parallel.extract_many(["id=1", "id=2"])
        assert (
            matrix.counts == extractor.extract_many(["id=1", "id=2"]).counts
        ).all()

    def test_sample_id_mismatch_rejected(self, extractor):
        with pytest.raises(ValueError):
            ParallelFeatureExtractor(extractor, workers=2).extract_many(
                ["id=1", "id=2"], sample_ids=["only-one"]
            )

    def test_invalid_configuration_rejected(self, extractor):
        with pytest.raises(ValueError):
            ParallelFeatureExtractor(extractor, workers=0)
        with pytest.raises(ValueError):
            ParallelFeatureExtractor(extractor, chunk_size=0)
