"""Tests for the LRU cache and the cached normalizer."""

import pickle

import pytest

from repro.normalize import Normalizer
from repro.parallel import CachedNormalizer, LruCache


class TestLruCache:
    def test_put_get(self):
        cache = LruCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_counters(self):
        cache = LruCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_eviction_is_lru(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_clear(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        stats = cache.stats()
        assert (stats.hits, stats.misses, len(cache)) == (0, 0, 0)

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LruCache(maxsize=0)


class TestCachedNormalizer:
    def test_identical_to_plain_normalizer(self):
        plain = Normalizer()
        cached = CachedNormalizer(plain)
        payloads = [
            "id=1%27%20UNION%20SELECT%201",
            "q=hello+world",
            "id=1%27%20UNION%20SELECT%201",  # repeat -> served from cache
        ]
        for payload in payloads:
            assert cached(payload) == plain(payload)

    def test_repeats_hit_the_cache(self):
        cached = CachedNormalizer()
        cached("id=1' union select 1")
        cached("id=1' union select 1")
        stats = cached.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_eviction_bounded_by_maxsize(self):
        cached = CachedNormalizer(maxsize=2)
        for i in range(10):
            cached(f"id={i}")
        assert cached.stats().size == 2

    def test_wrapping_a_cached_normalizer_does_not_stack(self):
        inner = CachedNormalizer()
        outer = CachedNormalizer(inner)
        assert isinstance(outer.normalizer, Normalizer)
        assert not isinstance(outer.normalizer, CachedNormalizer)

    def test_names_delegate(self):
        assert CachedNormalizer().names() == Normalizer().names()

    def test_pickle_drops_entries_keeps_config(self):
        cached = CachedNormalizer(maxsize=77)
        cached("id=1' union select 1")
        clone = pickle.loads(pickle.dumps(cached))
        stats = clone.stats()
        assert (stats.size, stats.hits, stats.misses) == (0, 0, 0)
        assert stats.maxsize == 77
        # ...and the clone still normalizes identically.
        assert clone("a=1%27") == cached("a=1%27")
