"""Tests for the LRU cache and the cached normalizer."""

import pickle

import pytest

from repro.normalize import Normalizer
from repro.parallel import CachedNormalizer, LruCache


class TestLruCache:
    def test_put_get(self):
        cache = LruCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_counters(self):
        cache = LruCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_eviction_is_lru(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_clear(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        stats = cache.stats()
        assert (stats.hits, stats.misses, len(cache)) == (0, 0, 0)

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LruCache(maxsize=-1)

    def test_get_returns_caller_default_on_miss(self):
        cache = LruCache(maxsize=4)
        sentinel = object()
        assert cache.get("absent", sentinel) is sentinel
        assert cache.get("absent", 0) == 0

    def test_falsy_cached_values_are_hits(self):
        # None, "", and 0 are legitimate cached values; a sentinel
        # default must distinguish them from a miss.
        cache = LruCache(maxsize=4)
        sentinel = object()
        for key, value in (("n", None), ("e", ""), ("z", 0)):
            cache.put(key, value)
            assert cache.get(key, sentinel) is not sentinel
            assert cache.get(key, sentinel) == value
        stats = cache.stats()
        assert stats.misses == 0


class TestCachedNormalizer:
    def test_identical_to_plain_normalizer(self):
        plain = Normalizer()
        cached = CachedNormalizer(plain)
        payloads = [
            "id=1%27%20UNION%20SELECT%201",
            "q=hello+world",
            "id=1%27%20UNION%20SELECT%201",  # repeat -> served from cache
        ]
        for payload in payloads:
            assert cached(payload) == plain(payload)

    def test_repeats_hit_the_cache(self):
        cached = CachedNormalizer()
        cached("id=1' union select 1")
        cached("id=1' union select 1")
        stats = cached.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_eviction_bounded_by_maxsize(self):
        cached = CachedNormalizer(maxsize=2)
        for i in range(10):
            cached(f"id={i}")
        assert cached.stats().size == 2

    def test_wrapping_a_cached_normalizer_does_not_stack(self):
        inner = CachedNormalizer()
        outer = CachedNormalizer(inner)
        assert isinstance(outer.normalizer, Normalizer)
        assert not isinstance(outer.normalizer, CachedNormalizer)

    def test_names_delegate(self):
        assert CachedNormalizer().names() == Normalizer().names()

    def test_empty_normalized_form_is_cached(self):
        # A payload normalizing to "" must hit the cache on repeat —
        # with a None-based miss test the falsy result re-normalized
        # (and recounted as a miss) every time.
        cached = CachedNormalizer()
        payload = ""
        assert cached(payload) == Normalizer()(payload)
        cached(payload)
        stats = cached.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_pickle_drops_entries_keeps_config(self):
        cached = CachedNormalizer(maxsize=77)
        cached("id=1' union select 1")
        clone = pickle.loads(pickle.dumps(cached))
        stats = clone.stats()
        assert (stats.size, stats.hits, stats.misses) == (0, 0, 0)
        assert stats.maxsize == 77
        # ...and the clone still normalizes identically.
        assert clone("a=1%27") == cached("a=1%27")


class TestCapacityPressure:
    """LRU boundary cases: capacity 0, capacity 1, repeated keys."""

    def test_capacity_zero_holds_nothing_counts_misses(self):
        cache = LruCache(maxsize=0)
        cache.put("a", 1)
        assert len(cache) == 0 and "a" not in cache
        assert cache.get("a") is None
        assert cache.get("a") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 2, 0)
        assert stats.hit_rate == 0.0

    def test_capacity_zero_normalizer_is_pass_through(self):
        plain = Normalizer()
        cached = CachedNormalizer(maxsize=0)
        payload = "id=1%27%20union%20select%201"
        for _ in range(3):
            assert cached(payload) == plain(payload)
        stats = cached.stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 3, 0)

    def test_capacity_one_keeps_only_newest(self):
        cache = LruCache(maxsize=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" not in cache and cache.get("b") == 2
        cache.put("c", 3)
        assert "b" not in cache and cache.get("c") == 3
        # `in` checks do not touch the counters; only get() does.
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (2, 0, 1)

    def test_capacity_one_repeated_key_never_evicts(self):
        cache = LruCache(maxsize=1)
        cache.put("a", 1)
        for _ in range(5):
            assert cache.get("a") == 1
        assert cache.stats().hits == 5 and len(cache) == 1

    def test_repeated_put_refreshes_recency(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10 and cache.get("c") == 3

    def test_eviction_order_under_sustained_pressure(self):
        cache = LruCache(maxsize=3)
        for i in range(10):
            cache.put(i, i)
        # Only the three most recent survive, oldest-first eviction.
        assert [k for k in (7, 8, 9) if k in cache] == [7, 8, 9]
        assert all(k not in cache for k in range(7))

    def test_hit_miss_counters_under_pressure(self):
        cached = CachedNormalizer(maxsize=1)
        cached("id=1")       # miss
        cached("id=1")       # hit
        cached("id=2")       # miss, evicts id=1
        cached("id=1")       # miss again (was evicted)
        stats = cached.stats()
        assert (stats.hits, stats.misses) == (1, 3)
        assert stats.size == 1 and stats.maxsize == 1
        assert stats.hit_rate == pytest.approx(0.25)
