"""Surface scanner: probe placement and the legacy blind spot.

The simulator's whole point is to produce attack traffic the paper's
query+form extraction cannot see; these tests pin that property rather
than trusting it.
"""

from repro.corpus import VulnerableWebApp
from repro.http import LABEL_ATTACK
from repro.scanners import SURFACE_CHANNELS, SurfaceScanner
from repro.surfaces import DEFAULT_SURFACES, extract_surfaces


def small_app():
    return VulnerableWebApp(seed=7, n_vulnerabilities=4)


class TestScan:
    def test_probe_count_and_labels(self):
        scanner = SurfaceScanner(small_app(), seed=3)
        trace = scanner.scan()
        # One battery (5 probes) per channel per injection point.
        assert len(trace) == 4 * len(SURFACE_CHANNELS) * 5
        assert all(r.label == LABEL_ATTACK for r in trace.requests)

    def test_deterministic(self):
        first = SurfaceScanner(small_app(), seed=3).scan()
        second = SurfaceScanner(small_app(), seed=3).scan()
        assert [r.to_raw() for r in first.requests] == [
            r.to_raw() for r in second.requests
        ]

    def test_every_probe_is_legacy_invisible(self):
        """The flattened query+form payload of every probe is empty —
        a legacy detector literally receives nothing to score."""
        trace = SurfaceScanner(small_app(), seed=3).scan()
        assert all(r.flat_payload() == "" for r in trace.requests)

    def test_every_probe_reaches_a_non_legacy_surface(self):
        trace = SurfaceScanner(small_app(), seed=3).scan()
        for request in trace.requests:
            surfaces = {
                sv.surface.value
                for sv in extract_surfaces(request, DEFAULT_SURFACES)
            }
            assert surfaces & {"json", "cookie", "header", "multipart"}

    def test_all_channels_used(self):
        trace = SurfaceScanner(small_app(), seed=3).scan()
        content_types = {
            r.headers.get("content-type", "") for r in trace.requests
        }
        assert any("json" in ct for ct in content_types)
        assert any("multipart" in ct for ct in content_types)
        assert any("cookie" in r.headers for r in trace.requests)

    def test_probes_drive_the_webapp_feedback_loop(self):
        app = small_app()
        scanner = SurfaceScanner(app, seed=3)
        point = app.points[0]
        response = scanner.send_via(
            "cookie", point.path, point.parameter, "1' OR 1=1-- "
        )
        assert response is not None
