"""Tests for the three scanner simulators."""

import numpy as np
import pytest

from repro.corpus import VulnerableWebApp
from repro.http import LABEL_ATTACK
from repro.scanners import ArachniSimulator, SqlmapSimulator, VegaSimulator


@pytest.fixture(scope="module")
def app():
    return VulnerableWebApp(seed=7)


@pytest.fixture(scope="module")
def sqlmap_trace(app):
    return SqlmapSimulator(app, seed=1).scan()


@pytest.fixture(scope="module")
def arachni_trace(app):
    return ArachniSimulator(app, seed=2).scan()


@pytest.fixture(scope="module")
def vega_trace(app):
    return VegaSimulator(app, seed=3).scan()


class TestTraceSizes:
    def test_sqlmap_over_7200(self, sqlmap_trace):
        # Section III-B: "over 7200 attack samples".
        assert len(sqlmap_trace) > 7200

    def test_arachni_set_near_8578(self, arachni_trace, vega_trace):
        combined = len(arachni_trace) + len(vega_trace)
        assert 8000 <= combined <= 9200

    def test_all_labeled_attack(self, sqlmap_trace):
        assert all(r.label == LABEL_ATTACK for r in sqlmap_trace.requests)


class TestSqlmapTexture:
    def test_boolean_pairs_randomized(self, sqlmap_trace):
        import re
        pairs = set()
        for payload in sqlmap_trace.payloads():
            match = re.search(r"AND%20(\d{4})%3D\1", payload)
            if match:
                pairs.add(match.group(1))
        assert len(pairs) > 20

    def test_union_null_sweeps(self, sqlmap_trace):
        assert any(
            "UNION%20ALL%20SELECT%20NULL" in p
            for p in sqlmap_trace.payloads()
        )

    def test_hex_markers_present(self, sqlmap_trace):
        assert any("0x71" in p for p in sqlmap_trace.payloads())

    def test_order_by_bisection_adapts(self, app):
        """The ORDER BY probes must converge toward the app's true column
        count for at least some points."""
        scanner = SqlmapSimulator(app, seed=9, tamper_fraction=0.0)
        trace = scanner.scan()
        import re
        for point in app.points[:5]:
            probes = [
                int(m.group(1))
                for r in trace.requests
                if r.path == point.path
                for m in [re.search(r"ORDER%20BY%20(\d+)", r.flat_payload())]
                if m
            ]
            assert probes, point.path

    def test_tamper_fraction_zero_means_no_comments(self, app):
        scanner = SqlmapSimulator(app, seed=4, tamper_fraction=0.0)
        trace = scanner.scan()
        assert not any("/**/" in p for p in trace.payloads())

    def test_tamper_fraction_validated(self, app):
        with pytest.raises(ValueError):
            SqlmapSimulator(app, tamper_fraction=1.5)

    def test_tampered_payloads_present_by_default(self, sqlmap_trace):
        payloads = sqlmap_trace.payloads()
        assert any("%2F%2A%2A%2F" in p for p in payloads)  # space2comment


class TestArachniTexture:
    def test_plus_encoded_spaces(self, arachni_trace):
        assert any("+or+" in p for p in arachni_trace.payloads())

    def test_static_battery_repeats_across_points(self, arachni_trace):
        # Arachni sends the same seeds everywhere (modulo the base value).
        breakers = [
            p for p in arachni_trace.payloads() if p.endswith("%27%60--")
        ]
        assert len(breakers) >= 100

    def test_two_injection_variants(self, app):
        trace = ArachniSimulator(app, seed=5).scan()
        point = app.points[0]
        values = [
            r.flat_payload().split("=", 1)[1]
            for r in trace.requests if r.path == point.path
        ]
        bare = [v for v in values if v.startswith("%27%60--")]
        appended = [v for v in values if v.endswith("%27%60--") and v not in bare]
        assert bare and appended


class TestVegaTexture:
    def test_minimal_encoding(self, vega_trace):
        # Vega leaves quotes raw on the wire.
        assert any("'" in p for p in vega_trace.payloads())

    def test_arithmetic_probes(self, vega_trace):
        assert any(p.endswith("-0") for p in vega_trace.payloads())

    def test_distinct_from_other_scanners(
        self, sqlmap_trace, arachni_trace, vega_trace
    ):
        """Three different generation strategies (Section III-B)."""
        overlap = set(vega_trace.payloads()) & set(sqlmap_trace.payloads())
        assert len(overlap) < 0.01 * len(vega_trace)


class TestPostDelivery:
    def test_mix_of_get_and_post(self, sqlmap_trace):
        methods = {r.method for r in sqlmap_trace.requests}
        assert methods == {"GET", "POST"}
        post_share = sum(
            1 for r in sqlmap_trace.requests if r.method == "POST"
        ) / len(sqlmap_trace)
        assert 0.05 < post_share < 0.30

    def test_post_payload_carries_injection(self, sqlmap_trace):
        posts = [r for r in sqlmap_trace.requests if r.method == "POST"]
        assert posts
        for request in posts[:20]:
            assert request.query == ""
            assert request.flat_payload() == request.body
            assert "=" in request.flat_payload()

    def test_post_disabled(self, app):
        scanner = VegaSimulator(app, seed=8, post_fraction=0.0)
        trace = scanner.scan()
        assert all(r.method == "GET" for r in trace.requests)

    def test_invalid_fraction_rejected(self, app):
        with pytest.raises(ValueError):
            VegaSimulator(app, post_fraction=-0.1)


class TestDeterminism:
    def test_same_seed_same_trace(self, app):
        first = SqlmapSimulator(app, seed=6).scan().payloads()
        second = SqlmapSimulator(app, seed=6).scan().payloads()
        assert first == second
