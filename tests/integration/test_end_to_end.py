"""End-to-end integration tests: the full system working together."""

import numpy as np
import pytest

from repro.core import PipelineConfig, PSigenePipeline
from repro.core import signature_set_from_json, signature_set_to_json
from repro.corpus import VulnerableWebApp
from repro.http import Trace
from repro.ids import PSigeneDetector, SignatureEngine
from repro.ids.rulesets import build_bro_ruleset
from repro.learn import confusion_from_alerts
from repro.scanners import SqlmapSimulator


class TestCrawlToSignatures:
    def test_full_pipeline_produces_working_detector(self, small_result):
        """Crawl → features → biclusters → signatures → deployable IDS."""
        detector = PSigeneDetector(small_result.signature_set)
        engine = SignatureEngine(detector)

        app = VulnerableWebApp(seed=99, n_vulnerabilities=8)
        attack_trace = SqlmapSimulator(app, seed=50).scan()
        run = engine.run(attack_trace)
        tpr = run.alert_flags.mean()
        assert tpr > 0.6

    def test_serialized_signatures_deploy_identically(self, small_result):
        """Train → serialize → ship → load → same verdicts."""
        shipped = signature_set_from_json(
            signature_set_to_json(small_result.signature_set)
        )
        app = VulnerableWebApp(seed=98, n_vulnerabilities=4)
        trace = SqlmapSimulator(app, seed=51).scan()
        original_run = SignatureEngine(
            PSigeneDetector(small_result.signature_set)
        ).run(trace)
        shipped_run = SignatureEngine(PSigeneDetector(shipped)).run(trace)
        assert (
            original_run.alert_flags.tolist()
            == shipped_run.alert_flags.tolist()
        )


class TestTrainTestSeparation:
    def test_signatures_generalize_across_generators(self, small_result):
        """Training data comes from the crawled corpus; the test attacks
        come from a scanner with entirely different templates — the
        generalization the paper claims."""
        training_payloads = {s.payload for s in small_result.samples}
        app = VulnerableWebApp(seed=97, n_vulnerabilities=6)
        trace = SqlmapSimulator(app, seed=52).scan()
        test_payloads = set(trace.payloads())
        assert not training_payloads & test_payloads

        detector = PSigeneDetector(small_result.signature_set)
        alerts = [
            detector.inspect(p).alert for p in list(test_payloads)[:400]
        ]
        assert np.mean(alerts) > 0.5


class TestSideBySideDetectors:
    def test_confusion_accounting(self, small_result):
        from repro.corpus import BenignTrafficGenerator

        app = VulnerableWebApp(seed=96, n_vulnerabilities=5)
        attacks = SqlmapSimulator(app, seed=53).scan()
        benign = BenignTrafficGenerator(seed=54).trace(1500)

        for detector in (
            PSigeneDetector(small_result.signature_set),
            build_bro_ruleset(),
        ):
            engine = SignatureEngine(detector)
            attack_run = engine.run(attacks)
            benign_run = engine.run(benign)
            confusion = confusion_from_alerts(
                attack_run.alert_flags, benign_run.alert_flags
            )
            assert confusion.tp + confusion.fn == len(attacks)
            assert confusion.fp + confusion.tn == len(benign)
            assert confusion.tpr > confusion.fpr


class TestIncrementalLoop:
    def test_operate_learn_operate(self, small_pipeline, small_result):
        """The paper's operational loop: deploy, collect fresh attacks,
        retrain Θ, redeploy."""
        from repro.core import incremental_update

        app = VulnerableWebApp(seed=95, n_vulnerabilities=5)
        fresh_trace = SqlmapSimulator(app, seed=55).scan()
        fresh = fresh_trace.payloads()[:150]

        update = incremental_update(small_pipeline, small_result, fresh)
        before = SignatureEngine(
            PSigeneDetector(small_result.signature_set)
        ).run(Trace(name="t", requests=fresh_trace.requests[150:400]))
        after = SignatureEngine(
            PSigeneDetector(update.signature_set)
        ).run(Trace(name="t", requests=fresh_trace.requests[150:400]))
        assert after.alert_flags.mean() >= before.alert_flags.mean() - 0.05
