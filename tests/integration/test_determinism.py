"""Seed determinism: the whole pipeline, run twice, is one artifact.

DESIGN.md §7 promises that every run is a pure function of the seed.
This pins the strongest observable form of that promise: a second
pipeline run with the same configuration yields *byte-identical*
serialized signatures and identical bicluster membership — not merely
similar accuracy.  The golden-corpus workflow (DESIGN.md §13) depends
on this: a recorded snapshot is only reproducible if training is.
"""

import numpy as np

from repro.core import PSigenePipeline, signature_set_to_json


class TestSeedDeterminism:
    def test_rerun_is_byte_identical(self, small_config, small_result):
        rerun = PSigenePipeline(small_config).run()

        # The deployable artifact: byte-for-byte equal JSON.
        assert (
            signature_set_to_json(rerun.signature_set)
            == signature_set_to_json(small_result.signature_set)
        )

        # Bicluster membership: same clusters, same rows, same features.
        assert len(rerun.biclusters) == len(small_result.biclusters)
        for mine, theirs in zip(rerun.biclusters, small_result.biclusters):
            assert mine.index == theirs.index
            assert mine.is_black_hole == theirs.is_black_hole
            assert np.array_equal(mine.sample_indices, theirs.sample_indices)
            assert np.array_equal(
                mine.feature_indices, theirs.feature_indices
            )

        # The corpus the phases consumed: same samples in the same order.
        assert [s.payload for s in rerun.samples] == [
            s.payload for s in small_result.samples
        ]

        # Training-matrix row identity: same sample ids in the same order.
        assert rerun.matrix.sample_ids == small_result.matrix.sample_ids

    def test_different_seed_differs(self, small_config, small_result):
        # The complement: determinism is not constancy.  A different
        # seed must actually change the crawled corpus; otherwise the
        # byte-identity test above proves nothing.  (Phase 1 alone is
        # enough to show it — no need to train a third pipeline.)
        from dataclasses import replace

        other = PSigenePipeline(
            replace(small_config, seed=small_config.seed + 1)
        ).collect_samples()
        assert [s.payload for s in other] != [
            s.payload for s in small_result.samples
        ]
