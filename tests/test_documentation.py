"""Meta-tests: every public item in the library carries documentation."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    if "__main__" not in name
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module_name:
            continue  # re-export; documented at home
        assert item.__doc__, f"{module_name}.{name} lacks a docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_methods_documented(module_name):
    module = importlib.import_module(module_name)
    for class_name, klass in vars(module).items():
        if class_name.startswith("_") or not inspect.isclass(klass):
            continue
        if getattr(klass, "__module__", None) != module_name:
            continue
        for method_name, method in vars(klass).items():
            if method_name.startswith("_"):
                continue
            if not (
                inspect.isfunction(method)
                or isinstance(method, (classmethod, staticmethod, property))
            ):
                continue
            target = (
                method.__func__
                if isinstance(method, (classmethod, staticmethod))
                else method.fget if isinstance(method, property)
                else method
            )
            assert target is None or target.__doc__ or (
                # dataclass-generated members are documented by the class
                method_name in getattr(klass, "__dataclass_fields__", {})
            ), f"{module_name}.{class_name}.{method_name} lacks a docstring"


def test_repo_documents_exist():
    import os

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = os.path.join(root, name)
        assert os.path.exists(path), f"{name} missing"
        assert os.path.getsize(path) > 500, f"{name} is a stub"
