"""Tests for trace persistence."""

import io

import pytest

from repro.http import (
    HttpRequest,
    LABEL_ATTACK,
    LABEL_BENIGN,
    Trace,
    TraceFormatError,
    dump_trace,
    iter_trace,
    load_trace,
    save_trace,
)


@pytest.fixture
def trace():
    return Trace(name="sample", requests=[
        HttpRequest(query="id=1' or 1=1", label=LABEL_ATTACK),
        HttpRequest(
            method="POST",
            host="app.test",
            path="/login",
            headers={"content-type": "application/x-www-form-urlencoded"},
            body="user=admin%27--",
            label=LABEL_ATTACK,
        ),
        HttpRequest(query="q=hello", label=LABEL_BENIGN),
        HttpRequest(),  # all defaults, no label
    ])


class TestRoundtrip:
    def test_file_roundtrip(self, trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "sample"
        assert len(loaded) == len(trace)
        for original, copy in zip(trace, loaded):
            assert copy == original

    def test_payloads_preserved(self, trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        save_trace(trace, path)
        assert load_trace(path).payloads() == trace.payloads()

    def test_streaming_iteration(self, trace):
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        streamed = list(iter_trace(buffer))
        assert streamed == trace.requests

    def test_unicode_payload(self, tmp_path):
        trace = Trace(name="u", requests=[
            HttpRequest(query="q=ｕｎｉｏｎ%20ｓｅｌｅｃｔ")
        ])
        path = str(tmp_path / "u.jsonl")
        save_trace(trace, path)
        assert load_trace(path)[0].query == trace[0].query

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        save_trace(Trace(name="empty"), path)
        assert len(load_trace(path)) == 0


class TestCorruption:
    def test_bad_header(self):
        buffer = io.StringIO("not json\n")
        with pytest.raises(TraceFormatError):
            list(iter_trace(buffer))

    def test_wrong_version(self):
        buffer = io.StringIO('{"format": 99, "name": "x"}\n')
        with pytest.raises(TraceFormatError):
            list(iter_trace(buffer))

    def test_corrupt_record_reports_line(self):
        buffer = io.StringIO(
            '{"format": 1, "name": "x"}\n{"query": "ok"}\n{broken\n'
        )
        with pytest.raises(TraceFormatError) as info:
            list(iter_trace(buffer))
        assert "line 3" in str(info.value)

    def test_load_non_trace_file(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("hello\nworld\n")
        with pytest.raises((TraceFormatError, ValueError)):
            load_trace(str(path))

    def test_blank_lines_tolerated(self):
        buffer = io.StringIO(
            '{"format": 1, "name": "x"}\n\n{"query": "a=1"}\n\n'
        )
        assert len(list(iter_trace(buffer))) == 1
