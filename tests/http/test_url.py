"""Tests for the from-scratch URL codec."""

import pytest

from repro.http.url import encode_query, parse_query, quote, split_url, unquote


class TestUnquote:
    def test_plain_text_unchanged(self):
        assert unquote("hello world") == "hello world"

    def test_single_escape(self):
        assert unquote("%27") == "'"

    def test_uppercase_hex(self):
        assert unquote("%2F") == "/"

    def test_lowercase_hex(self):
        assert unquote("%2f") == "/"

    def test_mixed_content(self):
        assert unquote("a%20b%20c") == "a b c"

    def test_plus_untouched_by_default(self):
        assert unquote("a+b") == "a+b"

    def test_plus_as_space(self):
        assert unquote("a+b", plus_as_space=True) == "a b"

    def test_malformed_escape_passthrough(self):
        assert unquote("100%") == "100%"

    def test_malformed_partial_hex_passthrough(self):
        assert unquote("%2") == "%2"

    def test_non_hex_after_percent(self):
        assert unquote("%zz") == "%zz"

    def test_double_encoding_single_pass(self):
        # One pass only: %2527 -> %27, not the quote.
        assert unquote("%2527") == "%27"

    def test_empty_string(self):
        assert unquote("") == ""

    def test_null_byte_escape(self):
        assert unquote("%00") == "\x00"


class TestQuote:
    def test_unreserved_untouched(self):
        assert quote("abc-XYZ_0.9~") == "abc-XYZ_0.9~"

    def test_space_encoded(self):
        assert quote("a b") == "a%20b"

    def test_quote_char_encoded(self):
        assert quote("'") == "%27"

    def test_roundtrip(self):
        original = "id=1' OR '1'='1 -- &x=2"
        assert unquote(quote(original)) == original

    def test_utf8_multibyte(self):
        assert quote("é") == "%C3%A9"


class TestSplitUrl:
    def test_full_url(self):
        assert split_url("http://example.com/a/b?q=1") == (
            "example.com", "/a/b", "q=1"
        )

    def test_no_scheme(self):
        assert split_url("example.com/x?y=2") == ("example.com", "/x", "y=2")

    def test_no_query(self):
        assert split_url("http://h/p") == ("h", "/p", "")

    def test_no_path(self):
        assert split_url("http://h") == ("h", "/", "")

    def test_port_stripped(self):
        host, _, _ = split_url("http://example.com:8080/x")
        assert host == "example.com"

    def test_fragment_dropped(self):
        assert split_url("http://h/p?q=1#frag") == ("h", "/p", "q=1")

    def test_question_mark_in_query_preserved(self):
        _, _, query = split_url("http://h/p?a=b?c")
        assert query == "b?c".join(["a=", ""]) or query == "a=b?c"


class TestParseQuery:
    def test_simple_pairs(self):
        assert parse_query("a=1&b=2") == [("a", "1"), ("b", "2")]

    def test_empty_query(self):
        assert parse_query("") == []

    def test_bare_token(self):
        assert parse_query("justakey") == [("justakey", "")]

    def test_value_with_equals(self):
        assert parse_query("a=1=2") == [("a", "1=2")]

    def test_empty_chunks_skipped(self):
        assert parse_query("a=1&&b=2") == [("a", "1"), ("b", "2")]

    def test_order_preserved(self):
        pairs = parse_query("z=1&a=2&m=3")
        assert [name for name, _ in pairs] == ["z", "a", "m"]

    def test_attack_payload_not_decoded(self):
        pairs = parse_query("id=1%27+or+1%3D1")
        assert pairs == [("id", "1%27+or+1%3D1")]


class TestEncodeQuery:
    def test_roundtrip(self):
        pairs = [("a", "1"), ("b", "x y")]
        assert parse_query(encode_query(pairs)) == pairs

    def test_empty(self):
        assert encode_query([]) == ""


@pytest.mark.parametrize("payload", [
    "id=1' union select 1,2,3-- -",
    "%25%32%37",
    "a=%u0027",
    "%%%%",
])
def test_unquote_never_raises(payload):
    unquote(payload)
    unquote(payload, plus_as_space=True)
