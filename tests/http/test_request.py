"""Tests for the HttpRequest model and raw parsing."""

import pytest

from repro.http import HttpRequest, RequestParseError


class TestPayloadExtraction:
    def test_query_only(self):
        request = HttpRequest(query="id=1")
        assert request.flat_payload() == "id=1"

    def test_no_query(self):
        assert HttpRequest().flat_payload() == ""

    def test_form_body_appended(self):
        request = HttpRequest(
            method="POST",
            query="a=1",
            headers={"content-type": "application/x-www-form-urlencoded"},
            body="b=2",
        )
        assert request.flat_payload() == "a=1&b=2"

    def test_form_body_alone(self):
        request = HttpRequest(
            method="POST",
            headers={"content-type": "application/x-www-form-urlencoded"},
            body="user=admin%27--",
        )
        assert request.flat_payload() == "user=admin%27--"

    def test_json_body_not_in_payload(self):
        request = HttpRequest(
            method="POST",
            query="q=1",
            headers={"content-type": "application/json"},
            body='{"a": 1}',
        )
        assert request.flat_payload() == "q=1"

    def test_bare_post_body_counts_as_form(self):
        request = HttpRequest(method="POST", body="x=1")
        assert request.flat_payload() == "x=1"

    def test_paper_extraction_rule_drops_host_and_path(self):
        # "leaving out the HTTP address, the port, and the path"
        request = HttpRequest.from_url(
            "http://victim.example:8080/products.php?id=1%27"
        )
        assert request.flat_payload() == "id=1%27"
        assert request.host == "victim.example"
        assert request.path == "/products.php"


class TestPayloadDeprecationShim:
    """payload() is a shim over surfaces(); legacy bytes are pinned."""

    CASES = (
        HttpRequest(query="id=1"),
        HttpRequest(),
        HttpRequest(
            method="POST",
            query="a=1",
            headers={"content-type": "application/x-www-form-urlencoded"},
            body="b=2",
        ),
        HttpRequest(
            method="POST",
            headers={"content-type": "application/x-www-form-urlencoded"},
            body="user=admin%27--",
        ),
        HttpRequest(
            method="POST",
            query="q=1",
            headers={"content-type": "application/json"},
            body='{"a": 1}',
        ),
        HttpRequest(method="POST", body="x=1"),
        HttpRequest(method="GET", body="x=1"),  # GET body, no ctype
        HttpRequest(query="id=1%27+OR+1%3D1"),
    )

    def test_payload_warns(self):
        with pytest.warns(DeprecationWarning, match="flat_payload"):
            HttpRequest(query="id=1").payload()

    @pytest.mark.parametrize("request_", CASES)
    def test_byte_identical_to_legacy(self, request_):
        """The shim's output must never shift a verdict: for every edge
        shape it returns exactly the historical flattening."""
        with pytest.warns(DeprecationWarning):
            via_shim = request_.payload()
        assert via_shim == request_.flat_payload()

    @pytest.mark.parametrize("request_", CASES)
    def test_shim_is_surfaces_joined_legacy_order(self, request_):
        from repro.surfaces import LEGACY_SURFACES

        joined = "&".join(
            sv.value
            for sv in request_.surfaces(LEGACY_SURFACES)
            if sv.value
        )
        with pytest.warns(DeprecationWarning):
            assert request_.payload() == joined


class TestParameters:
    def test_ordered_pairs(self):
        request = HttpRequest(query="b=2&a=1")
        assert request.parameters() == [("b", "2"), ("a", "1")]

    def test_encoded_values_kept_raw(self):
        request = HttpRequest(query="id=1%27")
        assert request.parameters() == [("id", "1%27")]


class TestFromUrl:
    def test_label_attached(self):
        request = HttpRequest.from_url("http://h/p?x=1", label="attack")
        assert request.label == "attack"

    def test_method_uppercased(self):
        request = HttpRequest.from_url("http://h/p", method="post")
        assert request.method == "POST"


class TestRawParsing:
    RAW = (
        "GET /view.php?id=1%27+OR+1%3D1 HTTP/1.1\r\n"
        "Host: victim.example\r\n"
        "User-Agent: test\r\n"
        "\r\n"
    )

    def test_parse_request_line(self):
        request = HttpRequest.parse(self.RAW)
        assert request.method == "GET"
        assert request.path == "/view.php"
        assert request.query == "id=1%27+OR+1%3D1"

    def test_host_from_header(self):
        request = HttpRequest.parse(self.RAW)
        assert request.host == "victim.example"

    def test_headers_lowercased(self):
        request = HttpRequest.parse(self.RAW)
        assert request.headers["user-agent"] == "test"

    def test_post_with_body(self):
        raw = (
            "POST /login HTTP/1.1\n"
            "Host: h\n"
            "Content-Type: application/x-www-form-urlencoded\n"
            "\n"
            "user=admin&pass=x%27--"
        )
        request = HttpRequest.parse(raw)
        assert request.body == "user=admin&pass=x%27--"
        assert "pass=x%27--" in request.flat_payload()

    def test_malformed_request_line_raises(self):
        with pytest.raises(RequestParseError):
            HttpRequest.parse("GARBAGE\r\n\r\n")

    def test_malformed_header_raises(self):
        with pytest.raises(RequestParseError):
            HttpRequest.parse("GET / HTTP/1.1\nBadHeaderNoColon\n\n")

    def test_roundtrip_through_to_raw(self):
        request = HttpRequest.parse(self.RAW)
        reparsed = HttpRequest.parse(request.to_raw())
        assert reparsed.method == request.method
        assert reparsed.query == request.query
        assert reparsed.host == request.host


class TestUrlAssembly:
    def test_url_with_query(self):
        request = HttpRequest(host="h", path="/p", query="a=1")
        assert request.url() == "h/p?a=1"

    def test_url_without_query(self):
        request = HttpRequest(host="h", path="/p")
        assert request.url() == "h/p"

    def test_frozen(self):
        request = HttpRequest()
        with pytest.raises(AttributeError):
            request.method = "POST"
