"""Tests for traffic traces."""

import pytest

from repro.http import LABEL_ATTACK, LABEL_BENIGN, HttpRequest, Trace


def _request(query, label):
    return HttpRequest(query=query, label=label)


@pytest.fixture
def mixed_trace():
    trace = Trace(name="mixed")
    trace.append(_request("id=1'", LABEL_ATTACK))
    trace.append(_request("q=hello", LABEL_BENIGN))
    trace.append(_request("id=2'", LABEL_ATTACK))
    return trace


class TestTraceBasics:
    def test_len(self, mixed_trace):
        assert len(mixed_trace) == 3

    def test_iteration_order(self, mixed_trace):
        payloads = [r.flat_payload() for r in mixed_trace]
        assert payloads == ["id=1'", "q=hello", "id=2'"]

    def test_indexing(self, mixed_trace):
        assert mixed_trace[1].flat_payload() == "q=hello"

    def test_extend(self):
        trace = Trace(name="t")
        trace.extend([_request("a=1", LABEL_BENIGN)] * 4)
        assert len(trace) == 4

    def test_payloads(self, mixed_trace):
        assert mixed_trace.payloads() == ["id=1'", "q=hello", "id=2'"]


class TestLabelFiltering:
    def test_attacks(self, mixed_trace):
        assert len(mixed_trace.attacks()) == 2

    def test_benign(self, mixed_trace):
        assert len(mixed_trace.benign()) == 1

    def test_filter_names(self, mixed_trace):
        assert mixed_trace.attacks().name == "mixed:attacks"


class TestMerge:
    def test_merged_order(self, mixed_trace):
        other = Trace(name="o", requests=[_request("z=9", LABEL_BENIGN)])
        merged = mixed_trace.merged(other)
        assert len(merged) == 4
        assert merged[3].flat_payload() == "z=9"

    def test_merged_name(self, mixed_trace):
        other = Trace(name="o")
        assert mixed_trace.merged(other).name == "mixed+o"

    def test_merged_custom_name(self, mixed_trace):
        merged = mixed_trace.merged(Trace(name="o"), name="custom")
        assert merged.name == "custom"

    def test_merge_does_not_mutate(self, mixed_trace):
        before = len(mixed_trace)
        mixed_trace.merged(Trace(name="o", requests=[_request("x=1", None)]))
        assert len(mixed_trace) == before


class TestSubsample:
    def test_size(self):
        trace = Trace(
            name="t",
            requests=[_request(f"i={i}", LABEL_ATTACK) for i in range(100)],
        )
        assert len(trace.subsample(0.2, seed=1)) == 20

    def test_deterministic(self):
        trace = Trace(
            name="t",
            requests=[_request(f"i={i}", LABEL_ATTACK) for i in range(50)],
        )
        first = trace.subsample(0.5, seed=7).payloads()
        second = trace.subsample(0.5, seed=7).payloads()
        assert first == second

    def test_different_seeds_differ(self):
        trace = Trace(
            name="t",
            requests=[_request(f"i={i}", LABEL_ATTACK) for i in range(200)],
        )
        assert (
            trace.subsample(0.5, seed=1).payloads()
            != trace.subsample(0.5, seed=2).payloads()
        )

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            Trace(name="t").subsample(1.5)

    def test_zero_fraction(self):
        trace = Trace(name="t", requests=[_request("a=1", None)])
        assert len(trace.subsample(0.0)) == 0
