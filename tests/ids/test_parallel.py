"""Tests for cluster-mode parallel signature matching."""

import numpy as np
import pytest

from repro.http import HttpRequest, LABEL_ATTACK, Trace
from repro.ids import ClusterModeEngine, PSigeneDetector, SignatureEngine


@pytest.fixture(scope="module")
def attack_trace():
    payloads = [
        "id=1' union select 1,2,3-- -",
        "q=2' and sleep(5)-- -",
        "u=3' or '1'='1",
        "x=4' and extractvalue(1,concat(0x7e,user()))-- -",
    ] * 10
    return Trace(
        name="t",
        requests=[HttpRequest(query=p, label=LABEL_ATTACK)
                  for p in payloads],
    )


class TestClusterMode:
    def test_verdicts_match_serial_engine(self, small_signatures,
                                          attack_trace):
        serial = SignatureEngine(
            PSigeneDetector(small_signatures)
        ).run(attack_trace)
        parallel = ClusterModeEngine(
            small_signatures, workers=3
        ).run(attack_trace)
        assert (
            parallel.alert_flags.tolist() == serial.alert_flags.tolist()
        )

    def test_speedup_with_multiple_workers(self, small_signatures,
                                           attack_trace):
        run = ClusterModeEngine(small_signatures, workers=4).run(
            attack_trace
        )
        # Critical path must beat serial when signatures spread over
        # several workers (timing noise allows a small slack).
        assert run.speedup > 1.2

    def test_single_worker_no_speedup(self, small_signatures,
                                      attack_trace):
        run = ClusterModeEngine(small_signatures, workers=1).run(
            attack_trace
        )
        assert run.speedup == pytest.approx(1.0, abs=0.01)

    def test_workers_capped_at_signature_count(self, small_signatures,
                                               attack_trace):
        run = ClusterModeEngine(
            small_signatures, workers=100
        ).run(attack_trace)
        assert run.workers == len(small_signatures)
        assert all(size == 1 for size in run.shard_sizes)

    def test_all_signatures_assigned_once(self, small_signatures,
                                          attack_trace):
        run = ClusterModeEngine(small_signatures, workers=3).run(
            attack_trace
        )
        assert sum(run.shard_sizes) == len(small_signatures)

    def test_invalid_workers_rejected(self, small_signatures):
        with pytest.raises(ValueError):
            ClusterModeEngine(small_signatures, workers=0)

    def test_empty_trace(self, small_signatures):
        run = ClusterModeEngine(small_signatures, workers=2).run(
            Trace(name="empty")
        )
        assert run.alert_flags.size == 0
        assert run.speedup == 1.0
