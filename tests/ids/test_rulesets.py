"""Tests for the four re-implemented rulesets (Table IV properties)."""

import pytest

from repro.ids.rulesets import (
    ET_RULE_COUNT,
    build_bro_ruleset,
    build_merged_snort_et_ruleset,
    build_modsec_ruleset,
    build_snort_ruleset,
    generate_et_rules,
)


@pytest.fixture(scope="module")
def bro():
    return build_bro_ruleset()


@pytest.fixture(scope="module")
def snort():
    return build_snort_ruleset()


@pytest.fixture(scope="module")
def modsec():
    return build_modsec_ruleset()


@pytest.fixture(scope="module")
def merged():
    return build_merged_snort_et_ruleset()


class TestTable4Statistics:
    def test_bro_six_rules_all_enabled_all_regex(self, bro):
        assert bro.total_rules == 6
        assert bro.enabled_fraction == 1.0
        assert bro.regex_fraction == 1.0

    def test_snort_79_rules_61pct_enabled(self, snort):
        assert snort.total_rules == 79
        assert snort.enabled_fraction == pytest.approx(0.61, abs=0.01)
        assert snort.regex_fraction == pytest.approx(0.82, abs=0.03)

    def test_et_4231_rules_none_enabled(self):
        rules = generate_et_rules()
        assert len(rules) == ET_RULE_COUNT == 4231
        assert not any(r.enabled for r in rules)
        regex_fraction = sum(r.uses_regex for r in rules) / len(rules)
        assert regex_fraction == pytest.approx(0.99, abs=0.005)

    def test_modsec_34_rules_all_enabled(self, modsec):
        assert modsec.total_rules == 34
        assert modsec.enabled_fraction == 1.0
        assert modsec.regex_fraction == 1.0

    def test_pattern_length_ordering(self, bro, snort, modsec):
        # Paper: Bro's patterns are by far the longest, Snort's shortest.
        assert (
            bro.average_pattern_length()
            > modsec.average_pattern_length()
            > snort.average_pattern_length()
        )

    def test_et_sids_unique(self):
        sids = [r.sid for r in generate_et_rules()]
        assert len(sids) == len(set(sids))

    def test_snort_near_duplicate_pair_present(self, snort):
        # The paper's 19439/19440 observation.
        by_sid = {r.sid: r.pattern for r in snort.rules}
        a, b = by_sid[19439], by_sid[19440]
        assert a != b
        assert a[:-2] == b[:-2]


ATTACKS_ALL_CATCH = [
    "id=1' union select 1,2,3-- -",
    "id=1' or 1=1-- -",
    "cat=5'; drop table users-- -",
    "q=1' and sleep(9)-- -",
]

BENIGN_NONE_CATCH = [
    "course=cs101&term=fall2012",
    "q=campus%20shuttle%20schedule&page=2",
    "invoice=123456&amount=50.00",
    "isbn=9781234567890&format=pdf",
]


class TestDetectionBehaviour:
    @pytest.mark.parametrize("payload", ATTACKS_ALL_CATCH)
    def test_canonical_attacks_caught_by_all(
        self, bro, merged, modsec, payload
    ):
        for ruleset in (bro, merged, modsec):
            assert ruleset.inspect(payload).alert, (ruleset.name, payload)

    @pytest.mark.parametrize("payload", BENIGN_NONE_CATCH)
    def test_plain_benign_caught_by_none(
        self, bro, merged, modsec, payload
    ):
        for ruleset in (bro, merged, modsec):
            assert not ruleset.inspect(payload).alert, (
                ruleset.name, payload
            )

    def test_bro_never_fires_on_sql_vocabulary_search(self, bro):
        # Bro's conservatism: quote-less SQL words are not enough.
        benign = [
            "q=select+topics+in+machine+learning",
            "q=student+union+hours",
            "q=1%3D1+boolean+logic+homework",
            "q=tickets+order+by+10+june",
        ]
        for payload in benign:
            assert not bro.inspect(payload).alert, payload

    def test_snort_fires_on_naive_matches(self, merged):
        # The paper's FPR story: Snort's simple patterns hit benign text.
        assert merged.inspect("q=1%3D1+boolean+logic+homework").alert

    def test_modsec_weak_indicators_insufficient(self, modsec):
        # One weight-2 indicator cannot cross the threshold of 5.
        assert not modsec.inspect("name=alice+o%27connor&id=12345").alert

    def test_modsec_combination_alerts(self, modsec):
        assert modsec.inspect(
            "q=select+suggested+readings+from+the+syllabus"
        ).alert

    def test_encoding_evasion_beats_single_decode(self, bro, merged, modsec):
        evaded = "id=1%2527/**/union/**/select/**/1,2--/**/-"
        assert not bro.inspect(evaded).alert
        assert not merged.inspect(evaded).alert
        assert modsec.inspect(evaded).alert

    def test_plus_spaces_visible_after_widened_ws(self, bro, merged):
        payload = "id=1%27+union+select+1,2--+-"
        assert bro.inspect(payload).alert
        assert merged.inspect(payload).alert

    def test_merged_set_includes_et_population(self, merged):
        assert merged.total_rules == 79 + 4231
