"""Tests for Snort .rules rendering and parsing."""

import pytest

from repro.ids.rules import Rule
from repro.ids.snortlang import (
    RulesParseError,
    parse_rules_file,
    render_rules_file,
    ruleset_from_rules_file,
)


class TestRendering:
    def test_regex_rule_renders_pcre(self):
        text = render_rules_file([Rule(1, "u", r"union\s+select")])
        assert 'pcre:"/union\\s+select/i"' in text
        assert "sid:1;" in text

    def test_literal_content_fast_path(self):
        text = render_rules_file(
            [Rule(2, "info", r"information_schema")]
        )
        assert 'content:"information_schema"' in text

    def test_content_rule_no_pcre(self):
        text = render_rules_file(
            [Rule(3, "c", "xp_cmdshell", uses_regex=False)]
        )
        assert "pcre" not in text
        assert 'content:"xp_cmdshell"' in text

    def test_disabled_rule_commented(self):
        text = render_rules_file([Rule(4, "off", "x", enabled=False)])
        assert text.startswith("# alert")


class TestParsing:
    def test_roundtrip_preserves_semantics(self):
        original = [
            Rule(19401, "sql union select", r"union\s+select"),
            Rule(19402, "content rule", "xp_cmdshell", uses_regex=False),
            Rule(19403, "disabled", r"\bselect\b", enabled=False),
        ]
        reloaded = parse_rules_file(render_rules_file(original))
        assert [r.sid for r in reloaded] == [19401, 19402, 19403]
        assert reloaded[0].pattern == r"union\s+select"
        assert reloaded[0].uses_regex
        assert not reloaded[1].uses_regex
        assert not reloaded[2].enabled

    def test_slash_escaping_roundtrip(self):
        original = [Rule(5, "s", r"a/b\s*c")]
        reloaded = parse_rules_file(render_rules_file(original))
        assert reloaded[0].pattern == r"a/b\s*c"

    def test_full_snort_ruleset_roundtrips(self):
        from repro.ids.rulesets.snort import SNORT_RULES

        reloaded = ruleset_from_rules_file(
            render_rules_file(SNORT_RULES), url_decode_only=True
        )
        assert reloaded.total_rules == len(SNORT_RULES)
        assert reloaded.enabled_fraction == pytest.approx(
            sum(r.enabled for r in SNORT_RULES) / len(SNORT_RULES)
        )
        attack = "id=1%27 union select 1,2--%20-"
        from repro.ids.rulesets import build_snort_ruleset

        assert (
            reloaded.inspect(attack).alert
            == build_snort_ruleset().inspect(attack).alert
        )

    def test_plain_comment_skipped(self):
        rules = parse_rules_file("# just a note, no alert here? no.\n")
        assert rules == []

    def test_garbage_line_raises(self):
        with pytest.raises(RulesParseError):
            parse_rules_file("drop everything\n")

    def test_rule_without_sid_raises(self):
        with pytest.raises(RulesParseError):
            parse_rules_file(
                'alert tcp a any -> b any (msg:"m"; pcre:"/x/";)'
            )

    def test_rule_without_detection_raises(self):
        with pytest.raises(RulesParseError):
            parse_rules_file(
                'alert tcp a any -> b any (msg:"m"; sid:7;)'
            )

    def test_msg_with_semicolon_like_content(self):
        text = (
            'alert tcp a any -> b any '
            '(msg:"semi; colon"; pcre:"/x/i"; sid:8;)'
        )
        rules = parse_rules_file(text)
        assert rules[0].name == "semi; colon"
