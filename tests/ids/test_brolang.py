"""Tests for the miniature Bro signature language and policy layer."""

import pytest

from repro.ids.brolang import (
    BroPolicyLayer,
    BroSignature,
    SigParseError,
    parse_sig_file,
    render_sig_file,
    ruleset_from_sig_file,
)
from repro.ids.rules import Rule

SIG_FILE = """
# SQLi signatures
signature sqli-union {
    http-request /union\\s+select/
    event "union select injection"
}

signature sqli-quote-or {
    http-request /'\\s*or\\s/
    event "quote-or tautology"
}
"""


class TestParsing:
    def test_two_blocks(self):
        signatures = parse_sig_file(SIG_FILE)
        assert len(signatures) == 2
        assert signatures[0].sig_id == "sqli-union"
        assert signatures[0].pattern == r"union\s+select"
        assert signatures[0].event == "union select injection"

    def test_escaped_slash_in_regex(self):
        text = 'signature s {\n http-request /a\\/b/\n event "e"\n}\n'
        parsed = parse_sig_file(text)
        assert parsed[0].pattern == r"a\/b"

    def test_comments_and_blanks_ignored(self):
        assert parse_sig_file("# nothing\n\n") == []

    def test_missing_event_defaults_to_id(self):
        text = "signature s1 {\n http-request /x/\n}\n"
        assert parse_sig_file(text)[0].event == "s1"

    @pytest.mark.parametrize("bad", [
        "signature s {\n http-request /x/\n",          # unterminated
        "signature s\n",                               # missing brace
        "http-request /x/\n",                          # outside block
        "signature s {\n http-request x\n}\n",        # unopened regex
        "signature s {\n http-request /x\n}\n",       # unterminated regex
        "signature s {\n}\n",                          # no condition
        "signature s {\n bogus statement\n}\n",        # unknown statement
        "}\n",                                         # stray brace
        'signature s {\n event unquoted\n}\n',         # bad event
    ])
    def test_malformed_raises_with_line(self, bad):
        with pytest.raises(SigParseError):
            parse_sig_file(bad)


class TestRendering:
    def test_roundtrip(self):
        rules = [
            Rule(1, "union select", r"union\s+select"),
            Rule(2, "slashes", r"a/b"),
        ]
        text = render_sig_file(rules)
        parsed = parse_sig_file(text)
        assert [s.pattern for s in parsed] == [
            r"union\s+select", r"a\/b"
        ]

    def test_disabled_rules_commented(self):
        text = render_sig_file([Rule(9, "off", "x", enabled=False)])
        assert all(
            line.startswith("#") for line in text.splitlines() if line
        )
        assert parse_sig_file(text) == []

    def test_real_bro_ruleset_roundtrips(self):
        from repro.ids.rulesets.bro import BRO_RULES

        text = render_sig_file(BRO_RULES)
        reloaded = ruleset_from_sig_file(text, url_decode_only=True)
        attack = "id=1%27 union select 1,2,3-- -"
        from repro.ids.rulesets import build_bro_ruleset

        original = build_bro_ruleset()
        assert (
            reloaded.inspect(attack).alert
            == original.inspect(attack).alert is True
        )


class TestPolicyLayer:
    def test_native_alerts(self):
        layer = BroPolicyLayer(
            native=ruleset_from_sig_file(SIG_FILE),
        )
        raised = layer.process("id=1 union select 2")
        assert len(raised) == 1
        assert raised[0].origin == "signature"
        assert raised[0].score == 1.0

    def test_psigene_beside_native(self, small_signatures):
        layer = BroPolicyLayer(
            native=ruleset_from_sig_file(SIG_FILE),
            psigene=small_signatures,
        )
        raised = layer.process(
            "id=1' union select 1,2,concat(database(),char(58)),4-- -"
        )
        origins = {alert.origin for alert in raised}
        assert origins == {"signature", "psigene"}
        psigene_alerts = [a for a in raised if a.origin == "psigene"]
        assert all(0 < a.score <= 1 for a in psigene_alerts)
        assert all(a.identifier.startswith("b") for a in psigene_alerts)

    def test_benign_raises_nothing(self, small_signatures):
        layer = BroPolicyLayer(
            native=ruleset_from_sig_file(SIG_FILE),
            psigene=small_signatures,
        )
        assert layer.process("course=cs101&term=fall2012") == []

    def test_alert_log_accumulates(self):
        layer = BroPolicyLayer(native=ruleset_from_sig_file(SIG_FILE))
        layer.process("a=1 union select 2")
        layer.process("b=2' or 1=1")
        assert len(layer.alerts) == 2
