"""Unit tests for the LPT shard balancer behind cluster-mode matching."""

from repro.ids.parallel import _balanced_shards


class TestBalancedShards:
    def test_all_items_assigned_exactly_once(self):
        shards = _balanced_shards([3.0, 1.0, 2.0, 5.0, 4.0], 2)
        flattened = sorted(i for shard in shards for i in shard)
        assert flattened == [0, 1, 2, 3, 4]

    def test_loads_balanced(self):
        costs = [5.0, 4.0, 3.0, 3.0, 2.0, 1.0]
        shards = _balanced_shards(costs, 2)
        loads = [sum(costs[i] for i in shard) for shard in shards]
        # LPT guarantee for 2 machines: within 7/6 of optimum (9 here).
        assert max(loads) <= 9 * 7 / 6 + 1e-9

    def test_heaviest_item_isolated_when_possible(self):
        costs = [100.0, 1.0, 1.0, 1.0]
        shards = _balanced_shards(costs, 2)
        heavy_shard = next(s for s in shards if 0 in s)
        assert heavy_shard == [0]

    def test_more_workers_than_items(self):
        shards = _balanced_shards([1.0, 2.0], 5)
        non_empty = [s for s in shards if s]
        assert len(non_empty) == 2

    def test_single_worker_gets_everything(self):
        shards = _balanced_shards([1.0, 2.0, 3.0], 1)
        assert shards == [[0, 1, 2]]

    def test_equal_costs_spread_evenly(self):
        shards = _balanced_shards([1.0] * 8, 4)
        assert sorted(len(s) for s in shards) == [2, 2, 2, 2]
