"""Tests for the IDS engine."""

import pytest

from repro.http import HttpRequest, LABEL_ATTACK, LABEL_BENIGN, Trace
from repro.ids import (
    DeterministicRuleSet,
    PSigeneDetector,
    Rule,
    SignatureEngine,
)


@pytest.fixture
def trace():
    trace = Trace(name="t")
    trace.append(HttpRequest(query="id=1' union select 1", label=LABEL_ATTACK))
    trace.append(HttpRequest(query="q=hello", label=LABEL_BENIGN))
    trace.append(HttpRequest(query="id=2' union select 2", label=LABEL_ATTACK))
    return trace


@pytest.fixture
def detector():
    return DeterministicRuleSet(
        "toy", [Rule(1, "union", r"union\s+select")]
    )


class TestEngineRun:
    def test_alert_flags_align_with_trace(self, trace, detector):
        run = SignatureEngine(detector).run(trace)
        assert run.alert_flags.tolist() == [True, False, True]

    def test_alert_records(self, trace, detector):
        run = SignatureEngine(detector).run(trace)
        assert run.alert_count == 2
        assert [a.request_index for a in run.alerts] == [0, 2]
        assert all(a.detector == "toy" for a in run.alerts)
        assert all(a.matched == [1] for a in run.alerts)

    def test_no_timing_by_default(self, trace, detector):
        run = SignatureEngine(detector).run(trace)
        assert run.timings.size == 0

    def test_timing_measured(self, trace, detector):
        run = SignatureEngine(detector).run(trace, measure_time=True)
        assert run.timings.shape == (3,)
        assert (run.timings > 0).all()
        low, mean, high = run.timing_summary_us()
        assert low <= mean <= high

    def test_empty_trace(self, detector):
        run = SignatureEngine(detector).run(Trace(name="empty"))
        assert run.alert_count == 0
        assert run.timing_summary_us() == (0.0, 0.0, 0.0)

    def test_inspect_request(self, detector):
        engine = SignatureEngine(detector)
        request = HttpRequest(query="a=1' union select 2")
        assert engine.inspect_request(request).alert


class TestInspectRequest:
    def test_uses_detector_visible_payload(self, detector):
        """inspect_request must see exactly request.flat_payload(): query
        string plus form body, never host or path."""
        engine = SignatureEngine(detector)
        body_attack = HttpRequest(
            method="POST",
            path="/login",
            headers={"content-type": "application/x-www-form-urlencoded"},
            body="user=x' union select 1--",
        )
        assert engine.inspect_request(body_attack).alert
        path_only = HttpRequest(path="/union select/nothing", query="q=1")
        assert not engine.inspect_request(path_only).alert

    def test_combines_query_and_form_body(self, detector):
        engine = SignatureEngine(detector)
        split_attack = HttpRequest(
            method="POST",
            query="a=1' union",
            headers={"content-type": "application/x-www-form-urlencoded"},
            body="b= select 2",
        )
        # Neither half alone matches; payload() joins them with '&'.
        assert not engine.inspect_payload("a=1' union").alert
        assert not engine.inspect_payload("b= select 2").alert
        detection = engine.inspect_request(split_attack)
        assert detection.alert is (
            engine.inspect_payload("a=1' union&b= select 2").alert
        )

    def test_empty_payload(self, detector):
        engine = SignatureEngine(detector)
        detection = engine.inspect_request(HttpRequest())
        assert not detection.alert
        assert detection.score == 0.0

    def test_matches_direct_inspect(self, small_signatures):
        engine = SignatureEngine(PSigeneDetector(small_signatures))
        request = HttpRequest(query="id=1' union select 1,2,3-- -")
        via_request = engine.inspect_request(request)
        via_payload = engine.inspect_payload(request.flat_payload())
        assert via_request.alert == via_payload.alert
        assert via_request.score == via_payload.score
        assert via_request.matched_sids == via_payload.matched_sids


class TestEngineTelemetry:
    def test_single_inspections_feed_counters(self, detector):
        from repro.serve import Telemetry

        telemetry = Telemetry()
        engine = SignatureEngine(detector, telemetry=telemetry)
        engine.inspect_request(HttpRequest(query="a=1' union select 2"))
        engine.inspect_payload("q=hello")
        assert telemetry.counter("inspected") == 2
        assert telemetry.counter("alerted") == 1
        assert telemetry.snapshot()["latency"]["service"]["count"] == 2

    def test_offline_run_feeds_same_schema(self, trace, detector):
        from repro.serve import Telemetry

        telemetry = Telemetry()
        run = SignatureEngine(detector, telemetry=telemetry).run(trace)
        assert telemetry.counter("inspected") == len(trace)
        assert telemetry.counter("alerted") == run.alert_count
        assert telemetry.snapshot()["latency"]["service"]["count"] == len(
            trace
        )

    def test_run_batch_feeds_counters(self, trace, detector):
        from repro.serve import Telemetry

        telemetry = Telemetry()
        run = SignatureEngine(detector, telemetry=telemetry).run_batch(
            trace, workers=1
        )
        assert telemetry.counter("inspected") == len(trace)
        assert telemetry.counter("alerted") == run.alert_count

    def test_no_telemetry_no_overhead_path(self, trace, detector):
        run = SignatureEngine(detector).run(trace)
        assert run.timings.size == 0  # measuring stays opt-in


class TestPSigeneDetector:
    def test_wraps_signature_set(self, small_signatures):
        detector = PSigeneDetector(small_signatures)
        detection = detector.inspect("id=1' union select 1,2,3-- -")
        assert detection.alert
        assert detection.score > 0.5
        assert detection.matched_sids  # bicluster numbers

    def test_benign_no_alert(self, small_signatures):
        detector = PSigeneDetector(small_signatures)
        assert not detector.inspect("course=cs101&term=fall2012").alert

    def test_name_used_in_runs(self, small_signatures, trace):
        detector = PSigeneDetector(small_signatures, name="psigene-9")
        run = SignatureEngine(detector).run(trace)
        assert run.detector == "psigene-9"

    def test_inspect_scores_each_signature_once(self, small_signatures):
        # Regression: inspect() used to call alerts() + score(), each of
        # which normalized the payload and evaluated every signature,
        # doubling per-request work on the hot path.
        calls = {"probability": 0}
        original = type(small_signatures[0]).probability

        class Counting(type(small_signatures[0])):
            def probability(self, normalized_payload):
                calls["probability"] += 1
                return original(self, normalized_payload)

        counted = [
            Counting(
                bicluster_index=s.bicluster_index,
                features=s.features,
                model=s.model,
                threshold=s.threshold,
            )
            for s in small_signatures
        ]
        signature_set = type(small_signatures)(
            counted, normalizer=small_signatures.normalizer
        )
        from repro.match import fused_disabled

        with fused_disabled():
            PSigeneDetector(signature_set).inspect(
                "id=1' union select 1,2,3-- -"
            )
        assert calls["probability"] == len(counted)
        # The fused engine goes further: per-signature probability() is
        # bypassed entirely in favor of the shared count vector.
        calls["probability"] = 0
        PSigeneDetector(signature_set).inspect(
            "id=1' union select 1,2,3-- -"
        )
        assert calls["probability"] == 0
