"""Tests for the IDS engine."""

import pytest

from repro.http import HttpRequest, LABEL_ATTACK, LABEL_BENIGN, Trace
from repro.ids import (
    DeterministicRuleSet,
    PSigeneDetector,
    Rule,
    SignatureEngine,
)


@pytest.fixture
def trace():
    trace = Trace(name="t")
    trace.append(HttpRequest(query="id=1' union select 1", label=LABEL_ATTACK))
    trace.append(HttpRequest(query="q=hello", label=LABEL_BENIGN))
    trace.append(HttpRequest(query="id=2' union select 2", label=LABEL_ATTACK))
    return trace


@pytest.fixture
def detector():
    return DeterministicRuleSet(
        "toy", [Rule(1, "union", r"union\s+select")]
    )


class TestEngineRun:
    def test_alert_flags_align_with_trace(self, trace, detector):
        run = SignatureEngine(detector).run(trace)
        assert run.alert_flags.tolist() == [True, False, True]

    def test_alert_records(self, trace, detector):
        run = SignatureEngine(detector).run(trace)
        assert run.alert_count == 2
        assert [a.request_index for a in run.alerts] == [0, 2]
        assert all(a.detector == "toy" for a in run.alerts)
        assert all(a.matched == [1] for a in run.alerts)

    def test_no_timing_by_default(self, trace, detector):
        run = SignatureEngine(detector).run(trace)
        assert run.timings.size == 0

    def test_timing_measured(self, trace, detector):
        run = SignatureEngine(detector).run(trace, measure_time=True)
        assert run.timings.shape == (3,)
        assert (run.timings > 0).all()
        low, mean, high = run.timing_summary_us()
        assert low <= mean <= high

    def test_empty_trace(self, detector):
        run = SignatureEngine(detector).run(Trace(name="empty"))
        assert run.alert_count == 0
        assert run.timing_summary_us() == (0.0, 0.0, 0.0)

    def test_inspect_request(self, detector):
        engine = SignatureEngine(detector)
        request = HttpRequest(query="a=1' union select 2")
        assert engine.inspect_request(request).alert


class TestPSigeneDetector:
    def test_wraps_signature_set(self, small_signatures):
        detector = PSigeneDetector(small_signatures)
        detection = detector.inspect("id=1' union select 1,2,3-- -")
        assert detection.alert
        assert detection.score > 0.5
        assert detection.matched_sids  # bicluster numbers

    def test_benign_no_alert(self, small_signatures):
        detector = PSigeneDetector(small_signatures)
        assert not detector.inspect("course=cs101&term=fall2012").alert

    def test_name_used_in_runs(self, small_signatures, trace):
        detector = PSigeneDetector(small_signatures, name="psigene-9")
        run = SignatureEngine(detector).run(trace)
        assert run.detector == "psigene-9"

    def test_inspect_scores_each_signature_once(self, small_signatures):
        # Regression: inspect() used to call alerts() + score(), each of
        # which normalized the payload and evaluated every signature,
        # doubling per-request work on the hot path.
        calls = {"probability": 0}
        original = type(small_signatures[0]).probability

        class Counting(type(small_signatures[0])):
            def probability(self, normalized_payload):
                calls["probability"] += 1
                return original(self, normalized_payload)

        counted = [
            Counting(
                bicluster_index=s.bicluster_index,
                features=s.features,
                model=s.model,
                threshold=s.threshold,
            )
            for s in small_signatures
        ]
        signature_set = type(small_signatures)(
            counted, normalizer=small_signatures.normalizer
        )
        PSigeneDetector(signature_set).inspect(
            "id=1' union select 1,2,3-- -"
        )
        assert calls["probability"] == len(counted)
