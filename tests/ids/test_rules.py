"""Tests for rule models and matching semantics."""

import pytest

from repro.ids import DeterministicRuleSet, Rule, ScoringRuleSet


def _rules():
    return [
        Rule(1, "union", r"union\s+select"),
        Rule(2, "quote-or", r"'\s*or\s", weight=3),
        Rule(3, "disabled", r".", enabled=False),
        Rule(4, "comment", r"--", weight=2, uses_regex=False),
    ]


class TestRuleSetStatistics:
    def test_total(self):
        ruleset = DeterministicRuleSet("t", _rules())
        assert ruleset.total_rules == 4

    def test_enabled_fraction(self):
        ruleset = DeterministicRuleSet("t", _rules())
        assert ruleset.enabled_fraction == pytest.approx(0.75)

    def test_regex_fraction(self):
        ruleset = DeterministicRuleSet("t", _rules())
        assert ruleset.regex_fraction == pytest.approx(0.75)

    def test_average_pattern_length(self):
        ruleset = DeterministicRuleSet("t", [Rule(1, "a", "ab"),
                                             Rule(2, "b", "abcd")])
        assert ruleset.average_pattern_length() == 3.0

    def test_empty_ruleset(self):
        ruleset = DeterministicRuleSet("t", [])
        assert ruleset.enabled_fraction == 0.0
        assert ruleset.regex_fraction == 0.0


class TestDeterministicSemantics:
    def test_any_match_alerts(self):
        ruleset = DeterministicRuleSet("t", _rules())
        detection = ruleset.inspect("1 union select 2")
        assert detection.alert
        assert detection.matched_sids == [1]

    def test_no_match_no_alert(self):
        ruleset = DeterministicRuleSet("t", _rules())
        assert not ruleset.inspect("hello world").alert

    def test_disabled_rules_never_fire(self):
        ruleset = DeterministicRuleSet("t", _rules())
        # Rule 3 matches anything but is disabled.
        detection = ruleset.inspect("zzz")
        assert 3 not in detection.matched_sids
        assert not detection.alert

    def test_multiple_matches_listed(self):
        ruleset = DeterministicRuleSet("t", _rules())
        detection = ruleset.inspect("1' or 2 union select 3 -- x")
        assert set(detection.matched_sids) == {1, 2, 4}
        assert detection.score == 3.0


class TestScoringSemantics:
    def test_below_threshold_no_alert(self):
        ruleset = ScoringRuleSet("t", _rules(), threshold=5)
        detection = ruleset.inspect("a -- b")  # weight 2 only
        assert not detection.alert
        assert detection.score == 2.0

    def test_accumulation_crosses_threshold(self):
        ruleset = ScoringRuleSet("t", _rules(), threshold=5)
        detection = ruleset.inspect("1' or 2 -- x")  # 3 + 2
        assert detection.alert
        assert detection.score == 5.0

    def test_threshold_configurable(self):
        loose = ScoringRuleSet("t", _rules(), threshold=2)
        assert loose.inspect("a -- b").alert


class TestInputPreparation:
    def test_full_normalization(self):
        ruleset = ScoringRuleSet(
            "t", [Rule(1, "u", r"union\s+select", weight=5)],
            threshold=5, normalize_input=True,
        )
        assert ruleset.inspect("1%2527/**/UNION/**/SELECT/**/2").alert

    def test_single_decode_only(self):
        ruleset = DeterministicRuleSet(
            "t", [Rule(1, "u", r"union\s+select")],
            url_decode_only=True,
        )
        assert ruleset.inspect("1%27 union%20select 2").alert
        # Double encoding survives a single pass.
        assert not ruleset.inspect("union%2520select").alert
        # '+' is not decoded by the single pass.
        assert not ruleset.inspect("union+select").alert

    def test_raw_matching(self):
        ruleset = DeterministicRuleSet(
            "t", [Rule(1, "u", r"union select")],
        )
        assert not ruleset.inspect("union%20select").alert
        assert ruleset.inspect("union select").alert
