"""Shared fixtures: one small trained pipeline reused across test modules.

Training even a reduced pipeline takes a few seconds, so the expensive
artifacts are session-scoped; tests must treat them as read-only.
"""

import pytest

from repro.conformance import default_training_config
from repro.core import PSigenePipeline


@pytest.fixture(scope="session")
def small_config():
    # The canonical small configuration — shared with `repro conform`'s
    # self-training path so golden corpora recorded from these fixtures
    # are reproducible from the CLI (and vice versa).
    return default_training_config(seed=2012)


@pytest.fixture(scope="session")
def small_pipeline(small_config):
    return PSigenePipeline(small_config)


@pytest.fixture(scope="session")
def small_result(small_pipeline):
    return small_pipeline.run()


@pytest.fixture(scope="session")
def small_signatures(small_result):
    return small_result.signature_set
