"""Shared fixtures: one small trained pipeline reused across test modules.

Training even a reduced pipeline takes a few seconds, so the expensive
artifacts are session-scoped; tests must treat them as read-only.
"""

import pytest

from repro.core import PipelineConfig, PSigenePipeline


@pytest.fixture(scope="session")
def small_config():
    return PipelineConfig(
        seed=2012,
        n_attack_samples=900,
        n_benign_train=2500,
        max_cluster_rows=700,
    )


@pytest.fixture(scope="session")
def small_pipeline(small_config):
    return PSigenePipeline(small_config)


@pytest.fixture(scope="session")
def small_result(small_pipeline):
    return small_pipeline.run()


@pytest.fixture(scope="session")
def small_signatures(small_result):
    return small_result.signature_set
