"""Corpus ledger tests: versioning, dedup, hashes, persistence."""

import json

import pytest

from repro.canary.ledger import (
    CorpusLedger,
    LedgerError,
    batch_digest,
    payload_digest,
)


class TestIngest:
    def test_versions_are_monotonic(self):
        ledger = CorpusLedger()
        a = ledger.ingest(["id=1"], kind="attack", source="t")
        b = ledger.ingest(["q=x"], kind="benign", source="t")
        assert (a.version, b.version) == (1, 2)
        assert ledger.version == 2

    def test_dedup_within_and_across_batches(self):
        ledger = CorpusLedger()
        first = ledger.ingest(
            ["id=1", "id=1", "id=2"], kind="attack", source="t"
        )
        assert (first.offered, first.added, first.duplicates) == (3, 2, 1)
        second = ledger.ingest(
            ["id=2", "id=3"], kind="attack", source="t"
        )
        assert (second.added, second.duplicates) == (1, 1)
        assert ledger.pending("attack") == ["id=1", "id=2", "id=3"]

    def test_kinds_deduplicate_independently(self):
        ledger = CorpusLedger()
        ledger.ingest(["x=1"], kind="attack", source="t")
        batch = ledger.ingest(["x=1"], kind="benign", source="t")
        assert batch.added == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(LedgerError, match="unknown ledger kind"):
            CorpusLedger().ingest(["p"], kind="mystery", source="t")

    def test_empty_batch_rejected(self):
        with pytest.raises(LedgerError, match="empty"):
            CorpusLedger().ingest([], kind="attack", source="t")

    def test_content_hash_is_order_independent(self):
        forward = CorpusLedger().ingest(
            ["a=1", "b=2"], kind="attack", source="t"
        )
        backward = CorpusLedger().ingest(
            ["b=2", "a=1"], kind="attack", source="t"
        )
        assert forward.content_hash == backward.content_hash
        assert forward.content_hash == batch_digest(
            [payload_digest("a=1"), payload_digest("b=2")]
        )


class TestConsumption:
    def test_mark_consumed_clears_pending(self):
        ledger = CorpusLedger()
        ledger.ingest(["id=1"], kind="attack", source="t")
        ledger.ingest(["q=x"], kind="benign", source="t")
        counts = ledger.mark_consumed()
        assert counts == {"attack": 1, "benign": 1}
        assert ledger.pending_counts() == {"attack": 0, "benign": 0}
        assert ledger.consumed_counts == {"attack": 1, "benign": 1}

    def test_pending_accumulates_until_consumed(self):
        ledger = CorpusLedger()
        ledger.ingest(["id=1"], kind="attack", source="t")
        ledger.ingest(["id=2"], kind="attack", source="t")
        assert ledger.pending("attack") == ["id=1", "id=2"]

    def test_pending_returns_a_copy(self):
        ledger = CorpusLedger()
        ledger.ingest(["id=1"], kind="attack", source="t")
        ledger.pending("attack").append("tampered")
        assert ledger.pending("attack") == ["id=1"]


class TestPersistence:
    def test_journal_round_trip(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = CorpusLedger(path=path)
        ledger.ingest(["id=1", "id=2"], kind="attack", source="t")
        ledger.ingest(["q=x"], kind="benign", source="t")
        loaded = CorpusLedger.load(path)
        assert loaded.version == 2
        assert loaded.pending("attack") == ["id=1", "id=2"]
        assert loaded.pending("benign") == ["q=x"]
        assert [b.content_hash for b in loaded.batches] == [
            b.content_hash for b in ledger.batches
        ]

    def test_load_replays_consumption(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = CorpusLedger(path=path)
        ledger.ingest(["id=1"], kind="attack", source="t")
        ledger.mark_consumed()
        ledger.ingest(["id=9"], kind="attack", source="t")
        loaded = CorpusLedger.load(path)
        # Promoted-consumed samples must not resurrect as pending.
        assert loaded.pending("attack") == ["id=9"]
        assert loaded.consumed_counts["attack"] == 1

    def test_load_detects_tampering(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = CorpusLedger(path=path)
        ledger.ingest(["id=1"], kind="attack", source="t")
        lines = open(path).read().splitlines()
        record = json.loads(lines[0])
        record["payloads"] = ["id=1 union select 1"]
        with open(path, "w") as handle:
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(LedgerError, match="content hash mismatch"):
            CorpusLedger.load(path)

    def test_load_detects_version_gap(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = CorpusLedger(path=path)
        ledger.ingest(["id=1"], kind="attack", source="t")
        ledger.ingest(["id=2"], kind="attack", source="t")
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write(lines[1] + "\n")
        with pytest.raises(LedgerError, match="out of order"):
            CorpusLedger.load(path)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text("not json\n")
        with pytest.raises(LedgerError, match="invalid JSON"):
            CorpusLedger.load(str(path))
