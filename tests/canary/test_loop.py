"""Closed-loop tests: complete rounds, transactional promotion, fleet.

The two rounds the issue's acceptance bar names are both here: a clean
round that promotes through the two-phase protocol with zero live-path
divergences, and an injected FPR-budget violation that is rejected with
the incumbent provably unchanged (same verdicts, same store version,
nothing left staged).
"""

import asyncio

import pytest

from repro.canary import (
    CanaryConfig,
    CanaryLoop,
    GatePolicy,
    TrainingState,
    read_history,
)
from repro.conformance import serial_verdicts
from repro.ids import PSigeneDetector
from repro.serve import FleetConfig, FleetSupervisor
from repro.serve.store import SignatureStore

#: Budgets sized for the canonical small training config: generous
#: enough that a legitimate warm refresh promotes, tight enough that
#: the sabotaged candidate cannot.
POLICY = GatePolicy(
    fpr_budget=0.05, tpr_tolerance=0.10, max_churn_fraction=2.0
)

def sabotage_fpr(signature_set):
    """Threshold sabotage: the candidate alerts on essentially
    everything, blowing the FPR budget without touching anything else."""
    return signature_set.with_threshold(0.05)


@pytest.fixture()
def state(small_pipeline, small_result):
    return TrainingState(pipeline=small_pipeline, result=small_result)


@pytest.fixture()
def store(small_signatures):
    return SignatureStore(
        PSigeneDetector(small_signatures), source="canary:test"
    )


def make_loop(state, store, tmp_path, **overrides):
    defaults = dict(
        fresh_attacks=60,
        benign_replay=120,
        seed=5,
        runs_dir=str(tmp_path),
        policy=POLICY,
    )
    defaults.update(overrides)
    return CanaryLoop(state, store, config=CanaryConfig(**defaults))


class TestPromotion:
    def test_clean_round_promotes(self, state, store, tmp_path):
        loop = make_loop(state, store, tmp_path)
        incumbent = state.signature_set
        completed = loop.run_round()
        assert completed.promoted
        assert completed.outcome == "promoted"
        assert completed.decision.reasons == []
        # Zero live-path divergences: staging never perturbed serving.
        assert completed.decision.shadow.divergences == []
        # Two-phase commit: store advanced, nothing left staged.
        assert store.version == completed.generation_before + 1
        assert store.staged_generations() == ()
        # The training state adopted the candidate's result.
        assert state.signature_set is not incumbent
        # Promotion consumed the pending corpus.
        assert loop.ledger.pending_counts() == {"attack": 0, "benign": 0}
        assert sum(loop.ledger.consumed_counts.values()) > 0

    def test_promoted_candidate_serves(self, state, store, tmp_path):
        loop = make_loop(state, store, tmp_path)
        completed = loop.run_round()
        assert completed.promoted
        live = store.current()
        assert live.version == completed.generation_after
        # The live detector IS the candidate: it answers.
        assert live.detector.inspect("id=1' union select 1,2--").alert

    def test_round_recorded_in_history(self, state, store, tmp_path):
        loop = make_loop(state, store, tmp_path)
        loop.run_round()
        rounds = read_history(str(tmp_path))
        assert len(rounds) == 1
        record = rounds[0]
        assert record["outcome"] == "promoted"
        assert record["gate"]["shadow"]["divergences"] == 0
        assert set(record["stage_wall_s"]) == {
            "ingest", "refresh", "shadow", "gate", "promote"
        }

    def test_metrics_counted(self, state, store, tmp_path):
        from repro.obs.registry import get_registry

        registry = get_registry()
        promotions = registry.counter("repro_canary_promotions_total")
        rounds = registry.counter("repro_canary_rounds_total")
        before = (promotions.value, rounds.value)
        make_loop(state, store, tmp_path).run_round()
        assert promotions.value == before[0] + 1
        assert rounds.value == before[1] + 1


class TestRejection:
    def test_injected_fpr_violation_rejected(self, state, store, tmp_path):
        loop = make_loop(state, store, tmp_path)
        incumbent = state.signature_set
        probes = [
            "id=1' union select 1,2--",
            "q=hello world",
            "course=cs101&term=fall2012",
            "",
        ]
        before = serial_verdicts(store.current().detector, probes)
        version_before = store.version
        completed = loop.run_round(sabotage=sabotage_fpr)
        assert not completed.promoted
        assert "fpr_budget" in completed.decision.reasons
        # The incumbent is provably unchanged: same published version,
        # nothing staged, identical verdicts on replayed probes, and
        # the training state still holds the old result.
        assert store.version == version_before
        assert completed.generation_after == version_before
        assert store.staged_generations() == ()
        after = serial_verdicts(store.current().detector, probes)
        assert after == before
        assert state.signature_set is incumbent

    def test_rejection_preserves_pending_corpus(
        self, state, store, tmp_path
    ):
        loop = make_loop(state, store, tmp_path)
        completed = loop.run_round(sabotage=sabotage_fpr)
        assert not completed.promoted
        pending = loop.ledger.pending_counts()
        assert pending["attack"] > 0
        assert pending["benign"] > 0

    def test_rejection_is_a_structured_record(self, state, store, tmp_path):
        loop = make_loop(state, store, tmp_path)
        loop.run_round(sabotage=sabotage_fpr)
        record = read_history(str(tmp_path))[0]
        assert record["outcome"] == "rejected"
        assert record["reasons"] == ["fpr_budget"]
        assert record["generation_before"] == record["generation_after"]
        gate = record["gate"]
        assert gate["promoted"] is False
        assert gate["policy"]["fpr_budget"] == POLICY.fpr_budget
        assert gate["shadow"]["candidate_fpr"] > POLICY.fpr_budget

    def test_reject_then_promote_trains_on_accumulated_corpus(
        self, state, store, tmp_path
    ):
        loop = make_loop(state, store, tmp_path)
        rejected = loop.run_round(sabotage=sabotage_fpr)
        pending_after_reject = loop.ledger.pending_counts()["attack"]
        promoted = loop.run_round()
        assert not rejected.promoted and promoted.promoted
        # The promoting round ingested a second batch and consumed
        # everything observed since the last promotion.
        assert (
            loop.ledger.consumed_counts["attack"] > pending_after_reject
        )
        assert loop.ledger.pending_counts() == {"attack": 0, "benign": 0}

    def test_store_error_during_stage_leaves_incumbent(
        self, state, store, tmp_path
    ):
        """A candidate that cannot even parse dies in staging; the
        incumbent keeps serving and nothing is recorded as promoted."""
        from repro.serve.store import StoreError

        loop = make_loop(state, store, tmp_path)
        version_before = store.version

        class Unserializable:
            def with_threshold(self, _):  # pragma: no cover
                return self

        with pytest.raises((StoreError, AttributeError, TypeError)):
            loop.run_round(sabotage=lambda s: Unserializable())
        assert store.version == version_before
        assert store.staged_generations() == ()


class TestFleetRound:
    @pytest.mark.smoke
    def test_promote_and_reject_against_live_fleet(
        self, state, small_signatures, tmp_path
    ):
        """One promote round and one forced-reject round against a real
        2-shard fleet: the shadow pass rides the shared data port, the
        promotion commits via the atomic two-phase fleet reload, and
        the rejection leaves every shard on the old generation."""

        async def scenario():
            supervisor = FleetSupervisor(
                PSigeneDetector(small_signatures),
                FleetConfig(shards=2, queue_bound=512, workers=2),
                source="canary:test",
            )
            loop = make_loop(
                state, supervisor.store, tmp_path,
                fresh_attacks=40, benign_replay=80,
            )
            await supervisor.start()
            try:
                promoted = await loop.run_round_fleet(supervisor)
                assert promoted.promoted, promoted.decision.reasons
                assert promoted.mode == "fleet"
                assert promoted.decision.shadow.divergences == []
                assert supervisor.version == (
                    promoted.generation_before + 1
                )
                # Every shard answers with the new generation.
                response = await supervisor.inspect("q=probe")
                assert response["version"] == promoted.generation_after

                version_before = supervisor.version
                rejected = await loop.run_round_fleet(
                    supervisor, sabotage=lambda s: s.with_threshold(0.05)
                )
                assert not rejected.promoted
                assert "fpr_budget" in rejected.decision.reasons
                assert supervisor.version == version_before
                assert supervisor.store.staged_generations() == ()
            finally:
                await supervisor.stop()

        asyncio.run(scenario())

    def test_fleet_round_requires_matching_store(
        self, state, store, tmp_path
    ):
        loop = make_loop(state, store, tmp_path)

        class FakeSupervisor:
            store = SignatureStore(
                PSigeneDetector(state.signature_set)
            )

        with pytest.raises(ValueError, match="reference store"):
            asyncio.run(loop.run_round_fleet(FakeSupervisor()))
