"""``repro canary`` CLI tests: exit codes, history, status output."""

import pytest

from repro.__main__ import main
from repro.canary import TrainingState, read_history


@pytest.fixture(autouse=True)
def reuse_session_pipeline(monkeypatch, small_pipeline, small_result):
    """``canary run`` trains the canonical config from scratch; tests
    reuse the session-scoped training instead of paying it per test."""
    monkeypatch.setattr(
        TrainingState,
        "train",
        classmethod(lambda cls, seed=2012: cls(
            pipeline=small_pipeline, result=small_result
        )),
    )


def run_args(tmp_path, *extra):
    return [
        "canary", "run",
        "--fresh", "60", "--benign", "120",
        "--fpr-budget", "0.05", "--tpr-tolerance", "0.10",
        "--max-churn", "2.0",
        "--runs-dir", str(tmp_path),
        *extra,
    ]


class TestCanaryRun:
    def test_promote_round_exits_zero(self, tmp_path, capsys):
        code = main(run_args(tmp_path, "--expect", "promote"))
        out = capsys.readouterr().out
        assert code == 0, out
        assert "PROMOTED" in out
        assert "gen 1 -> 2" in out
        assert "divergences 0" in out

    def test_injected_fpr_round_exits_eight(self, tmp_path, capsys):
        code = main(run_args(
            tmp_path, "--inject-fpr", "--expect", "reject"
        ))
        out = capsys.readouterr().out
        assert code == 8, out
        assert "REJECTED" in out
        assert "fpr_budget" in out

    def test_expect_mismatch_exits_nine(self, tmp_path, capsys):
        code = main(run_args(
            tmp_path, "--inject-fpr", "--expect", "promote"
        ))
        assert code == 9
        assert "expected --expect promote" in capsys.readouterr().out

    def test_round_lands_in_manifest(self, tmp_path):
        main(run_args(tmp_path))
        rounds = read_history(str(tmp_path))
        assert len(rounds) == 1
        assert rounds[0]["outcome"] == "promoted"


class TestCanaryStatusAndHistory:
    def test_status_empty(self, tmp_path, capsys):
        code = main(["canary", "status", "--runs-dir", str(tmp_path)])
        assert code == 0
        assert "no history" in capsys.readouterr().out

    def test_status_summarizes(self, tmp_path, capsys):
        main(run_args(tmp_path))
        main(run_args(tmp_path, "--inject-fpr"))
        capsys.readouterr()
        code = main(["canary", "status", "--runs-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 round(s): 1 promoted, 1 rejected" in out
        assert "fpr_budget" in out

    def test_history_lists_rounds(self, tmp_path, capsys):
        main(run_args(tmp_path))
        main(run_args(tmp_path, "--inject-fpr"))
        capsys.readouterr()
        code = main(["canary", "history", "--runs-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        lines = [
            line for line in out.splitlines()
            if line.startswith("round ")
        ]
        assert len(lines) == 2
        assert "promoted" in lines[0]
        assert "[fpr_budget]" in lines[1]

    def test_history_json(self, tmp_path, capsys):
        import json

        main(run_args(tmp_path))
        capsys.readouterr()
        code = main([
            "canary", "history", "--runs-dir", str(tmp_path), "--json",
        ])
        records = json.loads(capsys.readouterr().out)
        assert code == 0
        assert records[0]["schema"] == 1

    def test_corrupt_manifest_is_a_clean_error(self, tmp_path):
        from repro.canary import history_path
        import os

        path = history_path(str(tmp_path))
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as handle:
            handle.write("{nope\n")
        with pytest.raises(SystemExit, match="invalid JSON"):
            main(["canary", "status", "--runs-dir", str(tmp_path)])
