"""Refresh-stage tests: drift measurement and strategy escalation."""

import pytest

from repro.canary.refresh import (
    measure_drift,
    rebicluster_update,
    refresh_candidate,
)
from repro.eval.drift import drifted_families
from repro.corpus.grammar import CorpusGenerator


def fresh_payloads(count, *, shift, seed=11):
    families = drifted_families(shift=shift, seed=seed)
    generator = CorpusGenerator(seed=seed + 1000, families=families)
    return [s.payload for s in generator.generate(count)]


class TestMeasureDrift:
    def test_training_payloads_are_mostly_in_cluster(
        self, small_pipeline, small_result
    ):
        payloads = [s.payload for s in small_result.samples[:150]]
        signal = measure_drift(small_pipeline, small_result, payloads)
        assert signal.n_samples == 150
        # The training rows were assigned to these clusters with the
        # same geometry; the bulk must land back inside.
        assert signal.out_of_cluster_rate < 0.5
        assert sum(signal.nearest_counts.values()) == (
            signal.n_samples - signal.out_of_cluster
        )

    def test_empty_payloads_report_zero(self, small_pipeline, small_result):
        signal = measure_drift(small_pipeline, small_result, [])
        assert signal.n_samples == 0
        assert signal.out_of_cluster_rate == 0.0

    def test_deterministic(self, small_pipeline, small_result):
        payloads = fresh_payloads(60, shift=3.0)
        first = measure_drift(small_pipeline, small_result, payloads)
        second = measure_drift(small_pipeline, small_result, payloads)
        assert first.out_of_cluster == second.out_of_cluster
        assert first.nearest_counts == second.nearest_counts


class TestRefreshCandidate:
    def test_rejects_unknown_strategy(self, small_pipeline, small_result):
        with pytest.raises(ValueError, match="unknown refresh strategy"):
            refresh_candidate(
                small_pipeline, small_result, ["id=1"], strategy="psychic"
            )

    def test_rejects_empty_pending(self, small_pipeline, small_result):
        with pytest.raises(ValueError, match="pending attack samples"):
            refresh_candidate(small_pipeline, small_result, [])

    def test_auto_stays_warm_under_threshold(
        self, small_pipeline, small_result
    ):
        payloads = fresh_payloads(40, shift=2.0)
        outcome = refresh_candidate(
            small_pipeline, small_result, payloads, drift_threshold=1.1
        )
        # A threshold above any possible rate forces the warm path.
        assert outcome.strategy == "warm"
        assert outcome.newton_iterations > 0
        assert len(outcome.candidate) == len(small_result.signature_set)
        # The warm path never mutates the incumbent result.
        assert outcome.result is not small_result
        assert small_result.signature_set is not outcome.candidate

    def test_auto_escalates_over_threshold(
        self, small_pipeline, small_result
    ):
        payloads = fresh_payloads(40, shift=4.0)
        outcome = refresh_candidate(
            small_pipeline, small_result, payloads, drift_threshold=-1.0
        )
        # A threshold below zero forces escalation regardless of drift.
        assert outcome.strategy == "rebicluster"
        assert len(outcome.result.samples) == (
            len(small_result.samples) + len(payloads)
        )

    def test_warm_candidate_scores_payloads(
        self, small_pipeline, small_result
    ):
        payloads = fresh_payloads(30, shift=2.0)
        outcome = refresh_candidate(
            small_pipeline, small_result, payloads, strategy="warm"
        )
        assert isinstance(outcome.candidate.matches(payloads[0]), bool)


class TestRebiclusterUpdate:
    def test_grows_corpus_and_retrains(self, small_pipeline, small_result):
        payloads = fresh_payloads(30, shift=3.0)
        refreshed = rebicluster_update(
            small_pipeline, small_result, payloads
        )
        assert len(refreshed.samples) == len(small_result.samples) + 30
        assert {s.family for s in refreshed.samples[-30:]} == {"canary"}
        assert len(refreshed.signature_set) > 0
        # A full retrain mints its own catalog and matrix.
        assert refreshed.catalog is not small_result.catalog
        assert refreshed.matrix.n_samples == len(refreshed.samples)
