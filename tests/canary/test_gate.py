"""Gate and history tests: churn accounting, budgets, manifest rules."""

import pytest

from repro.canary.gate import (
    ChurnReport,
    GatePolicy,
    SignatureChurn,
    evaluate_gate,
    signature_churn,
)
from repro.canary.history import (
    HISTORY_SCHEMA,
    HistoryError,
    append_round,
    history_path,
    read_history,
    validate_round,
)
from repro.canary.refresh import refresh_candidate
from repro.canary.shadow import ShadowReport
from repro.conformance.verdict import Divergence


def shadow_report(**overrides):
    defaults = dict(
        mode="store",
        generation=2,
        n_attacks=100,
        n_benign=200,
        incumbent_tpr=0.80,
        candidate_tpr=0.90,
        incumbent_fpr=0.0,
        candidate_fpr=0.0,
        verdict_flips=10,
        divergences=[],
    )
    defaults.update(overrides)
    return ShadowReport(**defaults)


def round_record(**overrides):
    record = {
        "schema": HISTORY_SCHEMA,
        "round": 0,
        "outcome": "promoted",
        "mode": "store",
        "strategy": "warm",
        "generation_before": 1,
        "generation_after": 2,
        "reasons": [],
        "gate": {"promoted": True},
        "stage_wall_s": {"ingest": 0.01},
    }
    record.update(overrides)
    return record


class TestSignatureChurn:
    def test_identical_sets_have_zero_churn(self, small_signatures):
        report = signature_churn(small_signatures, small_signatures)
        assert report.churn_fraction == 0.0
        assert report.n_changed == report.n_added == report.n_removed == 0
        assert all(e.status == "unchanged" for e in report.entries)
        assert all(e.theta_delta == 0.0 for e in report.entries)

    def test_warm_refresh_reports_theta_movement(
        self, small_pipeline, small_result
    ):
        outcome = refresh_candidate(
            small_pipeline,
            small_result,
            [s.payload for s in small_result.samples[:25]],
            strategy="warm",
        )
        report = signature_churn(
            small_result.signature_set, outcome.candidate
        )
        # Warm keeps structure: nothing added or removed, Θ moves.
        assert report.n_added == 0
        assert report.n_removed == 0
        assert report.n_changed > 0
        changed = [e for e in report.entries if e.status == "changed"]
        assert all(e.theta_delta is not None for e in changed)
        assert all(e.theta_delta > 0 for e in changed)

    def test_added_and_removed_accounting(self, small_signatures):
        from repro.core.signature import SignatureSet

        trimmed = SignatureSet(
            list(small_signatures.signatures[:-1]),
            normalizer=small_signatures.normalizer,
        )
        report = signature_churn(small_signatures, trimmed)
        assert report.n_removed == 1
        reverse = signature_churn(trimmed, small_signatures)
        assert reverse.n_added == 1

    def test_empty_incumbent_full_churn(self, small_signatures):
        from repro.core.signature import SignatureSet

        empty = SignatureSet([], normalizer=small_signatures.normalizer)
        report = signature_churn(empty, small_signatures)
        assert report.churn_fraction == 1.0


class TestEvaluateGate:
    def clean_churn(self):
        return ChurnReport(
            entries=[SignatureChurn(1, "unchanged", 0.0, 0.0)],
            incumbent_size=1,
            candidate_size=1,
        )

    def test_promotes_when_all_budgets_clear(self):
        decision = evaluate_gate(shadow_report(), self.clean_churn())
        assert decision.promoted
        assert decision.reasons == []

    def test_fpr_budget_rejection(self):
        decision = evaluate_gate(
            shadow_report(candidate_fpr=0.5), self.clean_churn(),
            GatePolicy(fpr_budget=0.01),
        )
        assert not decision.promoted
        assert decision.reasons == ["fpr_budget"]

    def test_fpr_budget_boundary_is_inclusive(self):
        decision = evaluate_gate(
            shadow_report(candidate_fpr=0.01), self.clean_churn(),
            GatePolicy(fpr_budget=0.01),
        )
        assert decision.promoted

    def test_tpr_regression_rejection(self):
        decision = evaluate_gate(
            shadow_report(incumbent_tpr=0.9, candidate_tpr=0.7),
            self.clean_churn(),
            GatePolicy(tpr_tolerance=0.05),
        )
        assert decision.reasons == ["tpr_regression"]

    def test_tpr_within_tolerance_promotes(self):
        decision = evaluate_gate(
            shadow_report(incumbent_tpr=0.9, candidate_tpr=0.87),
            self.clean_churn(),
            GatePolicy(tpr_tolerance=0.05),
        )
        assert decision.promoted

    def test_conformance_divergence_rejects(self):
        divergence = Divergence(
            baseline="a", path="b", index=0, field="alert",
            expected=True, observed=False, payload="id=1",
        )
        decision = evaluate_gate(
            shadow_report(divergences=[divergence]), self.clean_churn()
        )
        assert "conformance" in decision.reasons

    def test_churn_cap_rejects(self):
        churn = ChurnReport(
            entries=[
                SignatureChurn(1, "changed", 2.0, 0.0),
                SignatureChurn(2, "unchanged", 0.0, 0.0),
            ],
            incumbent_size=2,
            candidate_size=2,
        )
        decision = evaluate_gate(
            shadow_report(), churn, GatePolicy(max_churn_fraction=0.25)
        )
        assert decision.reasons == ["churn"]

    def test_multiple_reasons_all_reported(self):
        decision = evaluate_gate(
            shadow_report(
                candidate_fpr=0.9, incumbent_tpr=0.9, candidate_tpr=0.1
            ),
            self.clean_churn(),
            GatePolicy(fpr_budget=0.01, tpr_tolerance=0.0),
        )
        assert decision.reasons == ["fpr_budget", "tpr_regression"]


class TestHistory:
    def test_append_and_read_round_trip(self, tmp_path):
        runs = str(tmp_path)
        append_round(round_record(), runs_dir=runs)
        append_round(
            round_record(
                round=1, outcome="rejected", reasons=["fpr_budget"],
                generation_after=1,
            ),
            runs_dir=runs,
        )
        rounds = read_history(runs)
        assert [r["outcome"] for r in rounds] == ["promoted", "rejected"]
        assert history_path(runs).endswith("canary/history.jsonl")

    def test_read_missing_manifest_is_empty(self, tmp_path):
        assert read_history(str(tmp_path / "nowhere")) == []

    def test_missing_keys_rejected(self):
        record = round_record()
        del record["gate"]
        with pytest.raises(HistoryError, match="missing keys"):
            validate_round(record)

    def test_unknown_schema_rejected(self):
        with pytest.raises(HistoryError, match="unknown history schema"):
            validate_round(round_record(schema=99))

    def test_rejection_must_name_reasons(self):
        with pytest.raises(HistoryError, match="name its reasons"):
            validate_round(round_record(outcome="rejected", reasons=[]))

    def test_promotion_must_not_carry_reasons(self):
        with pytest.raises(HistoryError, match="must not carry"):
            validate_round(
                round_record(outcome="promoted", reasons=["churn"])
            )

    def test_corrupt_manifest_line_raises(self, tmp_path):
        runs = str(tmp_path)
        append_round(round_record(), runs_dir=runs)
        with open(history_path(runs), "a") as handle:
            handle.write("{broken\n")
        with pytest.raises(HistoryError, match="invalid JSON"):
            read_history(runs)
