"""Tests for admission control: policies, shedding, drain."""

import asyncio

import pytest

from repro.serve import (
    AdmissionController,
    BackpressurePolicy,
    QueueClosed,
    Shed,
    Telemetry,
)


def run(coroutine):
    return asyncio.run(coroutine)


class TestPolicies:
    def test_policy_accepts_strings(self):
        controller = AdmissionController(policy="shed")
        assert controller.policy is BackpressurePolicy.SHED

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_bound=0)

    def test_shed_on_full_queue(self):
        async def scenario():
            telemetry = Telemetry()
            controller = AdmissionController(
                queue_bound=2, policy="shed", telemetry=telemetry
            )
            await controller.submit("a")
            await controller.submit("b")
            with pytest.raises(Shed):
                await controller.submit("c")
            assert telemetry.counter("shed") == 1
            assert controller.depth == 2

        run(scenario())

    def test_block_waits_for_space(self):
        async def scenario():
            controller = AdmissionController(queue_bound=1, policy="block")
            await controller.submit("a")
            waiter = asyncio.ensure_future(controller.submit("b"))
            await asyncio.sleep(0)
            assert not waiter.done()  # blocked on the full queue
            item = await controller.get()
            controller.task_done()
            await waiter  # space opened, second submit admitted
            assert item == "a"
            assert controller.depth == 1

        run(scenario())


class TestDrain:
    def test_submit_after_close_raises(self):
        async def scenario():
            controller = AdmissionController()
            controller.close()
            with pytest.raises(QueueClosed):
                await controller.submit("a")

        run(scenario())

    def test_drain_waits_for_workers(self):
        async def scenario():
            controller = AdmissionController()
            await controller.submit("a")
            serviced = []

            async def worker():
                item = await controller.get()
                await asyncio.sleep(0.01)
                serviced.append(item)
                controller.task_done()

            task = asyncio.ensure_future(worker())
            assert await controller.drain(timeout=1.0)
            assert serviced == ["a"]
            await task

        run(scenario())

    def test_drain_timeout(self):
        async def scenario():
            controller = AdmissionController()
            await controller.submit("never-serviced")
            assert not await controller.drain(timeout=0.01)
            assert controller.closed

        run(scenario())


class TestCostPolicy:
    def test_invalid_high_water(self):
        with pytest.raises(ValueError):
            AdmissionController(policy="cost", high_water=0.0)
        with pytest.raises(ValueError):
            AdmissionController(policy="cost", high_water=1.5)

    def test_expensive_shed_only_past_high_water(self):
        async def scenario():
            telemetry = Telemetry()
            controller = AdmissionController(
                queue_bound=4,
                policy="cost",
                telemetry=telemetry,
                cost_threshold=100.0,
                high_water=0.5,
            )
            # Below high water (depth 0, 1 < 2): expensive admitted.
            await controller.submit("big-0", cost=500.0)
            await controller.submit("big-1", cost=500.0)
            # At high water: the next expensive request is priced out.
            with pytest.raises(Shed):
                await controller.submit("big-2", cost=500.0)
            assert telemetry.counter("shed") == 1
            assert telemetry.counter("shed_cost") == 1
            assert controller.depth == 2

        run(scenario())

    def test_cheap_admitted_until_actually_full(self):
        async def scenario():
            telemetry = Telemetry()
            controller = AdmissionController(
                queue_bound=2,
                policy="cost",
                telemetry=telemetry,
                cost_threshold=100.0,
                high_water=0.5,
            )
            await controller.submit("cheap-0", cost=10.0)
            await controller.submit("cheap-1", cost=10.0)
            # Queue genuinely full: cheap requests shed too, but as a
            # plain full-queue shed, not a cost shed.
            with pytest.raises(Shed):
                await controller.submit("cheap-2", cost=10.0)
            assert telemetry.counter("shed") == 1
            assert telemetry.counter("shed_cost") == 0

        run(scenario())

    def test_unpriced_requests_are_never_cost_shed(self):
        async def scenario():
            telemetry = Telemetry()
            controller = AdmissionController(
                queue_bound=4,
                policy="cost",
                telemetry=telemetry,
                cost_threshold=100.0,
                high_water=0.25,
            )
            for index in range(4):
                await controller.submit(f"unpriced-{index}", cost=None)
            with pytest.raises(Shed):
                await controller.submit("unpriced-4", cost=None)
            assert telemetry.counter("shed_cost") == 0

        run(scenario())
