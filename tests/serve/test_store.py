"""Tests for the versioned signature store and its swap protocol."""

import pytest

from repro.core import signature_set_to_json
from repro.ids import DeterministicRuleSet, PSigeneDetector, Rule
from repro.serve import SignatureStore, StoreError, Telemetry


def toy_detector(name="toy"):
    return DeterministicRuleSet(
        name, [Rule(1, "union", r"union\s+select")]
    )


class TestStaticStore:
    def test_initial_version(self):
        store = SignatureStore(toy_detector())
        current = store.current()
        assert current.version == 1
        assert current.source == "static"
        assert store.version == 1

    def test_reload_without_path_fails(self):
        store = SignatureStore(toy_detector())
        with pytest.raises(StoreError):
            store.reload_from_path()
        assert store.version == 1

    def test_swap_detector_bumps_version(self):
        store = SignatureStore(toy_detector())
        published = store.swap_detector(
            toy_detector("toy2"), source="test"
        )
        assert published.version == 2
        assert store.current().detector.name == "toy2"


class TestWarmOnPublish:
    def test_mounting_compiles_the_fused_plan(self, small_signatures):
        # Publishing includes the fast path: the first request against a
        # freshly mounted detector must not pay fused-compile cost.
        detector = PSigeneDetector(small_signatures)
        detector.signature_set._fused = None
        SignatureStore(detector)
        assert detector.signature_set._fused is not None

    def test_swap_compiles_before_publish(self, small_signatures):
        store = SignatureStore(toy_detector())
        replacement = PSigeneDetector(small_signatures)
        replacement.signature_set._fused = None
        store.swap_detector(replacement, source="test")
        assert replacement.signature_set._fused is not None

    def test_detectors_without_signature_sets_are_fine(self):
        assert SignatureStore(toy_detector()).version == 1


class TestSignatureSwap:
    def test_from_file_mounts_psigene(self, small_signatures, tmp_path):
        path = tmp_path / "signatures.json"
        path.write_text(signature_set_to_json(small_signatures))
        store = SignatureStore.from_file(str(path))
        assert store.version == 1
        assert store.current().source == f"file:{path}"
        detection = store.current().detector.inspect(
            "id=1' union select 1,2,3-- -"
        )
        assert detection.alert

    def test_swap_json_bumps_version(self, small_signatures):
        store = SignatureStore(PSigeneDetector(small_signatures))
        published = store.swap_json(
            signature_set_to_json(small_signatures)
        )
        assert published.version == 2
        assert published.source == "inline"
        # The default factory keeps the mounted detector's name.
        assert published.detector.name == "psigene"

    def test_bad_json_keeps_old_version(self, small_signatures):
        telemetry = Telemetry()
        store = SignatureStore(
            PSigeneDetector(small_signatures), telemetry=telemetry
        )
        before = store.current()
        with pytest.raises(StoreError):
            store.swap_json("{not json")
        assert store.current() is before
        assert telemetry.counter("reload_failures") == 1
        assert telemetry.counter("reloads") == 0

    def test_reload_from_path(self, small_signatures, tmp_path):
        path = tmp_path / "signatures.json"
        path.write_text(signature_set_to_json(small_signatures))
        store = SignatureStore.from_file(str(path))
        published = store.reload_from_path()
        assert published.version == 2
        assert published.source == f"file:{path}"

    def test_reload_missing_file(self, small_signatures):
        store = SignatureStore(
            PSigeneDetector(small_signatures), path="/nonexistent.json"
        )
        with pytest.raises(StoreError):
            store.reload_from_path()
        assert store.version == 1

    def test_reload_counter(self, small_signatures):
        telemetry = Telemetry()
        store = SignatureStore(
            PSigeneDetector(small_signatures), telemetry=telemetry
        )
        store.swap_json(signature_set_to_json(small_signatures))
        store.swap_json(signature_set_to_json(small_signatures))
        assert telemetry.counter("reloads") == 2

    def test_old_snapshot_survives_swap(self, small_signatures):
        """In-flight readers keep answering with the version they took."""
        store = SignatureStore(PSigeneDetector(small_signatures))
        snapshot = store.current()
        store.swap_detector(toy_detector(), source="test")
        assert snapshot.version == 1
        assert snapshot.detector.inspect(
            "id=1' union select 1,2,3-- -"
        ).alert
        assert store.current().version == 2
