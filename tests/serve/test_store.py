"""Tests for the versioned signature store and its swap protocol."""

import pytest

from repro.core import signature_set_to_json
from repro.ids import DeterministicRuleSet, PSigeneDetector, Rule
from repro.serve import SignatureStore, StoreError, Telemetry


def toy_detector(name="toy"):
    return DeterministicRuleSet(
        name, [Rule(1, "union", r"union\s+select")]
    )


class TestStaticStore:
    def test_initial_version(self):
        store = SignatureStore(toy_detector())
        current = store.current()
        assert current.version == 1
        assert current.source == "static"
        assert store.version == 1

    def test_reload_without_path_fails(self):
        store = SignatureStore(toy_detector())
        with pytest.raises(StoreError):
            store.reload_from_path()
        assert store.version == 1

    def test_swap_detector_bumps_version(self):
        store = SignatureStore(toy_detector())
        published = store.swap_detector(
            toy_detector("toy2"), source="test"
        )
        assert published.version == 2
        assert store.current().detector.name == "toy2"


class TestWarmOnPublish:
    def test_mounting_compiles_the_fused_plan(self, small_signatures):
        # Publishing includes the fast path: the first request against a
        # freshly mounted detector must not pay fused-compile cost.
        detector = PSigeneDetector(small_signatures)
        detector.signature_set._fused = None
        SignatureStore(detector)
        assert detector.signature_set._fused is not None

    def test_swap_compiles_before_publish(self, small_signatures):
        store = SignatureStore(toy_detector())
        replacement = PSigeneDetector(small_signatures)
        replacement.signature_set._fused = None
        store.swap_detector(replacement, source="test")
        assert replacement.signature_set._fused is not None

    def test_detectors_without_signature_sets_are_fine(self):
        assert SignatureStore(toy_detector()).version == 1


class TestSignatureSwap:
    def test_from_file_mounts_psigene(self, small_signatures, tmp_path):
        path = tmp_path / "signatures.json"
        path.write_text(signature_set_to_json(small_signatures))
        store = SignatureStore.from_file(str(path))
        assert store.version == 1
        assert store.current().source == f"file:{path}"
        detection = store.current().detector.inspect(
            "id=1' union select 1,2,3-- -"
        )
        assert detection.alert

    def test_swap_json_bumps_version(self, small_signatures):
        store = SignatureStore(PSigeneDetector(small_signatures))
        published = store.swap_json(
            signature_set_to_json(small_signatures)
        )
        assert published.version == 2
        assert published.source == "inline"
        # The default factory keeps the mounted detector's name.
        assert published.detector.name == "psigene"

    def test_bad_json_keeps_old_version(self, small_signatures):
        telemetry = Telemetry()
        store = SignatureStore(
            PSigeneDetector(small_signatures), telemetry=telemetry
        )
        before = store.current()
        with pytest.raises(StoreError):
            store.swap_json("{not json")
        assert store.current() is before
        assert telemetry.counter("reload_failures") == 1
        assert telemetry.counter("reloads") == 0

    def test_reload_from_path(self, small_signatures, tmp_path):
        path = tmp_path / "signatures.json"
        path.write_text(signature_set_to_json(small_signatures))
        store = SignatureStore.from_file(str(path))
        published = store.reload_from_path()
        assert published.version == 2
        assert published.source == f"file:{path}"

    def test_reload_missing_file(self, small_signatures):
        store = SignatureStore(
            PSigeneDetector(small_signatures), path="/nonexistent.json"
        )
        with pytest.raises(StoreError):
            store.reload_from_path()
        assert store.version == 1

    def test_reload_counter(self, small_signatures):
        telemetry = Telemetry()
        store = SignatureStore(
            PSigeneDetector(small_signatures), telemetry=telemetry
        )
        store.swap_json(signature_set_to_json(small_signatures))
        store.swap_json(signature_set_to_json(small_signatures))
        assert telemetry.counter("reloads") == 2

    def test_old_snapshot_survives_swap(self, small_signatures):
        """In-flight readers keep answering with the version they took."""
        store = SignatureStore(PSigeneDetector(small_signatures))
        snapshot = store.current()
        store.swap_detector(toy_detector(), source="test")
        assert snapshot.version == 1
        assert snapshot.detector.inspect(
            "id=1' union select 1,2,3-- -"
        ).alert
        assert store.current().version == 2


class _ExplodingWarmSet:
    """Stand-in signature set whose fused plan cannot compile."""

    def warm(self):
        raise RuntimeError("fused plan exploded")


class _ExplodingWarmDetector:
    name = "exploding"

    def __init__(self):
        self.signature_set = _ExplodingWarmSet()

    def inspect(self, payload):  # pragma: no cover - never reached
        raise AssertionError("rejected detector must never serve")


class TestWarmRejection:
    def test_swap_rejects_candidate_that_fails_to_warm(self):
        telemetry = Telemetry()
        store = SignatureStore(toy_detector(), telemetry=telemetry)
        before = store.current()
        with pytest.raises(StoreError) as excinfo:
            store.swap_detector(_ExplodingWarmDetector(), source="test")
        assert excinfo.value.reason == "warm"
        assert store.current() is before
        assert telemetry.counter("reload_rejected") == 1
        assert telemetry.counter("reloads") == 0

    def test_stage_rejects_candidate_that_fails_to_warm(self):
        telemetry = Telemetry()
        store = SignatureStore(toy_detector(), telemetry=telemetry)
        with pytest.raises(StoreError) as excinfo:
            store.stage_detector(
                _ExplodingWarmDetector(), generation=2, source="test"
            )
        assert excinfo.value.reason == "warm"
        assert telemetry.counter("reload_rejected") == 1
        # Nothing staged: a later commit of that generation must fail.
        with pytest.raises(StoreError):
            store.commit_staged(2)
        assert store.version == 1


class TestTwoPhaseStaging:
    def test_stage_then_commit_publishes(self, small_signatures):
        store = SignatureStore(PSigeneDetector(small_signatures))
        store.stage_json(
            signature_set_to_json(small_signatures),
            generation=2,
            source="fleet",
        )
        # Staging alone publishes nothing.
        assert store.version == 1
        published = store.commit_staged(2)
        assert published.version == 2
        assert published.source == "fleet"
        assert store.version == 2

    def test_stage_stale_generation_rejected(self):
        store = SignatureStore(toy_detector())
        with pytest.raises(StoreError) as excinfo:
            store.stage_detector(
                toy_detector("toy2"), generation=1, source="test"
            )
        assert excinfo.value.reason == "stage"
        assert store.version == 1

    def test_commit_without_stage_rejected(self):
        store = SignatureStore(toy_detector())
        with pytest.raises(StoreError) as excinfo:
            store.commit_staged(5)
        assert excinfo.value.reason == "stage"
        assert store.version == 1

    def test_stage_bad_json_rejects_without_staging(self):
        telemetry = Telemetry()
        store = SignatureStore(toy_detector(), telemetry=telemetry)
        for body in ("{not json", "[]"):
            with pytest.raises(StoreError) as excinfo:
                store.stage_json(body, generation=2, source="test")
            assert excinfo.value.reason == "parse"
        assert telemetry.counter("reload_rejected") == 2
        with pytest.raises(StoreError):
            store.commit_staged(2)

    def test_abort_staged_drops_candidate(self, small_signatures):
        store = SignatureStore(PSigeneDetector(small_signatures))
        store.stage_json(
            signature_set_to_json(small_signatures), generation=2
        )
        store.abort_staged(2)
        with pytest.raises(StoreError):
            store.commit_staged(2)
        assert store.version == 1
        # Aborting a never-staged generation is a no-op.
        store.abort_staged(7)
        store.abort_staged()

    def test_initial_version_for_respawned_shard(self):
        # A respawned fleet shard mounts the fleet's current generation.
        store = SignatureStore(toy_detector(), initial_version=4)
        assert store.version == 4
        with pytest.raises(StoreError):
            store.stage_detector(
                toy_detector("toy2"), generation=4, source="test"
            )
        store.stage_detector(toy_detector("toy2"), generation=5, source="t")
        assert store.commit_staged(5).version == 5


class TestStagingEdgeCases:
    """Staging edge cases the canary loop leans on: double-stage
    replacement, deterministic misuse errors, and warm failures that
    leave both the incumbent and other staged candidates untouched."""

    def test_double_stage_replaces_cleanly(self, small_signatures):
        store = SignatureStore(PSigeneDetector(small_signatures))
        first = PSigeneDetector(small_signatures, name="first")
        second = PSigeneDetector(small_signatures, name="second")
        store.stage_detector(first, generation=2, source="shadow")
        store.stage_detector(second, generation=2, source="reload")
        # The re-stage replaced the candidate, not stacked beside it.
        assert store.staged_generations() == (2,)
        staged = store.get_staged(2)
        assert staged.detector is second
        assert staged.source == "reload"
        assert store.commit_staged(2).detector is second

    def test_get_staged_views(self, small_signatures):
        store = SignatureStore(PSigeneDetector(small_signatures))
        assert store.get_staged(2) is None
        assert store.staged_generations() == ()
        store.stage_json(
            signature_set_to_json(small_signatures), generation=3
        )
        store.stage_json(
            signature_set_to_json(small_signatures), generation=2
        )
        assert store.staged_generations() == (2, 3)
        assert store.get_staged(3).version == 3

    def test_commit_without_stage_raises_deterministically(self):
        store = SignatureStore(toy_detector())
        for _ in range(3):
            with pytest.raises(StoreError) as excinfo:
                store.commit_staged(2)
            assert excinfo.value.reason == "stage"
            assert store.version == 1

    def test_repeated_abort_is_a_noop(self, small_signatures):
        store = SignatureStore(PSigeneDetector(small_signatures))
        store.stage_json(
            signature_set_to_json(small_signatures), generation=2
        )
        store.abort_staged(2)
        # Aborting again — and aborting everything — stays a no-op.
        store.abort_staged(2)
        store.abort_staged()
        store.abort_staged()
        assert store.version == 1
        assert store.staged_generations() == ()

    def test_failed_warm_during_stage_leaves_everything(
        self, small_signatures
    ):
        """A candidate that blows up while warming must not disturb the
        incumbent or a previously staged (healthy) candidate."""

        class ExplodingSet:
            def warm(self):
                raise RuntimeError("boom during fused compile")

        class ExplodingDetector:
            name = "exploding"
            signature_set = ExplodingSet()

        store = SignatureStore(PSigeneDetector(small_signatures))
        incumbent = store.current()
        store.stage_json(
            signature_set_to_json(small_signatures), generation=2
        )
        with pytest.raises(StoreError) as excinfo:
            store.stage_detector(
                ExplodingDetector(), generation=3, source="bad"
            )
        assert excinfo.value.reason == "warm"
        assert store.current() is incumbent
        assert store.version == 1
        # The healthy candidate is still there and still commits.
        assert store.staged_generations() == (2,)
        assert store.commit_staged(2).version == 2
