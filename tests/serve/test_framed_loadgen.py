"""Framed load generation: full requests over wire v2 with parity.

``run_framed_loadgen`` must reproduce the offline surface scorer's
verdicts bit-for-bit — including on traffic only non-legacy surfaces
can see.
"""

import asyncio

from repro.corpus import SurfaceCorpusGenerator
from repro.http import HttpRequest
from repro.ids import DeterministicRuleSet, Rule
from repro.serve import SignatureStore
from repro.serve.loadgen import run_framed_loadgen
from repro.surfaces import DEFAULT_SURFACES, LEGACY_SURFACES


def toy_detector():
    return DeterministicRuleSet("toy", [
        Rule(1, "union", r"union\s+select"),
        Rule(2, "quote-or", r"'\s*or\s"),
    ])


class TestFramedLoadgen:
    def test_legacy_selection_parity_on_query_traffic(self):
        requests = [
            HttpRequest(query="id=1' or 1=1"),
            HttpRequest(query="q=hello"),
            HttpRequest(query="u=1 union select 2"),
        ] * 10
        report = asyncio.run(run_framed_loadgen(
            SignatureStore(toy_detector()),
            requests,
            surfaces=LEGACY_SURFACES,
            connections=2,
            window=8,
        ))
        assert report.completed == len(requests)
        assert report.shed == 0 and report.errors == 0
        assert report.parity is not None and report.parity.ok

    def test_full_surface_parity_on_surface_corpus(self):
        trace = SurfaceCorpusGenerator(seed=11).mixed_trace(48)
        report = asyncio.run(run_framed_loadgen(
            SignatureStore(toy_detector()),
            trace.requests,
            surfaces=DEFAULT_SURFACES,
            connections=4,
            window=16,
        ))
        assert report.completed == 48
        assert report.parity is not None and report.parity.ok
        # The corpus's attack half must actually fire on some surface.
        assert report.alerts > 0
