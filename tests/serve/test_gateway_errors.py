"""Gateway error paths: bad input must be answered, never fatal.

Three families of malformed input reach a live gateway in practice —
a broken control-plane HTTP request, a data-plane line beyond the
protocol bound, and a reload pointing at a signature file that is not
there.  Each must produce a clean, in-order error response *and leave
the gateway serving*: the connection loop, the worker pool, and the
mounted signature generation all survive the bad request.
"""

import asyncio
import json

from repro.ids import DeterministicRuleSet, Rule
from repro.serve import DetectionGateway, GatewayConfig, SignatureStore
from repro.serve.protocol import MAX_LINE_BYTES

from tests.serve.test_gateway import http, send_lines


def toy_detector():
    return DeterministicRuleSet(
        "toy", [Rule(1, "union", r"union\s+select")]
    )


async def raw_http(host, port, raw: bytes):
    """Send raw bytes as a one-shot exchange, return (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(raw)
    await writer.drain()
    response = await reader.read()
    writer.close()
    await writer.wait_closed()
    header, _, payload = response.partition(b"\r\n\r\n")
    return int(header.split()[1]), json.loads(payload)


class TestMalformedControlPlane:
    def test_header_without_colon_gets_400(self):
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            status, body = await raw_http(
                host, port,
                b"GET /healthz HTTP/1.1\r\nthis is not a header\r\n\r\n",
            )
            # The listener survives: a well-formed request still works.
            after = await http(host, port, "GET", "/healthz")
            await gateway.stop()
            return (status, body), after, gateway.telemetry.counter(
                "protocol_errors"
            )

        (status, body), (after_status, after_body), errors = asyncio.run(
            scenario()
        )
        assert status == 400
        assert "malformed header" in body["error"]
        assert errors == 1
        assert after_status == 200 and after_body["status"] == "ok"

    def test_unparseable_content_length_gets_400(self):
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            result = await raw_http(
                host, port,
                b"POST /inspect HTTP/1.1\r\n"
                b"Content-Length: banana\r\n\r\n",
            )
            await gateway.stop()
            return result

        status, body = asyncio.run(scenario())
        assert status == 400
        assert "content-length" in body["error"]

    def test_truncated_body_gets_400_not_a_hang(self):
        # Content-Length promises more bytes than the client sends, then
        # the client closes: readexactly raises IncompleteReadError and
        # the gateway must answer 400 instead of leaking the connection.
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /inspect HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
            )
            writer.write_eof()
            response = await asyncio.wait_for(reader.read(), timeout=5)
            writer.close()
            await writer.wait_closed()
            # Still serving afterwards.
            after = await http(host, port, "GET", "/healthz")
            await gateway.stop()
            return response, after

        response, (after_status, _) = asyncio.run(scenario())
        assert response.split()[1] == b"400"
        assert after_status == 200


class TestOversizedDataPlane:
    def test_oversized_line_midstream_keeps_the_connection(self):
        # good, oversized, good on ONE connection: the oversized line is
        # answered with an in-order error and the reader keeps going.
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            reader, writer = await asyncio.open_connection(host, port)
            big = b"x" * (MAX_LINE_BYTES + 1)
            writer.write(
                b"id=1' union select 1\n" + big + b"\nq=after\n"
            )
            await writer.drain()
            responses = [
                json.loads(await reader.readline()) for _ in range(3)
            ]
            writer.close()
            await writer.wait_closed()
            await gateway.stop()
            return responses, gateway.telemetry.counter("protocol_errors")

        (first, middle, last), errors = asyncio.run(scenario())
        assert first["alert"] is True
        assert middle == {"error": "line too long"}
        assert last["alert"] is False
        assert errors == 1

    def test_oversized_first_line_of_a_connection(self):
        # The very first line decides the dialect; an oversized one can
        # not be classified and the connection is answered-and-closed —
        # but the *gateway* keeps accepting new connections.
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"z" * (5 * MAX_LINE_BYTES) + b"\n")
            await writer.drain()
            error = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            fresh = await send_lines(host, port, ["id=1' union select 1"])
            await gateway.stop()
            return error, fresh

        error, fresh = asyncio.run(scenario())
        assert error == {"error": "line too long"}
        assert fresh[0]["alert"] is True


class TestReloadMissingFile:
    def test_missing_file_keeps_old_generation_serving(self, tmp_path):
        missing = tmp_path / "not-there.json"

        async def scenario():
            store = SignatureStore(toy_detector(), path=str(missing))
            gateway = DetectionGateway(store, GatewayConfig(workers=1))
            host, port = await gateway.start()
            before = await send_lines(host, port, ["id=1' union select 1"])
            # Empty body => path-based reload; the file does not exist.
            reload_result = await http(host, port, "POST", "/reload")
            after = await send_lines(host, port, ["id=1' union select 1"])
            health = await http(host, port, "GET", "/healthz")
            await gateway.stop()
            return before, reload_result, after, health, store.version

        before, (status, body), after, (h_status, health), version = (
            asyncio.run(scenario())
        )
        assert status == 400
        assert "error" in body and body["version"] == 1
        assert version == 1  # the old generation survived
        # The data plane never noticed: same verdict, same version.
        assert before == after
        assert before[0]["alert"] is True and before[0]["version"] == 1
        assert h_status == 200 and health["status"] == "ok"

    def test_no_path_configured_is_a_clean_400(self):
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            result = await http(host, port, "POST", "/reload")
            await gateway.stop()
            return result, gateway.telemetry.counter("reload_failures")

        (status, body), failures = asyncio.run(scenario())
        assert status == 400
        assert "no signature path" in body["error"]
        assert failures == 1
