"""Wire-format v2 framed mode: codec units and live gateway behaviour.

The framing contract under test: frames and plain lines interleave on
one connection with responses in request order, a framed response leads
with the exact legacy keys, malformed frames answer an error without
desyncing the stream, and the old line protocol is byte-for-byte
untouched.
"""

import asyncio
import json

import pytest

from repro.http import HttpRequest
from repro.ids import DeterministicRuleSet, Rule
from repro.serve import DetectionGateway, GatewayConfig, SignatureStore
from repro.serve.protocol import (
    FRAME_MAGIC,
    ProtocolError,
    decode_framed_request,
    encode_framed_request,
    frame_header_size,
)
from repro.surfaces import (
    DEFAULT_SURFACES,
    LEGACY_SURFACES,
    InjectionSurface,
    parse_surfaces,
)


def toy_detector():
    return DeterministicRuleSet("toy", [
        Rule(1, "union", r"union\s+select"),
        Rule(2, "quote-or", r"'\s*or\s"),
    ])


class TestFrameCodec:
    def test_header_size_roundtrip(self):
        frame = encode_framed_request(HttpRequest(query="a=1"))
        header, _, rest = frame.partition(b"\n")
        assert frame_header_size(header) == len(rest) - 1  # trailing \n

    def test_non_frame_lines_are_not_headers(self):
        assert frame_header_size(b"id=1' or 1=1") is None
        assert frame_header_size(b"") is None
        # Future framing versions fall through to the line protocol.
        assert frame_header_size(b"REPRO-FRAME/3 10") is None

    def test_malformed_size_raises(self):
        with pytest.raises(ProtocolError):
            frame_header_size(FRAME_MAGIC + b" banana")
        with pytest.raises(ProtocolError):
            frame_header_size(FRAME_MAGIC + b" -5")

    def test_request_roundtrip_with_stored_and_surfaces(self):
        request = HttpRequest(
            method="POST",
            path="/x",
            query="a=1",
            headers={"Cookie": "s=v"},
            body="{}",
            stored=(("comment", "payload"),),
        )
        frame = encode_framed_request(request, DEFAULT_SURFACES)
        _, _, body_nl = frame.partition(b"\n")
        decoded, surfaces = decode_framed_request(body_nl[:-1])
        assert decoded.method == "POST"
        assert decoded.query == "a=1"
        assert decoded.headers == {"cookie": "s=v"}  # lowercased
        assert decoded.stored == (("comment", "payload"),)
        assert surfaces == DEFAULT_SURFACES

    def test_absent_surfaces_takes_the_default(self):
        frame = encode_framed_request(HttpRequest(query="a=1"))
        _, _, body_nl = frame.partition(b"\n")
        _, surfaces = decode_framed_request(body_nl[:-1])
        assert surfaces == LEGACY_SURFACES
        _, surfaces = decode_framed_request(
            body_nl[:-1],
            default_surfaces=(InjectionSurface.COOKIE,),
        )
        assert surfaces == (InjectionSurface.COOKIE,)

    def test_bad_frames_raise(self):
        with pytest.raises(ProtocolError):
            decode_framed_request(b"not json")
        with pytest.raises(ProtocolError):
            decode_framed_request(b'{"v": 99}')
        with pytest.raises(ProtocolError):
            decode_framed_request(
                b'{"v": 2, "surfaces": "query,warp-drive"}'
            )
        with pytest.raises(ProtocolError):
            decode_framed_request(b'{"v": 2, "headers": []}')


async def exchange(host, port, messages):
    """Send pre-encoded wire messages, read one response line each."""
    reader, writer = await asyncio.open_connection(host, port)
    responses = []
    try:
        for message in messages:
            writer.write(message)
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
    finally:
        writer.close()
        await writer.wait_closed()
    return responses


async def get_stats(host, port):
    """One-shot GET /stats on the control plane."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n")
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    _header, _, payload = raw.partition(b"\r\n\r\n")
    return json.loads(payload)


def run_gateway(messages, config=None):
    async def scenario():
        gateway = DetectionGateway(
            SignatureStore(toy_detector()), config
        )
        host, port = await gateway.start()
        try:
            responses = await exchange(host, port, messages)
            stats = await get_stats(host, port)
        finally:
            await gateway.stop()
        return responses, stats

    return asyncio.run(scenario())


class TestFramedGateway:
    def test_cookie_attack_with_attribution(self):
        request = HttpRequest(
            query="view=1",
            headers={"cookie": "s=x' or 1=1"},
        )
        frame = encode_framed_request(
            request, (InjectionSurface.QUERY, InjectionSurface.COOKIE)
        )
        (response,), _stats = run_gateway([frame])
        assert response["alert"] is True
        assert response["matched"] == [2]
        assert response["surfaces"] == "cookie"
        assert response["verdicts"][0]["locator"] == "query-string"
        # Legacy keys come first, in the line-protocol order.
        assert list(response)[:4] == [
            "alert", "score", "matched", "version",
        ]

    def test_legacy_selection_sees_no_cookie(self):
        request = HttpRequest(
            query="view=1",
            headers={"cookie": "s=x' or 1=1"},
        )
        frame = encode_framed_request(request, LEGACY_SURFACES)
        (response,), _stats = run_gateway([frame])
        assert response["alert"] is False

    def test_frames_and_lines_interleave_in_order(self):
        attack_line = b"id=1 union select 2\n"
        frame = encode_framed_request(
            HttpRequest(headers={"cookie": "s=x' or 1=1"}),
            (InjectionSurface.COOKIE,),
        )
        benign_line = b"q=hello\n"
        responses, stats = run_gateway([attack_line, frame, benign_line])
        assert [r["alert"] for r in responses] == [True, True, False]
        assert "surfaces" not in responses[0]  # line responses unchanged
        assert responses[1]["surfaces"] == "cookie"
        assert stats["counters"].get("framed") == 1

    def test_malformed_frame_header_answers_error_and_resyncs(self):
        messages = [
            FRAME_MAGIC + b" not-a-number\n",
            b"id=1 union select 2\n",
        ]
        responses, _stats = run_gateway(messages)
        assert "error" in responses[0]
        assert responses[1]["alert"] is True

    def test_malformed_frame_body_answers_error_and_resyncs(self):
        bad_body = b"this is not json"
        messages = [
            FRAME_MAGIC + b" " + str(len(bad_body)).encode()
            + b"\n" + bad_body + b"\n",
            b"q=hello\n",
        ]
        responses, _stats = run_gateway(messages)
        assert "error" in responses[0]
        assert responses[1]["alert"] is False

    def test_config_default_surfaces_applies_to_plain_frames(self):
        request = HttpRequest(headers={"cookie": "s=x' or 1=1"})
        frame = encode_framed_request(request)  # no explicit selection
        (response,), _stats = run_gateway(
            [frame],
            GatewayConfig(
                surfaces=(InjectionSurface.COOKIE,),
            ),
        )
        assert response["alert"] is True
        assert response["surfaces"] == "cookie"

    def test_stats_expose_per_surface_counters(self):
        frame = encode_framed_request(
            HttpRequest(headers={"cookie": "s=x' or 1=1"}),
            (InjectionSurface.QUERY, InjectionSurface.COOKIE),
        )
        _responses, stats = run_gateway([frame])
        assert stats["surfaces"]["cookie"]["inspected"] == 1
        assert stats["surfaces"]["cookie"]["alerted"] == 1
        assert stats["surfaces"]["query"]["inspected"] == 1
        assert stats["surfaces"]["query"]["alerted"] == 0


class TestSurfacesSection:
    def test_fleet_merged_counters_produce_the_same_shape(self):
        # One definition serves both the single gateway and the fleet
        # merge: summing two shards' raw counters must yield the exact
        # per-surface block a lone gateway's /stats exposes.
        from repro.serve.telemetry import merge_raw_states, surfaces_section

        shard_a = {"counters": {
            "surface_cookie_inspected": 3,
            "surface_cookie_alerted": 1,
            "inspected": 3,
        }}
        shard_b = {"counters": {
            "surface_cookie_inspected": 2,
            "surface_query_inspected": 2,
            "inspected": 2,
        }}
        section = surfaces_section(
            merge_raw_states([shard_a, shard_b])["counters"]
        )
        assert section["cookie"] == {"inspected": 5, "alerted": 1}
        assert section["query"] == {"inspected": 2, "alerted": 0}
        # Every surface appears, zeroed when never touched.
        assert section["second-order"] == {"inspected": 0, "alerted": 0}
        assert set(section) == {s.value for s in InjectionSurface}


class TestInProcessFramedClient:
    def test_inspect_request_helper(self):
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            await gateway.start()
            try:
                return await gateway.inspect_request(
                    HttpRequest(headers={"cookie": "s=1 union select 2"}),
                    parse_surfaces("cookie"),
                )
            finally:
                await gateway.stop()

        response = asyncio.run(scenario())
        assert response["alert"] is True
        assert response["surfaces"] == "cookie"
