"""Fleet tests: shared-port serving, two-phase reload, shard resilience.

The acceptance bar mirrors the single-process gateway's: verdicts
through the sharded data plane are identical to ``detector.inspect``
offline — including across a mid-stream fleet-wide hot reload, a shard
killed with SIGKILL, and the respawn that follows.
"""

import asyncio
import json
import os
import signal
import time

import pytest

from repro.core import signature_set_to_json
from repro.ids import DeterministicRuleSet, PSigeneDetector, Rule
from repro.serve import (
    FleetConfig,
    FleetError,
    FleetSupervisor,
    StoreError,
    reuseport_available,
)


def toy_detector(name="toy"):
    return DeterministicRuleSet(
        name, [Rule(1, "union", r"union\s+select")]
    )


def fleet_config(**overrides):
    defaults = dict(shards=2, queue_bound=256, workers=2)
    defaults.update(overrides)
    return FleetConfig(**defaults)


async def send_lines(host, port, payloads):
    """Send payload lines on one connection, return decoded responses."""
    reader, writer = await asyncio.open_connection(host, port)
    responses = []
    try:
        for payload in payloads:
            writer.write(payload.encode() + b"\n")
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
    finally:
        writer.close()
        await writer.wait_closed()
    return responses


async def http(host, port, method, path, body=""):
    """One-shot HTTP exchange, returns (status, decoded body)."""
    reader, writer = await asyncio.open_connection(host, port)
    encoded = body.encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(encoded)}\r\n\r\n"
    )
    writer.write(head.encode() + encoded)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header, _, payload = raw.partition(b"\r\n\r\n")
    status = int(header.split()[1])
    if b"text/plain" in header:
        return status, payload.decode()
    return status, json.loads(payload)


class TestFleetServing:
    def test_reuseport_or_prefork_available(self):
        # The fleet needs one of its two port-sharing mechanisms; on
        # Linux (CI) both exist.
        import multiprocessing

        assert reuseport_available() or (
            "fork" in multiprocessing.get_all_start_methods()
        )

    def test_round_trip_matches_offline(self):
        async def scenario():
            supervisor = FleetSupervisor(toy_detector(), fleet_config())
            host, port = await supervisor.start()
            try:
                payloads = [
                    "id=1 union select password",
                    "q=hello world",
                    "a=UNION  SELECT 1",
                    "",
                ] * 5
                # Several connections so both shards see traffic.
                batches = await asyncio.gather(*(
                    send_lines(host, port, payloads) for _ in range(4)
                ))
            finally:
                await supervisor.stop()
            offline = [toy_detector().inspect(p) for p in payloads]
            for responses in batches:
                for response, detection in zip(responses, offline):
                    assert response["alert"] == detection.alert
                    assert response["matched"] == [
                        int(s) for s in detection.matched_sids
                    ]
                    assert response["version"] == 1

        asyncio.run(scenario())

    def test_shard_data_plane_refuses_reload(self):
        """POST /reload on the shared data port must not split the
        fleet across generations — shards answer 403."""
        async def scenario():
            supervisor = FleetSupervisor(toy_detector(), fleet_config())
            host, port = await supervisor.start()
            try:
                status, body = await http(
                    host, port, "POST", "/reload", "{}"
                )
                assert status == 403
                assert "supervisor" in body["error"]
                assert supervisor.version == 1
            finally:
                await supervisor.stop()

        asyncio.run(scenario())

    def test_control_plane_endpoints(self):
        async def scenario():
            supervisor = FleetSupervisor(toy_detector(), fleet_config())
            host, port = await supervisor.start()
            chost, cport = supervisor.control_address
            try:
                await send_lines(
                    host, port, ["id=1 union select x", "b=2"]
                )
                status, health = await http(chost, cport, "GET", "/healthz")
                assert status == 200
                assert health["status"] == "ok"
                assert health["live"] == 2

                status, stats = await http(chost, cport, "GET", "/stats")
                assert status == 200
                assert stats["fleet"]["counters"]["inspected"] == 2
                assert stats["fleet"]["counters"]["alerted"] == 1
                assert set(stats["shards"]) == {"0", "1"}
                assert all(
                    info["version"] == 1
                    for info in stats["shards"].values()
                )

                status, shards = await http(chost, cport, "GET", "/shards")
                assert status == 200
                assert len(shards["shards"]) == 2
                assert all(s["serving"] for s in shards["shards"])

                status, body = await http(chost, cport, "GET", "/missing")
                assert status == 404
            finally:
                await supervisor.stop()

        asyncio.run(scenario())

    def test_metrics_exposition_is_strictly_parseable(self):
        from repro.obs.prometheus import parse_exposition, sample_value

        async def scenario():
            supervisor = FleetSupervisor(toy_detector(), fleet_config())
            host, port = await supervisor.start()
            chost, cport = supervisor.control_address
            try:
                await send_lines(host, port, ["id=1 union select x"])
                status, text = await http(chost, cport, "GET", "/metrics")
                assert status == 200
                families = parse_exposition(text)
                # Fleet aggregate is the sum of the per-shard series.
                fleet = sample_value(
                    families, "repro_inspected_total", {"shard": "fleet"}
                )
                per_shard = sum(
                    sample_value(
                        families, "repro_inspected_total",
                        {"shard": str(index)},
                    )
                    for index in range(2)
                )
                assert fleet == per_shard == 1.0
                assert sample_value(families, "repro_fleet_shards") == 2.0
                assert (
                    sample_value(families, "repro_store_version") == 1.0
                )
                # Merged latency histogram carries the observation.
                assert (
                    sample_value(families, "repro_service_seconds_count")
                    == 1.0
                )
            finally:
                await supervisor.stop()

        asyncio.run(scenario())

    def test_cost_policy_flows_to_shards(self):
        """A congested cost-policy shard sheds the expensive payload
        and keeps admitting cheap ones."""
        async def scenario():
            supervisor = FleetSupervisor(
                toy_detector(),
                fleet_config(
                    shards=1, queue_bound=4, policy="cost",
                    cost_threshold=64.0, high_water=0.25, workers=1,
                ),
            )
            host, port = await supervisor.start()
            try:
                cheap = "q=1"
                expensive = "q=" + "x" * 512
                reader, writer = await asyncio.open_connection(host, port)
                # Flood enough lines to keep the queue past high water,
                # with expensive payloads interleaved.
                lines = ([cheap] * 40 + [expensive] * 10) * 2
                for line in lines:
                    writer.write(line.encode() + b"\n")
                await writer.drain()
                responses = []
                for _ in lines:
                    responses.append(
                        json.loads(await reader.readline())
                    )
                writer.close()
                await writer.wait_closed()
                stats = await supervisor.stats()
            finally:
                await supervisor.stop()
            cost_shed = [
                index for index, r in enumerate(responses)
                if r.get("shed") and "cost" in r["error"]
            ]
            # Cost sheds hit only the priced-out payloads (queue-full
            # sheds may hit anything; those carry no cost message).
            assert cost_shed
            assert all(lines[index] == expensive for index in cost_shed)
            assert stats["fleet"]["counters"]["shed_cost"] == len(cost_shed)
            # Cheap traffic was never priced out — any cheap shed is a
            # plain queue-full refusal, and some cheap always lands.
            serviced_cheap = sum(
                1 for index, r in enumerate(responses)
                if lines[index] == cheap and not r.get("shed")
            )
            assert serviced_cheap > 0

        asyncio.run(scenario())


class TestFleetReload:
    @pytest.mark.smoke
    def test_midstream_reload_parity(self, small_signatures):
        """Offline/online parity across a fleet-wide two-phase reload
        racing live traffic: every verdict matches the offline engine
        no matter which shard or generation answered it."""
        from repro.eval.serving import (
            offline_detections,
            parity_of_responses,
        )
        from repro.serve.loadgen import replay

        async def scenario():
            detector = PSigeneDetector(small_signatures)
            supervisor = FleetSupervisor(detector, fleet_config())
            host, port = await supervisor.start()
            try:
                payloads = [
                    "id=1' union select 1,2,3-- -",
                    "q=plain benign text",
                    "name=alice&x=1 or 1=1",
                ] * 40
                replay_task = asyncio.ensure_future(
                    replay(host, port, payloads, connections=4, window=8)
                )
                await asyncio.sleep(0.02)
                result = await supervisor.reload_json(
                    signature_set_to_json(small_signatures),
                    source="midstream",
                )
                responses, _latencies, _duration = await replay_task
                stats = await supervisor.stats()
            finally:
                await supervisor.stop()
            assert result["version"] == 2
            # Every shard committed the new generation.
            assert all(
                info["version"] == 2 for info in stats["shards"].values()
            )
            parity = parity_of_responses(
                offline_detections(detector, payloads), responses,
            )
            assert parity.ok, parity.summary()
            # Both generations answered (versions observed on the wire
            # are 1 and/or 2, never anything else).
            versions = {r["version"] for r in responses if r}
            assert versions <= {1, 2}

        asyncio.run(scenario())

    def test_bad_candidate_rejected_everywhere(self):
        async def scenario():
            supervisor = FleetSupervisor(toy_detector(), fleet_config())
            host, port = await supervisor.start()
            chost, cport = supervisor.control_address
            try:
                with pytest.raises(StoreError) as excinfo:
                    await supervisor.reload_json("{broken")
                assert excinfo.value.reason == "parse"
                assert supervisor.version == 1
                assert (
                    supervisor.telemetry.counter("reload_rejected") == 1
                )
                # The control plane reports the rejection structurally.
                status, body = await http(
                    chost, cport, "POST", "/reload", "[]"
                )
                assert status == 400
                assert body["rejected"] is True
                assert body["version"] == 1
                assert body["reason"]
                # The fleet keeps serving the original generation.
                responses = await send_lines(
                    host, port, ["id=1 union select x"]
                )
                assert responses[0]["version"] == 1
                assert responses[0]["alert"]
            finally:
                await supervisor.stop()

        asyncio.run(scenario())

    def test_reload_is_atomic_per_generation(self, small_signatures):
        """Two sequential reloads land as generations 2 and 3 on every
        shard — no shard ever skips or repeats a generation."""
        async def scenario():
            detector = PSigeneDetector(small_signatures)
            supervisor = FleetSupervisor(detector, fleet_config())
            await supervisor.start()
            try:
                text = signature_set_to_json(small_signatures)
                first = await supervisor.reload_json(text)
                second = await supervisor.reload_json(text)
                stats = await supervisor.stats()
            finally:
                await supervisor.stop()
            assert (first["version"], second["version"]) == (2, 3)
            assert all(
                info["version"] == 3 for info in stats["shards"].values()
            )

        asyncio.run(scenario())


async def resilient_inspect(supervisor, payload):
    """One data-plane round-trip, retrying connection resets.

    With ``SO_REUSEPORT`` a connection racing a shard's death can land
    on the dying listener and get reset; the kernel drops the dead
    socket from the accept group, so a retry reaches a live shard —
    exactly what a real client does.
    """
    last: Exception | None = None
    for _ in range(40):
        try:
            return await supervisor.inspect(payload)
        except (
            ConnectionResetError,
            BrokenPipeError,
            json.JSONDecodeError,
            asyncio.IncompleteReadError,
        ) as exc:
            last = exc
            await asyncio.sleep(0.05)
    raise AssertionError(f"fleet stopped answering: {last!r}")


class TestFleetResilience:
    def test_shard_death_respawn_with_current_generation(
        self, small_signatures
    ):
        """SIGKILL one shard mid-stream: the fleet keeps answering, the
        monitor reaps and respawns the slot, the replacement passes the
        conformance spot-check and mounts the *current* generation."""
        async def scenario():
            detector = PSigeneDetector(small_signatures)
            supervisor = FleetSupervisor(detector, fleet_config())
            host, port = await supervisor.start()
            try:
                # Move the fleet to generation 2 first, so the respawn
                # has to pick up a non-initial store version.
                await supervisor.reload_json(
                    signature_set_to_json(small_signatures)
                )
                victim = supervisor.handles[0]
                os.kill(victim.pid, signal.SIGKILL)
                served = 0
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    response = await resilient_inspect(
                        supervisor, "id=1' union select 1,2,3-- -"
                    )
                    assert response["alert"], response
                    served += 1
                    if victim.serving and victim.respawns == 1:
                        break
                    await asyncio.sleep(0.05)
                assert victim.respawns == 1
                assert victim.serving
                assert served > 0
                stats = await supervisor.stats()
                assert all(
                    info["version"] == 2
                    for info in stats["shards"].values()
                )
                assert supervisor.telemetry.counter("respawns") == 1
            finally:
                await supervisor.stop()

        asyncio.run(scenario())

    def test_stop_reaps_every_child(self):
        async def scenario():
            supervisor = FleetSupervisor(
                toy_detector(), fleet_config(shards=3)
            )
            await supervisor.start()
            processes = [handle.process for handle in supervisor.handles]
            assert all(p.is_alive() for p in processes)
            await supervisor.stop()
            assert all(not p.is_alive() for p in processes)
            # join() succeeded, so none of them is a zombie.
            assert all(p.exitcode is not None for p in processes)

        asyncio.run(scenario())

    def test_respawn_budget_exhausts(self):
        """A slot that keeps dying is eventually left down while the
        rest of the fleet keeps serving."""
        async def scenario():
            supervisor = FleetSupervisor(
                toy_detector(),
                fleet_config(shards=2, max_respawns=1),
            )
            host, port = await supervisor.start()
            try:
                victim = supervisor.handles[0]
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    if victim.pid and victim.alive:
                        try:
                            os.kill(victim.pid, signal.SIGKILL)
                        except ProcessLookupError:
                            pass
                    if (
                        supervisor.telemetry.counter("respawn_exhausted")
                        and not victim.alive
                    ):
                        break
                    await asyncio.sleep(0.05)
                assert (
                    supervisor.telemetry.counter("respawn_exhausted") >= 1
                )
                # The surviving shard still answers.
                response = await resilient_inspect(
                    supervisor, "id=1 union select x"
                )
                assert response["alert"]
                chost, cport = supervisor.control_address
                status, health = await http(chost, cport, "GET", "/healthz")
                assert status == 200
                assert health["status"] == "degraded"
            finally:
                await supervisor.stop()

        asyncio.run(scenario())
