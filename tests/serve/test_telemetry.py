"""Tests for the telemetry layer: counters and latency histograms."""

import numpy as np
import pytest

from repro.serve import LatencyHistogram, Telemetry


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0

    def test_single_observation(self):
        histogram = LatencyHistogram()
        histogram.observe(0.01)
        assert histogram.count == 1
        assert histogram.max == 0.01
        assert histogram.quantile(0.5) == pytest.approx(0.01, rel=0.30)

    def test_quantiles_track_numpy(self):
        rng = np.random.default_rng(5)
        samples = rng.lognormal(mean=-7, sigma=1.0, size=5000)
        histogram = LatencyHistogram()
        for value in samples:
            histogram.observe(float(value))
        for q in (0.50, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            # Bucketed estimate may exceed the exact quantile by at most
            # one growth factor (1.25), and never undershoots more than
            # one bucket either.
            assert histogram.quantile(q) <= exact * 1.25
            assert histogram.quantile(q) >= exact / 1.25

    def test_quantile_never_exceeds_max(self):
        histogram = LatencyHistogram()
        for value in (1e-5, 2e-5, 3e-5):
            histogram.observe(value)
        assert histogram.quantile(1.0) <= 3e-5

    def test_out_of_range_observations(self):
        histogram = LatencyHistogram()
        histogram.observe(-1.0)   # clamped to 0, lands in underflow
        histogram.observe(1e-9)   # below the first edge
        histogram.observe(1e4)    # above the last edge
        assert histogram.count == 3
        assert histogram.max == 1e4

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(0.0)
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LatencyHistogram(low=1.0, high=0.5)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)

    def test_percentiles_ms_keys(self):
        histogram = LatencyHistogram()
        histogram.observe(0.002)
        keys = set(histogram.percentiles_ms())
        assert keys == {"p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"}


class TestTelemetry:
    def test_counters(self):
        telemetry = Telemetry()
        assert telemetry.counter("inspected") == 0
        telemetry.increment("inspected")
        telemetry.increment("inspected", 4)
        assert telemetry.counter("inspected") == 5

    def test_record_inspection(self):
        telemetry = Telemetry()
        telemetry.record_inspection(True, 0.001)
        telemetry.record_inspection(False, 0.002)
        assert telemetry.counter("inspected") == 2
        assert telemetry.counter("alerted") == 1

    def test_snapshot_shape(self):
        telemetry = Telemetry()
        telemetry.record_inspection(True, 0.001)
        telemetry.observe("latency", 0.003)
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["inspected"] == 1
        assert snapshot["latency"]["service"]["count"] == 1
        assert snapshot["latency"]["latency"]["count"] == 1
        assert snapshot["uptime_s"] >= 0

    def test_snapshot_is_a_copy(self):
        telemetry = Telemetry()
        telemetry.increment("x")
        snapshot = telemetry.snapshot()
        snapshot["counters"]["x"] = 99
        assert telemetry.counter("x") == 1
