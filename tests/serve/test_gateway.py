"""Gateway round-trip tests: line protocol, control plane, hot reload.

The acceptance bar: for a fixed trace, alerts/scores through the
gateway are identical to ``SignatureEngine.run`` offline — including
across a mid-stream hot signature reload, where requests admitted
before the swap are answered by the old generation and requests after
it by the new one.
"""

import asyncio
import json

import pytest

from repro.core import SignatureSet, signature_set_to_json
from repro.eval.serving import offline_detections, parity_of_responses
from repro.http import HttpRequest, Trace
from repro.ids import (
    DeterministicRuleSet,
    PSigeneDetector,
    Rule,
    SignatureEngine,
)
from repro.serve import (
    DetectionGateway,
    GatewayConfig,
    SignatureStore,
    build_load_trace,
    run_loadgen,
)


def toy_detector(name="toy"):
    return DeterministicRuleSet(
        name, [Rule(1, "union", r"union\s+select")]
    )


async def send_lines(host, port, payloads):
    """Send payload lines on one connection, return decoded responses."""
    reader, writer = await asyncio.open_connection(host, port)
    responses = []
    try:
        for payload in payloads:
            writer.write(payload.encode() + b"\n")
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
    finally:
        writer.close()
        await writer.wait_closed()
    return responses


async def http(host, port, method, path, body=""):
    """One-shot control-plane exchange, returns (status, json body)."""
    reader, writer = await asyncio.open_connection(host, port)
    encoded = body.encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(encoded)}\r\n\r\n"
    )
    writer.write(head.encode() + encoded)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header, _, payload = raw.partition(b"\r\n\r\n")
    status = int(header.split()[1])
    return status, json.loads(payload)


class TestLineProtocol:
    def test_round_trip(self):
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            responses = await send_lines(host, port, [
                "id=1' union select 1", "q=hello",
            ])
            await gateway.stop()
            return responses

        first, second = asyncio.run(scenario())
        assert first == {
            "alert": True, "score": 1.0, "matched": [1], "version": 1,
        }
        assert second["alert"] is False

    def test_empty_line_is_an_empty_payload(self):
        """Blank lines are scored like any request with no query string —
        skipping them would desync response ordering and break parity
        with the offline engine on traces containing static fetches."""

        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            responses = await send_lines(host, port, ["", "q=hello"])
            await gateway.stop()
            return responses

        empty, hello = asyncio.run(scenario())
        assert empty["alert"] is False and empty["score"] == 0.0
        assert hello["alert"] is False

    def test_oversized_line_answers_error(self):
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"x" * (70 * 1024) + b"\nq=ok\n")
            await writer.drain()
            first = json.loads(await reader.readline())
            second = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            await gateway.stop()
            return first, second

        first, second = asyncio.run(scenario())
        assert "error" in first
        assert second["alert"] is False

    def test_shed_policy_over_tcp(self):
        async def scenario():
            gateway = DetectionGateway(
                SignatureStore(toy_detector()),
                GatewayConfig(queue_bound=1, policy="shed", workers=1),
            )
            host, port = await gateway.start()
            # A burst bigger than the queue from many connections; with
            # one worker at least one request must be refused.
            results = await asyncio.gather(*(
                send_lines(host, port, [f"id={i}' union select 1"] * 8)
                for i in range(8)
            ))
            await gateway.stop()
            flattened = [r for batch in results for r in batch]
            return flattened, gateway.telemetry.counter("shed")

        responses, shed_counter = asyncio.run(scenario())
        sheds = [r for r in responses if r.get("shed")]
        serviced = [r for r in responses if not r.get("shed")]
        assert sheds, "burst never overflowed the bounded queue"
        assert shed_counter == len(sheds)
        assert all(r["alert"] for r in serviced)


class TestControlPlane:
    def test_healthz_and_stats(self):
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            await send_lines(host, port, ["id=1' union select 1"])
            health = await http(host, port, "GET", "/healthz")
            stats = await http(host, port, "GET", "/stats")
            await gateway.stop()
            return health, stats

        (h_status, health), (s_status, stats) = asyncio.run(scenario())
        assert h_status == 200
        assert health["status"] == "ok"
        assert health["detector"] == "toy"
        assert s_status == 200
        assert stats["counters"]["inspected"] == 1
        assert stats["counters"]["alerted"] == 1
        assert stats["latency"]["service"]["count"] == 1
        assert stats["store"]["version"] == 1

    def test_inspect_endpoint(self):
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            result = await http(
                host, port, "POST", "/inspect", "id=1' union select 1"
            )
            await gateway.stop()
            return result

        status, body = asyncio.run(scenario())
        assert status == 200
        assert body["alert"] is True

    def test_unknown_route_and_method(self):
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            missing = await http(host, port, "GET", "/nope")
            wrong = await http(host, port, "POST", "/healthz")
            await gateway.stop()
            return missing, wrong

        (m_status, _), (w_status, _) = asyncio.run(scenario())
        assert m_status == 404
        assert w_status == 405

    def test_reload_rejects_bad_json(self):
        async def scenario():
            gateway = DetectionGateway(SignatureStore(toy_detector()))
            host, port = await gateway.start()
            status, body = await http(
                host, port, "POST", "/reload", "{broken"
            )
            await gateway.stop()
            return status, body, gateway.store.version

        status, body, version = asyncio.run(scenario())
        assert status == 400
        assert "error" in body
        assert version == 1


class TestHotReload:
    def test_admission_time_snapshot(self):
        """Requests admitted before a swap answer with the old version,
        later ones with the new — deterministically, via the in-process
        admission path (no scheduling races)."""

        async def scenario():
            store = SignatureStore(toy_detector())
            gateway = DetectionGateway(
                store, GatewayConfig(workers=1)
            )
            await gateway.start()
            # Admit without yielding to the worker in between: the swap
            # lands while request 1 is still queued (in flight).
            future_old = await gateway._admit("id=1' union select 1")
            store.swap_detector(
                DeterministicRuleSet(
                    "toy2", [Rule(9, "any", r".")]
                ),
                source="test",
            )
            future_new = await gateway._admit("id=1' union select 1")
            old = json.loads(await future_old)
            new = json.loads(await future_new)
            await gateway.stop()
            return old, new

        old, new = asyncio.run(scenario())
        assert old["version"] == 1 and old["matched"] == [1]
        assert new["version"] == 2 and new["matched"] == [9]

    @pytest.mark.smoke
    def test_midstream_reload_parity(self, small_signatures):
        """Offline/online parity on a fixed trace across a live swap.

        First half served by the full signature set, second half by a
        reduced set; each half must match the corresponding offline
        engine bit-for-bit.
        """
        full = small_signatures
        reduced = SignatureSet(list(full)[: max(1, len(full) // 2)])
        trace = build_load_trace(seed=11, n_benign=40, n_vulnerabilities=2)
        payloads = trace.payloads()[:60]
        half = len(payloads) // 2

        async def scenario():
            store = SignatureStore(PSigeneDetector(full))
            gateway = DetectionGateway(store, GatewayConfig(workers=2))
            host, port = await gateway.start()
            first = await send_lines(host, port, payloads[:half])
            status, body = await http(
                host, port, "POST", "/reload",
                signature_set_to_json(reduced),
            )
            second = await send_lines(host, port, payloads[half:])
            await gateway.stop()
            return first, (status, body), second

        first, (status, body), second = asyncio.run(scenario())
        assert status == 200 and body["version"] == 2
        assert all(r["version"] == 1 for r in first)
        assert all(r["version"] == 2 for r in second)

        offline_full = offline_detections(
            PSigeneDetector(full), payloads[:half]
        )
        offline_reduced = offline_detections(
            PSigeneDetector(reduced), payloads[half:]
        )
        assert parity_of_responses(offline_full, first).ok
        assert parity_of_responses(offline_reduced, second).ok


class TestLoadgenParity:
    @pytest.mark.smoke
    def test_gateway_matches_offline_engine(self, small_signatures):
        """End-to-end: the loadgen replay agrees with SignatureEngine.run
        on every alert flag, sid list, and score."""
        detector = PSigeneDetector(small_signatures)
        trace = build_load_trace(seed=9, n_benign=60, n_vulnerabilities=2)
        payloads = trace.payloads()[:120]

        report = asyncio.run(run_loadgen(
            SignatureStore(detector),
            payloads,
            queue_bound=64,
            policy="block",
            workers=2,
            connections=4,
            window=8,
        ))
        assert report.parity is not None and report.parity.ok
        assert report.shed == 0
        assert report.completed == len(payloads)

        engine_run = SignatureEngine(detector).run(Trace(
            name="offline",
            requests=[HttpRequest(query=p) for p in payloads],
        ))
        assert report.alerts == engine_run.alert_count


class TestDrainOnShutdown:
    def test_queued_work_answered_before_close(self):
        async def scenario():
            gateway = DetectionGateway(
                SignatureStore(toy_detector()),
                GatewayConfig(workers=1, queue_bound=64),
            )
            host, port = await gateway.start()
            futures = [
                await gateway._admit(f"id={i}' union select 1")
                for i in range(20)
            ]
            await gateway.stop()
            return [json.loads(await future) for future in futures]

        responses = asyncio.run(scenario())
        assert len(responses) == 20
        assert all(r["alert"] for r in responses)
