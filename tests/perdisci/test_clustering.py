"""Tests for Perdisci fine-grained clustering."""

import numpy as np
import pytest

from repro.perdisci import (
    NAME_WEIGHT,
    VALUE_WEIGHT,
    build_embedding,
    embed,
    fine_grained_clustering,
)


PAYLOADS = (
    ["id=%d%%27+union+select+1,2" % i for i in range(10)]
    + ["cat=%d+and+sleep(5)" % i for i in range(10)]
    + ["q=%d%%27+or+1%%3D1--" % i for i in range(10)]
)


class TestEmbedding:
    def test_vocabulary_built(self):
        embedding = build_embedding(PAYLOADS)
        assert embedding.dimension > 10
        assert "id" in embedding.name_index
        assert "cat" in embedding.name_index

    def test_bigram_cap(self):
        embedding = build_embedding(PAYLOADS, max_bigrams=5)
        assert len(embedding.bigram_index) == 5

    def test_vectors_shape(self):
        embedding = build_embedding(PAYLOADS)
        vectors = embed(PAYLOADS, embedding)
        assert vectors.shape == (len(PAYLOADS), embedding.dimension)

    def test_weights_applied(self):
        embedding = build_embedding(PAYLOADS)
        vectors = embed(PAYLOADS, embedding)
        n_bigrams = len(embedding.bigram_index)
        value_norm = np.linalg.norm(vectors[0, :n_bigrams])
        name_norm = np.linalg.norm(vectors[0, n_bigrams:])
        assert value_norm == pytest.approx(np.sqrt(VALUE_WEIGHT))
        assert name_norm == pytest.approx(np.sqrt(NAME_WEIGHT))

    def test_unknown_tokens_ignored(self):
        embedding = build_embedding(PAYLOADS[:5])
        vectors = embed(["zz=completely+new+stuff"], embedding)
        assert np.isfinite(vectors).all()


class TestFineGrainedClustering:
    def test_groups_by_technique(self):
        embedding = build_embedding(PAYLOADS)
        vectors = embed(PAYLOADS, embedding)
        result = fine_grained_clustering(vectors, k_max=10)
        truth = np.repeat([0, 1, 2], 10)
        # Each found cluster must be technique-pure.
        for label in np.unique(result.labels):
            members = truth[result.labels == label]
            assert len(np.unique(members)) == 1

    def test_db_curve_recorded(self):
        embedding = build_embedding(PAYLOADS)
        vectors = embed(PAYLOADS, embedding)
        result = fine_grained_clustering(vectors, k_max=10)
        assert result.k in result.db_by_k
        assert result.db_index == min(result.db_by_k.values())

    def test_labels_cover_all_rows(self):
        embedding = build_embedding(PAYLOADS)
        vectors = embed(PAYLOADS, embedding)
        result = fine_grained_clustering(vectors, k_max=8)
        assert result.labels.shape == (len(PAYLOADS),)
