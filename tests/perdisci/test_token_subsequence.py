"""Tests for token-subsequence signature machinery."""

import pytest

from repro.perdisci import TokenSignature, common_token_subsequence, tokenize


class TestTokenize:
    def test_words_and_punctuation(self):
        assert tokenize("id=1' or 1=1") == [
            "id", "=", "1", "'", "or", "1", "=", "1"
        ]

    def test_lowercases(self):
        assert tokenize("UNION SELECT") == ["union", "select"]

    def test_underscore_words_whole(self):
        assert tokenize("information_schema") == ["information_schema"]

    def test_empty(self):
        assert tokenize("") == []


class TestCommonSubsequence:
    def test_identical_payloads(self):
        tokens = common_token_subsequence(["a=1' or 1", "a=1' or 1"])
        assert tokens == tokenize("a=1' or 1")

    def test_common_core_extracted(self):
        payloads = [
            "id=7' union select 1,2-- -",
            "id=9' union select 8,3-- -",
        ]
        tokens = common_token_subsequence(payloads)
        assert "union" in tokens
        assert "select" in tokens
        assert tokens.index("union") < tokens.index("select")

    def test_order_preserved(self):
        tokens = common_token_subsequence(["a b c", "a x b y c"])
        assert tokens == ["a", "b", "c"]

    def test_disjoint_payloads_empty(self):
        assert common_token_subsequence(["aaa bbb", "ccc ddd"]) == []

    def test_empty_input(self):
        assert common_token_subsequence([]) == []

    def test_single_payload_is_itself(self):
        assert common_token_subsequence(["x=1"]) == ["x", "=", "1"]


class TestTokenSignature:
    def test_pattern_rendering(self):
        signature = TokenSignature(["union", "select", "("])
        assert signature.pattern == r"union.*select.*\("

    def test_matches_in_order(self):
        signature = TokenSignature(["union", "select"])
        assert signature.matches("1' UNION ALL SELECT 2")
        assert not signature.matches("select then union")  # wrong order?

    def test_empty_signature_never_matches(self):
        assert not TokenSignature([]).matches("anything")

    def test_content_length(self):
        assert TokenSignature(["abc", "=", "xy"]).content_length == 6

    def test_similarity_identical(self):
        a = TokenSignature(["a", "b"])
        assert a.similarity(TokenSignature(["a", "b"])) == 1.0

    def test_similarity_disjoint(self):
        a = TokenSignature(["a"])
        assert a.similarity(TokenSignature(["b"])) == 0.0

    def test_similarity_partial(self):
        a = TokenSignature(["a", "b", "c"])
        b = TokenSignature(["b", "c", "d"])
        assert a.similarity(b) == pytest.approx(0.5)
