"""Tests for the end-to-end Perdisci system (Experiment 3 behaviour)."""

import numpy as np
import pytest

from repro.corpus import CorpusGenerator
from repro.perdisci import PerdisciSystem


@pytest.fixture(scope="module")
def corpus():
    return [s.payload for s in CorpusGenerator(seed=31).generate(800)]


@pytest.fixture(scope="module")
def fitted(corpus):
    system = PerdisciSystem(max_training=300, seed=2)
    report = system.fit(corpus)
    return system, report


class TestPipelineStages:
    def test_filter_reduces_clusters(self, fitted):
        _, report = fitted
        assert report.clusters_after_filter < report.fine_grained.k

    def test_merging_reduces_further(self, fitted):
        _, report = fitted
        assert len(report.signatures) <= report.clusters_after_filter

    def test_signatures_not_degenerate(self, fitted):
        system, report = fitted
        for signature in report.signatures:
            assert signature.content_length >= system.min_content_length
            substantive = [
                t for t in signature.tokens
                if len(t) >= 2 and t not in system._param_names
            ]
            assert substantive, signature.pattern

    def test_too_few_payloads_rejected(self):
        with pytest.raises(ValueError):
            PerdisciSystem().fit(["a=1", "b=2"])


class TestDetectionCharacter:
    def test_train_on_train_much_higher_than_fresh(self, fitted, corpus):
        """The paper's key finding: the approach memorizes its training
        samples (76.5% on seen data) but generalizes poorly (5.79%)."""
        system, _ = fitted
        rng = np.random.default_rng(2)
        picked = rng.choice(len(corpus), 300, replace=False)
        training = [corpus[i] for i in sorted(picked)]
        train_tpr = np.mean([system.matches(p) for p in training])

        fresh = [
            f"id={i}%27%20AND%20{1000+i}%3D{1000+i}--%20-"
            for i in range(200)
        ]
        fresh_tpr = np.mean([system.matches(p) for p in fresh])
        assert train_tpr > fresh_tpr + 0.1

    def test_zero_false_positives_on_benign(self, fitted):
        from repro.corpus import BenignTrafficGenerator

        system, _ = fitted
        benign = BenignTrafficGenerator(seed=5).trace(2000)
        false_positives = sum(
            1 for p in benign.payloads() if system.matches(p)
        )
        assert false_positives <= 1  # paper: exactly 0

    def test_unfitted_system_matches_nothing(self):
        assert not PerdisciSystem().matches("id=1' union select 1")
