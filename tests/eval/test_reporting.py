"""Tests for table formatting."""

from repro.eval import format_table, percent


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["longer-name", 22]],
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table V")
        assert text.splitlines()[0] == "Table V"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_header_rule_present(self):
        text = format_table(["col"], [["v"]])
        assert "---" in text.splitlines()[1]


class TestPercent:
    def test_paper_style(self):
        assert percent(0.9052) == "90.52"

    def test_digits(self):
        assert percent(0.000370, 4) == "0.0370"

    def test_zero(self):
        assert percent(0.0) == "0.00"
