"""Tests for EvaluationContext helpers."""

import numpy as np

from repro.http import HttpRequest, Trace


class TestPsigeneSets:
    def test_nine_and_seven_subsets(self, context):
        nine, seven = context.psigene_sets()
        assert len(seven) <= 7
        assert len(nine) <= 9
        assert len(seven) <= len(nine)
        assert len(nine) <= len(context.result.signature_set)

    def test_seven_is_prefix_of_nine(self, context):
        nine, seven = context.psigene_sets()
        nine_ids = [s.bicluster_index for s in nine]
        seven_ids = [s.bicluster_index for s in seven]
        assert seven_ids == nine_ids[: len(seven_ids)]


class TestScoreCache:
    def test_cache_returns_same_object(self, context):
        trace = Trace(name="cache-probe", requests=[
            HttpRequest(query="id=1' union select 1"),
            HttpRequest(query="q=hello"),
        ])
        full = context.result.signature_set
        first = context.signature_scores(full, trace)
        second = context.signature_scores(full, trace)
        assert first is second

    def test_scores_match_direct_computation(self, context):
        trace = Trace(name="direct-probe", requests=[
            HttpRequest(query="id=2' or 1=1-- -"),
        ])
        full = context.result.signature_set
        cached = context.signature_scores(full, trace)
        direct = full.probabilities("id=2' or 1=1-- -")
        assert np.allclose(cached[0], direct)

    def test_shape(self, context):
        trace = Trace(name="shape-probe", requests=[
            HttpRequest(query=f"id={i}") for i in range(4)
        ])
        full = context.result.signature_set
        scores = context.signature_scores(full, trace)
        assert scores.shape == (4, len(full))

    def test_empty_trace(self, context):
        full = context.result.signature_set
        scores = context.signature_scores(
            full, Trace(name="empty-probe")
        )
        assert scores.shape[0] == 0
