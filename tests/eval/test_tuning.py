"""Tests for per-signature operating-point tuning."""

import numpy as np
import pytest

from repro.eval import tune_thresholds
from repro.http import HttpRequest, LABEL_ATTACK, LABEL_BENIGN, Trace


def _trace(payloads, label):
    return Trace(
        name=label,
        requests=[HttpRequest(query=p, label=label) for p in payloads],
    )


@pytest.fixture(scope="module")
def tuning_traffic():
    attacks = _trace([
        "id=1' union select 1,2,3-- -",
        "id=2' union select 4,5,6-- -",
        "q=7' and sleep(9)-- -",
        "u=8' or '1'='1",
        "x=9' and extractvalue(1,concat(0x7e,version()))-- -",
    ] * 10, LABEL_ATTACK)
    benign = _trace([
        "course=cs101&term=fall2012",
        "q=campus+shuttle+schedule",
        "invoice=1234&amount=10.00",
        "name=alice+o%27connor",
    ] * 25, LABEL_BENIGN)
    return attacks, benign


class TestTuneThresholds:
    def test_budget_respected(self, small_signatures, tuning_traffic):
        attacks, benign = tuning_traffic
        tuned, tunings = tune_thresholds(
            small_signatures, attacks, benign,
            max_fpr_per_signature=0.0,
        )
        benign_payloads = benign.payloads()
        for signature in tuned:
            false_positives = sum(
                1 for p in benign_payloads
                if signature.probability(
                    tuned.normalizer(p)
                ) >= signature.threshold
            )
            assert false_positives == 0

    def test_detection_preserved(self, small_signatures, tuning_traffic):
        attacks, benign = tuning_traffic
        tuned, _ = tune_thresholds(small_signatures, attacks, benign)
        caught = sum(1 for p in attacks.payloads() if tuned.matches(p))
        assert caught / len(attacks) > 0.6

    def test_one_record_per_signature(self, small_signatures,
                                      tuning_traffic):
        attacks, benign = tuning_traffic
        _, tunings = tune_thresholds(small_signatures, attacks, benign)
        assert len(tunings) == len(small_signatures)
        assert [t.bicluster_index for t in tunings] == [
            s.bicluster_index for s in small_signatures
        ]

    def test_useless_signatures_disabled(self, small_signatures,
                                         tuning_traffic):
        attacks, benign = tuning_traffic
        # Demand an impossible TPR: everything gets disabled.
        tuned, tunings = tune_thresholds(
            small_signatures, attacks, benign, min_tpr=1.1
        )
        assert len(tuned) == 0
        assert all(not t.enabled for t in tunings)

    def test_tighter_budget_never_lowers_thresholds(
        self, small_signatures, tuning_traffic
    ):
        attacks, benign = tuning_traffic
        _, loose = tune_thresholds(
            small_signatures, attacks, benign,
            max_fpr_per_signature=0.5,
        )
        _, tight = tune_thresholds(
            small_signatures, attacks, benign,
            max_fpr_per_signature=0.0,
        )
        for a, b in zip(loose, tight):
            assert b.threshold >= a.threshold - 1e-12

    def test_invalid_budget_rejected(self, small_signatures,
                                     tuning_traffic):
        attacks, benign = tuning_traffic
        with pytest.raises(ValueError):
            tune_thresholds(
                small_signatures, attacks, benign,
                max_fpr_per_signature=2.0,
            )

    def test_original_set_not_mutated(self, small_signatures,
                                      tuning_traffic):
        attacks, benign = tuning_traffic
        before = [s.threshold for s in small_signatures]
        tune_thresholds(small_signatures, attacks, benign)
        assert [s.threshold for s in small_signatures] == before
