"""Tests for test-dataset construction."""

import pytest

from repro.eval import build_test_datasets
from repro.http import LABEL_ATTACK, LABEL_BENIGN


@pytest.fixture(scope="module")
def datasets():
    return build_test_datasets(seed=5, n_benign=3000, n_vulnerabilities=20)


class TestDatasets:
    def test_three_traces(self, datasets):
        assert datasets.sqlmap.name.startswith("sqlmap")
        assert datasets.arachni.name == "arachni-set"
        assert datasets.benign.name == "benign-week"

    def test_arachni_set_merges_vega(self, datasets):
        payloads = datasets.arachni.payloads()
        assert any("+or+" in p for p in payloads)      # arachni encoding
        assert any(p.endswith("-0") for p in payloads)  # vega probes

    def test_labels(self, datasets):
        assert all(
            r.label == LABEL_ATTACK for r in datasets.sqlmap.requests
        )
        assert all(
            r.label == LABEL_BENIGN for r in datasets.benign.requests
        )

    def test_benign_size_configurable(self, datasets):
        assert len(datasets.benign) == 3000

    def test_scaling_with_vulnerabilities(self):
        small = build_test_datasets(
            seed=5, n_benign=10, n_vulnerabilities=5
        )
        assert len(small.sqlmap) < 600

    def test_deterministic(self):
        first = build_test_datasets(seed=9, n_benign=50,
                                    n_vulnerabilities=3)
        second = build_test_datasets(seed=9, n_benign=50,
                                     n_vulnerabilities=3)
        assert first.sqlmap.payloads() == second.sqlmap.payloads()
        assert first.benign.payloads() == second.benign.payloads()
