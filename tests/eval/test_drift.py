"""Tests for the concept-drift study."""

import pytest

from repro.corpus.families import FAMILIES
from repro.eval import drift_study, drifted_families


class TestDriftedFamilies:
    def test_same_families_different_weights(self):
        tilted = drifted_families(shift=4.0, seed=1)
        assert [f.name for f in tilted] == [f.name for f in FAMILIES]
        assert [f.templates for f in tilted] == [
            f.templates for f in FAMILIES
        ]
        assert any(
            t.weight != o.weight for t, o in zip(tilted, FAMILIES)
        )

    def test_shift_one_is_identity_weights_scale(self):
        tilted = drifted_families(shift=1.0, seed=2)
        for t, o in zip(tilted, FAMILIES):
            assert t.weight == pytest.approx(o.weight)

    def test_weights_stay_positive(self):
        for seed in range(5):
            tilted = drifted_families(shift=8.0, seed=seed)
            assert all(f.weight > 0 for f in tilted)

    def test_invalid_shift_rejected(self):
        with pytest.raises(ValueError):
            drifted_families(shift=0.5)

    def test_deterministic(self):
        first = [f.weight for f in drifted_families(shift=3.0, seed=7)]
        second = [f.weight for f in drifted_families(shift=3.0, seed=7)]
        assert first == second


class TestDriftStudy:
    @pytest.fixture(scope="class")
    def rounds(self, small_pipeline, small_result):
        return drift_study(
            small_pipeline, small_result,
            epochs=2, shift=4.0, samples_per_epoch=200, seed=55,
        )

    def test_one_round_per_epoch(self, rounds):
        assert [r.epoch for r in rounds] == [0, 1]

    def test_updates_never_hurt_much(self, rounds):
        for round_ in rounds:
            assert round_.tpr_after_update >= (
                round_.tpr_before_update - 0.05
            )

    def test_detection_stays_meaningful_under_drift(self, rounds):
        # Generalized signatures are the whole point: even drifted
        # traffic is mostly caught.
        assert all(r.tpr_before_update > 0.5 for r in rounds)

    def test_rates_are_rates(self, rounds):
        for round_ in rounds:
            assert 0.0 <= round_.tpr_before_update <= 1.0
            assert 0.0 <= round_.tpr_after_update <= 1.0


class TestShiftBoundary:
    """Threshold boundary cases around the shift >= 1.0 contract."""

    def test_shift_exactly_one_is_accepted(self):
        tilted = drifted_families(shift=1.0, seed=0)
        assert len(tilted) == len(FAMILIES)

    def test_shift_just_below_one_rejected(self):
        with pytest.raises(ValueError, match="shift must be >= 1.0"):
            drifted_families(shift=1.0 - 1e-9)

    def test_shift_zero_and_negative_rejected(self):
        for shift in (0.0, -3.0):
            with pytest.raises(ValueError):
                drifted_families(shift=shift)

    def test_large_shift_still_valid_distribution(self):
        tilted = drifted_families(shift=100.0, seed=3)
        assert all(f.weight > 0 for f in tilted)
        assert sum(f.weight for f in tilted) > 0


class TestSeedDeterminism:
    def test_drifted_families_seeds_are_independent(self):
        # Different seeds tilt differently; the same seed never varies.
        a = [f.weight for f in drifted_families(shift=3.0, seed=1)]
        b = [f.weight for f in drifted_families(shift=3.0, seed=2)]
        assert a != b

    def test_drift_study_same_seed_identical_rounds(
        self, small_pipeline, small_result
    ):
        kwargs = dict(
            epochs=2, shift=3.0, samples_per_epoch=120, seed=77
        )
        first = drift_study(small_pipeline, small_result, **kwargs)
        second = drift_study(small_pipeline, small_result, **kwargs)
        assert [
            (r.epoch, r.shift, r.tpr_before_update, r.tpr_after_update)
            for r in first
        ] == [
            (r.epoch, r.shift, r.tpr_before_update, r.tpr_after_update)
            for r in second
        ]

    def test_drift_study_seed_changes_traffic(
        self, small_pipeline, small_result
    ):
        kwargs = dict(epochs=1, shift=3.0, samples_per_epoch=120)
        first = drift_study(
            small_pipeline, small_result, seed=10, **kwargs
        )
        second = drift_study(
            small_pipeline, small_result, seed=11, **kwargs
        )
        assert (
            first[0].tpr_before_update != second[0].tpr_before_update
            or first[0].tpr_after_update != second[0].tpr_after_update
        )
