"""Tests for the concept-drift study."""

import pytest

from repro.corpus.families import FAMILIES
from repro.eval import drift_study, drifted_families


class TestDriftedFamilies:
    def test_same_families_different_weights(self):
        tilted = drifted_families(shift=4.0, seed=1)
        assert [f.name for f in tilted] == [f.name for f in FAMILIES]
        assert [f.templates for f in tilted] == [
            f.templates for f in FAMILIES
        ]
        assert any(
            t.weight != o.weight for t, o in zip(tilted, FAMILIES)
        )

    def test_shift_one_is_identity_weights_scale(self):
        tilted = drifted_families(shift=1.0, seed=2)
        for t, o in zip(tilted, FAMILIES):
            assert t.weight == pytest.approx(o.weight)

    def test_weights_stay_positive(self):
        for seed in range(5):
            tilted = drifted_families(shift=8.0, seed=seed)
            assert all(f.weight > 0 for f in tilted)

    def test_invalid_shift_rejected(self):
        with pytest.raises(ValueError):
            drifted_families(shift=0.5)

    def test_deterministic(self):
        first = [f.weight for f in drifted_families(shift=3.0, seed=7)]
        second = [f.weight for f in drifted_families(shift=3.0, seed=7)]
        assert first == second


class TestDriftStudy:
    @pytest.fixture(scope="class")
    def rounds(self, small_pipeline, small_result):
        return drift_study(
            small_pipeline, small_result,
            epochs=2, shift=4.0, samples_per_epoch=200, seed=55,
        )

    def test_one_round_per_epoch(self, rounds):
        assert [r.epoch for r in rounds] == [0, 1]

    def test_updates_never_hurt_much(self, rounds):
        for round_ in rounds:
            assert round_.tpr_after_update >= (
                round_.tpr_before_update - 0.05
            )

    def test_detection_stays_meaningful_under_drift(self, rounds):
        # Generalized signatures are the whole point: even drifted
        # traffic is mostly caught.
        assert all(r.tpr_before_update > 0.5 for r in rounds)

    def test_rates_are_rates(self, rounds):
        for round_ in rounds:
            assert 0.0 <= round_.tpr_before_update <= 1.0
            assert 0.0 <= round_.tpr_after_update <= 1.0
