"""Tests for the experiment drivers — every table and figure regenerates
with the right structure and the paper's qualitative shape."""

import numpy as np
import pytest

from repro.eval import (
    experiment2_incremental,
    experiment3_perdisci,
    experiment4_performance,
    figure2_heatmap,
    figure3_roc,
    figure4_cumulative_tpr,
    table1_vulnerability_coverage,
    table2_feature_sources,
    table3_signature_features,
    table4_ruleset_comparison,
    table5_accuracy,
    table6_cluster_details,
)


class TestTable1:
    def test_four_printed_rows_and_coverage(self, context):
        result = table1_vulnerability_coverage(context)
        assert len(result["table1_rows"]) == 4
        assert result["cohort_size"] >= 28
        # Section II-A: every reviewed vulnerability had matching samples.
        assert result["covered"] == result["cohort_size"]


class TestTable2:
    def test_three_sources_with_examples(self):
        rows = table2_feature_sources()
        assert len(rows) == 3
        assert sum(r["features"] for r in rows) == 477
        assert all(r["examples"] for r in rows)


class TestTable3:
    def test_signature_feature_listing(self, context):
        index = context.result.signature_set[0].bicluster_index
        result = table3_signature_features(context, bicluster_index=index)
        assert result["features"]
        assert len(result["theta"]) == len(result["features"]) + 1
        assert f"Sig_b{index}" in result["describe"]

    def test_unknown_bicluster_raises(self, context):
        with pytest.raises(KeyError):
            table3_signature_features(context, bicluster_index=999)


class TestTable4:
    def test_rows_and_paper_statistics(self):
        rows = {r["rules"]: r for r in table4_ruleset_comparison()}
        assert rows["bro"]["sqli_rules"] == 6
        assert rows["bro"]["enabled_pct"] == 100.0
        assert rows["snort"]["sqli_rules"] == 79
        assert rows["snort"]["enabled_pct"] == pytest.approx(61, abs=1)
        assert rows["emerging-threats"]["sqli_rules"] == 4231
        assert rows["emerging-threats"]["enabled_pct"] == 0.0
        assert rows["modsecurity"]["sqli_rules"] == 34


class TestTable5:
    @pytest.fixture(scope="class")
    def rows(self, context):
        return {r["rules"]: r for r in table5_accuracy(context)}

    def test_five_detectors(self, rows):
        assert len(rows) == 5 or len(rows) == 4  # 9- and 7-set may tie

    def test_modsec_beats_deterministic_rulesets(self, rows):
        # At reduced scale pSigene and ModSec can swap; the robust part of
        # Table V's ordering is ModSec > Snort > Bro (the full-scale bench
        # asserts the complete ordering).
        modsec = rows["modsecurity"]
        assert modsec["tpr_sqlmap"] > rows["snort-et"]["tpr_sqlmap"]
        assert modsec["tpr_sqlmap"] > rows["bro"]["tpr_sqlmap"]

    def test_psigene_beats_snort_and_bro_on_tpr(self, rows):
        psigene = max(
            (row for name, row in rows.items() if "psigene" in name),
            key=lambda r: r["tpr_sqlmap"],
        )
        assert psigene["tpr_sqlmap"] > rows["snort-et"]["tpr_sqlmap"]
        assert psigene["tpr_sqlmap"] > rows["bro"]["tpr_sqlmap"]

    def test_bro_zero_fpr(self, rows):
        assert rows["bro"]["fpr"] == 0.0

    def test_snort_worst_fpr(self, rows):
        snort_fpr = rows["snort-et"]["fpr"]
        for name, row in rows.items():
            assert snort_fpr >= row["fpr"], name

    def test_psigene_fpr_below_snort(self, rows):
        psigene = min(
            (row for name, row in rows.items() if "psigene" in name),
            key=lambda r: r["fpr"],
        )
        assert psigene["fpr"] < rows["snort-et"]["fpr"]


class TestFigure3:
    def test_one_curve_per_signature(self, context):
        curves = figure3_roc(context)
        assert len(curves) == len(context.result.signature_set)

    def test_curves_dominate_chance(self, context):
        curves = figure3_roc(context)
        aucs = [curve.auc() for curve in curves.values()]
        assert np.mean(aucs) > 0.6

    def test_variability_across_signatures(self, context):
        """Paper: 'there is wide variability in the quality of the
        signatures.'"""
        curves = figure3_roc(context)
        aucs = [curve.auc(max_fpr=0.05) for curve in curves.values()]
        assert max(aucs) - min(aucs) > 0.005


class TestFigure4:
    def test_rows_ordered_best_first(self, context):
        rows = figure4_cumulative_tpr(context)
        individual = [r["individual_tpr"] for r in rows]
        assert individual == sorted(individual, reverse=True)

    def test_cumulative_monotone(self, context):
        rows = figure4_cumulative_tpr(context)
        cumulative = [r["cumulative_tpr"] for r in rows]
        assert all(b >= a - 1e-12 for a, b in zip(cumulative, cumulative[1:]))

    def test_marginals_sum_to_total(self, context):
        rows = figure4_cumulative_tpr(context)
        assert sum(r["marginal"] for r in rows) == pytest.approx(
            rows[-1]["cumulative_tpr"]
        )

    def test_every_signature_contributes_nontrivially(self, context):
        # Paper: "all of the signatures make non-trivial contribution".
        rows = figure4_cumulative_tpr(context)
        assert rows[0]["marginal"] > 0.05


class TestTable6:
    def test_rows_match_signatures(self, context):
        rows = table6_cluster_details(context)
        assert len(rows) == len(context.result.signature_set)

    def test_pruning_column_relationship(self, context):
        for row in table6_cluster_details(context):
            assert row["features_signature"] <= row["features_biclustering"]


class TestExperiment2:
    def test_incremental_improves_tpr(self, context):
        rows = experiment2_incremental(context, fractions=(0.2, 0.4))
        assert len(rows) == 3
        tprs = [r["tpr_sqlmap"] for r in rows]
        # Paper: TPR rises with each increment (86.53 → 89.13 → 91.15).
        assert tprs[1] >= tprs[0] - 0.02
        assert tprs[2] >= tprs[0]

    def test_fpr_does_not_collapse(self, context):
        rows = experiment2_incremental(context, fractions=(0.2,))
        assert all(r["fpr"] < 0.02 for r in rows)


class TestExperiment3:
    @pytest.fixture(scope="class")
    def outcome(self, context):
        return experiment3_perdisci(context, max_training=400)

    def test_cluster_funnel(self, outcome):
        # Paper: 145 fine-grained → 27 filtered → 10 signatures.
        assert outcome["fine_grained_clusters"] > (
            outcome["clusters_after_filter"]
        )
        assert outcome["clusters_after_filter"] >= (
            outcome["final_signatures"]
        )

    def test_low_generalization_tpr(self, outcome):
        # Paper: 5.79% on unseen scanner traffic.
        assert outcome["tpr"] < 0.35

    def test_near_zero_fpr(self, outcome):
        assert outcome["fpr"] < 0.001

    def test_memorization_gap(self, outcome):
        # Paper: 76.5% on its own training samples.
        assert outcome["train_on_train_tpr"] > outcome["tpr"] + 0.1


class TestExperiment4:
    def test_psigene_slowest(self, context):
        rows = experiment4_performance(context, sample_requests=200)
        by_name = {r["detector"]: r for r in rows}
        assert by_name["psigene"]["avg_us"] > by_name["bro"]["avg_us"]
        assert by_name["psigene"]["avg_us"] > (
            by_name["modsecurity"]["avg_us"]
        )

    def test_timings_positive_and_ordered(self, context):
        for row in experiment4_performance(context, sample_requests=100):
            assert 0 < row["min_us"] <= row["avg_us"] <= row["max_us"]


class TestFigure2:
    def test_heatmap_builds(self, context):
        heatmap, text = figure2_heatmap(context)
        assert heatmap.z.shape[0] > 0
        assert text.count("\n") > 5
