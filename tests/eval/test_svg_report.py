"""Tests for the SVG chart layer and the HTML report."""

import re
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.eval.svg import LineChart, render_dendrogram_svg
from repro.cluster import upgma


class TestLineChart:
    def _chart(self):
        chart = LineChart(
            title="ROC", x_label="FPR", y_label="TPR",
            x_max=0.05, y_max=1.0,
        )
        chart.add("s1", [0.0, 0.01, 0.05], [0.0, 0.6, 0.9])
        chart.add("s2", [0.0, 0.02, 0.05], [0.0, 0.4, 0.7])
        return chart

    def test_valid_xml(self):
        ET.fromstring(self._chart().render())

    def test_one_polyline_per_series(self):
        svg = self._chart().render()
        assert svg.count("<polyline") == 2

    def test_legend_entries(self):
        svg = self._chart().render()
        assert ">s1<" in svg
        assert ">s2<" in svg

    def test_title_and_axes(self):
        svg = self._chart().render()
        assert ">ROC<" in svg
        assert ">FPR<" in svg
        assert ">TPR<" in svg

    def test_points_within_canvas(self):
        svg = self._chart().render()
        chart = self._chart()
        for match in re.finditer(r'points="([^"]+)"', svg):
            for pair in match.group(1).split():
                x, y = map(float, pair.split(","))
                assert 0 <= x <= chart.width
                assert 0 <= y <= chart.height

    def test_escaping(self):
        chart = LineChart(title="a<b&c", x_label="x", y_label="y")
        chart.add("s", [0, 1], [0, 1])
        ET.fromstring(chart.render())

    def test_auto_limits(self):
        chart = LineChart(title="t", x_label="x", y_label="y")
        chart.add("s", [0, 10], [0, 5])
        ET.fromstring(chart.render())

    def test_empty_chart_renders(self):
        ET.fromstring(
            LineChart(title="t", x_label="x", y_label="y").render()
        )


class TestDendrogramSvg:
    def test_valid_xml_and_path_count(self):
        points = np.random.default_rng(0).normal(size=(12, 3))
        linkage = upgma(points)
        svg = render_dendrogram_svg(linkage, 12)
        ET.fromstring(svg)
        # One right-angle path per merge.
        assert svg.count("<path") == 11

    def test_two_leaves(self):
        linkage = upgma(np.array([[0.0], [1.0]]))
        ET.fromstring(render_dendrogram_svg(linkage, 2))


class TestHtmlReport:
    @pytest.fixture(scope="class")
    def html(self, request):
        context = request.getfixturevalue("context")
        from repro.eval import render_report

        return render_report(context)

    def test_report_contains_all_sections(self, html):
        for heading in (
            "Training summary", "Table IV", "Table V", "Table VI",
            "Figure 2", "Figure 3", "Figure 4",
        ):
            assert heading in html

    def test_embedded_svg_charts(self, html):
        assert html.count("<svg") >= 3

    def test_detector_rows_present(self, html):
        for name in ("modsecurity", "snort-et", "bro", "psigene"):
            assert name in html

    def test_write_report(self, request, tmp_path):
        context = request.getfixturevalue("context")
        from repro.eval import write_report

        path = tmp_path / "report.html"
        write_report(context, str(path))
        assert path.read_text().startswith("<!DOCTYPE html>")
