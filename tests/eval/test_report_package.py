"""Tests for the merged repro.eval.report package and its shims."""

import importlib
import sys
import warnings

import pytest


class TestEntryPoints:
    def test_tables_matches_format_table(self):
        from repro.eval.report import format_table, tables

        headers = ["A", "B"]
        rows = [[1, 2], [3, 4]]
        assert tables(headers, rows, title="t") == format_table(
            headers, rows, title="t"
        )

    def test_html_is_render_report(self, context):
        from repro.eval.report import html, render_report

        assert html(context, title="x") == render_report(
            context, title="x"
        )

    def test_package_exports_historical_names(self):
        import repro.eval.report as report

        for name in (
            "render_report", "write_report", "format_table", "percent",
        ):
            assert hasattr(report, name), name

    def test_eval_top_level_still_exports_everything(self):
        import repro.eval as evaluation

        for name in (
            "format_table", "percent", "render_report", "write_report",
            "html", "tables",
        ):
            assert hasattr(evaluation, name), name


class TestDeprecatedShim:
    def test_reporting_import_warns_but_works(self):
        sys.modules.pop("repro.eval.reporting", None)
        with pytest.warns(DeprecationWarning, match="repro.eval.report"):
            import repro.eval.reporting as reporting
        assert reporting.format_table(["A"], [["1"]]).startswith("A")
        assert reporting.percent(0.9052) == "90.52"

    def test_submodules_import_cleanly(self):
        # importlib, not `from ... import html`: the package defines an
        # html() *function* that shadows the submodule as an attribute.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            html_module = importlib.import_module("repro.eval.report.html")
            text_module = importlib.import_module("repro.eval.report.text")
        assert hasattr(html_module, "render_report")
        assert hasattr(text_module, "format_table")
