"""Tests for the evasion detection matrix."""

import pytest

from repro.eval.evasion import (
    BASE_ATTACKS,
    TECHNIQUES,
    evasion_matrix,
    evasion_payloads,
)
from repro.ids import PSigeneDetector
from repro.ids.rulesets import (
    build_bro_ruleset,
    build_modsec_ruleset,
    build_snort_ruleset,
)
from repro.normalize import normalize


class TestBattery:
    def test_one_list_per_technique(self):
        battery = evasion_payloads()
        assert set(battery) == {name for name, _ in TECHNIQUES}
        for payloads in battery.values():
            assert len(payloads) == len(BASE_ATTACKS)

    def test_identity_row_is_unmodified(self):
        battery = evasion_payloads()
        assert battery["identity"] == [f"id={v}" for v in BASE_ATTACKS]

    def test_evasions_normalize_back_to_identity(self):
        """Every technique must be undone by the five transformations —
        otherwise it isn't an encoding evasion, it's a different attack."""
        battery = evasion_payloads()
        identity = [normalize(p) for p in battery["identity"]]
        for name, payloads in battery.items():
            if name in ("hex-wrapping",):
                continue  # semantic rewrite, not a pure encoding
            normalized = [normalize(p) for p in payloads]
            assert normalized == identity, name


class TestMatrix:
    @pytest.fixture(scope="class")
    def cells(self, small_signatures):
        detectors = [
            PSigeneDetector(small_signatures, name="psigene"),
            build_modsec_ruleset(),
            build_snort_ruleset(),
            build_bro_ruleset(),
        ]
        return evasion_matrix(detectors)

    def _cell(self, cells, technique, detector):
        return next(
            c for c in cells
            if c.technique == technique and c.detector == detector
        )

    def test_full_cartesian_product(self, cells):
        assert len(cells) == len(TECHNIQUES) * 4

    def test_everyone_catches_identity(self, cells):
        for detector in ("psigene", "modsecurity", "snort", "bro"):
            cell = self._cell(cells, "identity", detector)
            assert cell.recall >= 0.8, detector

    def test_normalizing_detectors_survive_encodings(self, cells):
        for technique in ("double-encoding", "inline-comments",
                          "fullwidth-unicode"):
            for detector in ("psigene", "modsecurity"):
                cell = self._cell(cells, technique, detector)
                assert cell.recall >= 0.6, (technique, detector)

    def test_single_decode_detectors_fall_to_encodings(self, cells):
        for technique in ("double-encoding", "fullwidth-unicode",
                          "unicode-%u"):
            for detector in ("snort", "bro"):
                cell = self._cell(cells, technique, detector)
                identity = self._cell(cells, "identity", detector)
                assert cell.recall <= identity.recall, (
                    technique, detector
                )

    def test_recall_bounds(self, cells):
        assert all(0.0 <= c.recall <= 1.0 for c in cells)
