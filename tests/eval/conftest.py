"""Session-scoped evaluation context at reduced experiment scale."""

import pytest

from repro.eval import EvaluationContext


@pytest.fixture(scope="session")
def context():
    return EvaluationContext.build(
        seed=2012,
        n_attack_samples=1200,
        n_benign_train=4000,
        n_benign_test=6000,
        max_cluster_rows=900,
        n_vulnerabilities=25,
    )
