"""Tests for the feature catalog."""

import pytest

from repro.features import (
    SOURCE_REFERENCE,
    SOURCE_RESERVED,
    SOURCE_SIGNATURE,
    SOURCES,
    build_catalog,
)
from repro.regexlib import validate


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


class TestCatalogShape:
    def test_initial_size_matches_paper(self, catalog):
        # Section I: "we first started with 477 features".
        assert len(catalog) == 477

    def test_three_sources_present(self, catalog):
        counts = catalog.source_counts()
        assert set(counts) == set(SOURCES)
        assert all(count > 0 for count in counts.values())

    def test_reserved_words_is_largest_source(self, catalog):
        counts = catalog.source_counts()
        assert counts[SOURCE_RESERVED] > counts[SOURCE_SIGNATURE]
        assert counts[SOURCE_RESERVED] > counts[SOURCE_REFERENCE]

    def test_indices_are_dense(self, catalog):
        assert [d.index for d in catalog] == list(range(len(catalog)))

    def test_patterns_unique(self, catalog):
        patterns = catalog.patterns
        assert len(patterns) == len(set(patterns))

    def test_all_patterns_valid(self, catalog):
        for definition in catalog:
            assert validate(definition.pattern), definition.pattern


class TestPaperFeatures:
    """The features the paper prints must exist in the catalog."""

    @pytest.mark.parametrize("pattern", [
        r"\bselect\b",
        r"\bdelete\b",
        r"\bcurrent_user\b",
        r"\bvarchar\b",
        r"=",
        r"=[-0-9\%]*",
        r"<=>|r?like|sounds\s+like|regex",
        r"([^a-zA-Z&]+)?&|exists",
        r"\)?;",
        r"in\s*?\(+\s*?select",
        r"information_schema",
        r"ch(a)?r\s*?\(\s*?\d",
    ])
    def test_pattern_present(self, catalog, pattern):
        assert pattern in set(catalog.patterns)

    def test_non_mysql_keywords_in_initial_catalog(self, catalog):
        # Pruning later removes them; the initial 477 includes them.
        labels = set(catalog.labels)
        assert "kw:xp_cmdshell" in labels
        assert "kw:pg_sleep" in labels
        assert "kw:utl_http" in labels


class TestLookups:
    def test_by_label(self, catalog):
        definition = catalog.by_label("kw:select")
        assert definition.pattern == r"\bselect\b"

    def test_by_label_missing_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.by_label("kw:not-a-feature")

    def test_by_source(self, catalog):
        reserved = catalog.by_source(SOURCE_RESERVED)
        assert all(d.source == SOURCE_RESERVED for d in reserved)


class TestSubset:
    def test_reindexes_from_zero(self, catalog):
        subset = catalog.subset([5, 10, 20])
        assert [d.index for d in subset] == [0, 1, 2]

    def test_preserves_patterns(self, catalog):
        subset = catalog.subset([5, 10])
        assert subset[0].pattern == catalog[5].pattern
        assert subset[1].pattern == catalog[10].pattern

    def test_empty_subset(self, catalog):
        assert len(catalog.subset([])) == 0
