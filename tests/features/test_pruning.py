"""Tests for the 477 → active-set pruning."""

import numpy as np
import pytest

from repro.corpus import CorpusGenerator
from repro.features import FeatureExtractor, FeatureMatrix, build_catalog, prune


@pytest.fixture(scope="module")
def training_matrix():
    generator = CorpusGenerator(seed=9)
    payloads = [s.payload for s in generator.generate(200)]
    return FeatureExtractor().extract_many(payloads)


class TestZeroSupportRule:
    def test_kept_features_all_have_support(self, training_matrix):
        pruned, report = prune(training_matrix)
        assert (pruned.column_support() >= 1).all()

    def test_removed_features_had_no_support(self, training_matrix):
        _, report = prune(training_matrix)
        support = training_matrix.column_support()
        for index in report.zero_support:
            assert support[index] == 0

    def test_non_mysql_keywords_pruned(self, training_matrix):
        """The paper: removed features 'corresponded to cases for attacks
        to non-MySQL databases'."""
        pruned, _ = prune(training_matrix)
        labels = set(pruned.catalog.labels)
        assert "kw:xp_cmdshell" not in labels
        assert "kw:utl_http" not in labels
        assert "kw:sqlite_master" not in labels

    def test_core_features_survive(self, training_matrix):
        pruned, _ = prune(training_matrix)
        labels = set(pruned.catalog.labels)
        assert "kw:union" in labels
        assert "kw:select" in labels

    def test_reduction_magnitude(self, training_matrix):
        # Paper: 477 -> 159.  The exact number depends on the corpus; the
        # order of magnitude must match (roughly one-third kept).
        pruned, report = prune(training_matrix)
        assert report.initial_features == 477
        assert 60 <= report.final_features <= 250


class TestDuplicateCollapse:
    def test_duplicate_columns_removed(self):
        catalog = build_catalog().subset([0, 1, 2])
        counts = np.array([[1, 1, 2], [0, 0, 3]])
        matrix = FeatureMatrix(
            counts=counts, catalog=catalog, sample_ids=["a", "b"]
        )
        pruned, report = prune(matrix)
        assert report.duplicates == (1,)
        assert pruned.n_features == 2

    def test_first_occurrence_kept(self):
        catalog = build_catalog().subset([0, 1, 2])
        counts = np.array([[1, 1, 2], [0, 0, 3]])
        matrix = FeatureMatrix(
            counts=counts, catalog=catalog, sample_ids=["a", "b"]
        )
        pruned, _ = prune(matrix)
        assert pruned.catalog[0].pattern == catalog[0].pattern

    def test_collapse_disabled(self):
        catalog = build_catalog().subset([0, 1])
        counts = np.array([[1, 1], [2, 2]])
        matrix = FeatureMatrix(
            counts=counts, catalog=catalog, sample_ids=["a", "b"]
        )
        _, report = prune(matrix, collapse_duplicates=False)
        assert report.duplicates == ()


class TestMinSupport:
    def test_higher_threshold_prunes_more(self, training_matrix):
        loose, _ = prune(training_matrix, min_support=1)
        strict, _ = prune(training_matrix, min_support=10)
        assert strict.n_features <= loose.n_features

    def test_report_consistency(self, training_matrix):
        _, report = prune(training_matrix)
        accounted = (
            len(report.kept) + len(report.zero_support)
            + len(report.duplicates)
        )
        assert accounted == report.initial_features
