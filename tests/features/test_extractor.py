"""Tests for feature extraction."""

import numpy as np
import pytest

from repro.features import FeatureExtractor, build_catalog


@pytest.fixture(scope="module")
def extractor():
    return FeatureExtractor()


class TestExtract:
    def test_vector_length_matches_catalog(self, extractor):
        vector = extractor.extract("id=1")
        assert vector.shape == (len(extractor.catalog),)

    def test_counts_are_nonnegative_ints(self, extractor):
        vector = extractor.extract("id=1' union select 1,2,3-- -")
        assert vector.dtype == np.int32
        assert (vector >= 0).all()

    def test_union_select_attack_hits_features(self, extractor):
        vector = extractor.extract("id=1' union select 1,2,3-- -")
        catalog = extractor.catalog
        by_label = {d.label: vector[d.index] for d in catalog}
        assert by_label["kw:union"] >= 1
        assert by_label["kw:select"] >= 1
        by_pattern = {d.pattern: vector[d.index] for d in catalog}
        assert by_pattern[r"union\s+(?:all\s+)?select"] >= 1

    def test_counting_not_binary(self, extractor):
        # Section II-B: features measure the *number of times* found.
        single = extractor.extract("x=char(97)")
        double = extractor.extract("x=char(97),char(98)")
        label = "ref:char-list"
        index = extractor.catalog.by_label(label).index
        assert double[index] == 2 * single[index]

    def test_normalization_applied_before_counting(self, extractor):
        plain = extractor.extract("id=1' union select 1")
        evaded = extractor.extract("id=1%2527/**/UNION/**/SELECT/**/1")
        union_index = extractor.catalog.by_label("kw:union").index
        assert plain[union_index] == evaded[union_index] >= 1

    def test_benign_text_mostly_zero(self, extractor):
        vector = extractor.extract("course=cs101&term=fall2012")
        assert (vector > 0).sum() < 10

    def test_empty_payload_all_zero(self, extractor):
        assert extractor.extract("").sum() == 0


class TestExtractMany:
    def test_matrix_shape(self, extractor):
        matrix = extractor.extract_many(["a=1", "b=2", "c=3"])
        assert matrix.counts.shape == (3, len(extractor.catalog))

    def test_default_sample_ids(self, extractor):
        matrix = extractor.extract_many(["a=1", "b=2"])
        assert matrix.sample_ids == ["s0", "s1"]

    def test_custom_sample_ids(self, extractor):
        matrix = extractor.extract_many(["a=1"], sample_ids=["atk-7"])
        assert matrix.sample_ids == ["atk-7"]

    def test_empty_input(self, extractor):
        matrix = extractor.extract_many([])
        assert matrix.n_samples == 0

    def test_sample_id_length_mismatch_rejected(self, extractor):
        # Regression: a short/long id sequence used to be accepted and
        # produced a corrupt FeatureMatrix (rows silently misaligned).
        with pytest.raises(ValueError):
            extractor.extract_many(["a=1", "b=2"], sample_ids=["only-one"])
        with pytest.raises(ValueError):
            extractor.extract_many(
                ["a=1"], sample_ids=["one", "too-many"]
            )

    def test_empty_input_with_empty_ids(self, extractor):
        matrix = extractor.extract_many([], sample_ids=[])
        assert matrix.n_samples == 0

    def test_rows_match_individual_extraction(self, extractor):
        payloads = ["id=1' or 1=1-- -", "q=hello"]
        matrix = extractor.extract_many(payloads)
        for row, payload in enumerate(payloads):
            assert (matrix.counts[row] == extractor.extract(payload)).all()


class TestWithCatalog:
    def test_pruned_catalog_extraction(self, extractor):
        subset = extractor.catalog.subset([0, 1, 2])
        pruned = extractor.with_catalog(subset)
        vector = pruned.extract("id=1' union select 1")
        assert vector.shape == (3,)

    def test_shares_normalizer(self, extractor):
        subset = extractor.catalog.subset([0])
        assert extractor.with_catalog(subset).normalizer is extractor.normalizer


class _StubSpan:
    def set(self, **fields):
        pass


class _StubMatrix:
    """A count matrix whose shape disagrees with its catalog.

    FeatureMatrix validates its own shape at construction, so driving
    the metrics-recording guard requires bypassing it.
    """

    def __init__(self, columns, catalog):
        self.counts = np.zeros((2, columns), dtype=np.int32)
        self.catalog = catalog


class TestRecordMetrics:
    def test_mismatched_matrix_rejected(self, extractor):
        catalog = extractor.catalog
        bad = _StubMatrix(len(catalog) - 1, catalog)
        with pytest.raises(ValueError, match="columns wide"):
            extractor._record_metrics(bad, _StubSpan())

    def test_well_shaped_matrix_accepted(self, extractor):
        matrix = extractor.extract_many(["id=1' union select 1"])
        extractor._record_metrics(matrix, _StubSpan())
