"""Tests for the three feature sources (Table II)."""

import pytest

from repro.features.reference_strings import REFERENCE_PATTERNS
from repro.features.reserved_words import (
    MYSQL_FUNCTION_TOKENS,
    MYSQL_RESERVED_WORDS,
    NOISE_WORDS,
    NON_MYSQL_KEYWORDS,
    reserved_word_patterns,
)
from repro.features.signature_fragments import (
    DONOR_SIGNATURES,
    PAPER_FRAGMENTS,
    fragment_patterns,
)
from repro.regexlib import count_all, validate


class TestReservedWords:
    def test_paper_examples_present(self):
        # Section II-B names SELECT, DELETE, CURRENT_USER, VARCHAR.
        for word in ("select", "delete", "current_user", "varchar"):
            assert word in MYSQL_RESERVED_WORDS

    def test_all_lowercase(self):
        for word in MYSQL_RESERVED_WORDS + MYSQL_FUNCTION_TOKENS:
            assert word == word.lower()

    def test_no_duplicates(self):
        words = MYSQL_RESERVED_WORDS + MYSQL_FUNCTION_TOKENS
        assert len(words) == len(set(words))

    def test_noise_words_excluded_from_patterns(self):
        labels = {label for _, label in reserved_word_patterns()}
        for word in ("or", "and", "in", "is"):
            assert word in NOISE_WORDS
            assert f"kw:{word}" not in labels

    def test_patterns_are_word_bounded(self):
        for pattern, _ in reserved_word_patterns():
            assert pattern.startswith(r"\b")

    def test_union_does_not_match_inside_words(self):
        patterns = dict(
            (label, pattern) for pattern, label in reserved_word_patterns()
        )
        assert count_all(patterns["kw:union"], "reunionparty") == 0
        assert count_all(patterns["kw:union"], "union select") == 1

    def test_non_mysql_keywords_compile(self):
        for pattern, _ in reserved_word_patterns():
            assert validate(pattern), pattern

    def test_non_mysql_covers_major_engines(self):
        joined = " ".join(NON_MYSQL_KEYWORDS)
        assert "xp_cmdshell" in joined      # MSSQL
        assert "utl_http" in joined         # Oracle
        assert "pg_sleep" in joined         # PostgreSQL
        assert "sqlite_master" in joined    # SQLite


class TestSignatureFragments:
    def test_paper_fragments_all_surface(self):
        patterns = {p for p, _, _ in fragment_patterns()}
        for fragment in PAPER_FRAGMENTS:
            assert fragment in patterns, fragment

    def test_fragments_deduplicated(self):
        patterns = [p for p, _, _ in fragment_patterns()]
        assert len(patterns) == len(set(patterns))

    def test_fragments_valid(self):
        for pattern, _, _ in fragment_patterns():
            assert validate(pattern), pattern

    def test_origins_cover_three_rulesets(self):
        origins = {origin for _, _, origin in fragment_patterns()}
        assert {"modsec", "snort", "bro"} <= origins

    def test_donors_are_deconstructible(self):
        from repro.regexlib import deconstruct

        for _, signature in DONOR_SIGNATURES:
            assert len(deconstruct(signature)) >= 2

    def test_table3_feature53_behaviour(self):
        pattern = r"<=>|r?like|sounds\s+like|regex"
        assert count_all(pattern, "a rlike b") == 1
        assert count_all(pattern, "x sounds like y") >= 1
        assert count_all(pattern, "plain text") == 0


class TestReferencePatterns:
    def test_all_valid(self):
        for pattern, _ in REFERENCE_PATTERNS:
            assert validate(pattern), pattern

    def test_labels_unique(self):
        labels = [label for _, label in REFERENCE_PATTERNS]
        assert len(labels) == len(set(labels))

    @pytest.mark.parametrize("label,positive", [
        ("ref:or-1-eq-1", "x' or 1=1-- -"),
        ("ref:order-by-comment", "1' order by 5-- -"),
        ("ref:union-select", "1 union select 2"),
        ("ref:sleep-n", "1 and sleep(5)"),
        ("ref:into-outfile", "select 1 into outfile '/tmp/x'"),
        ("ref:stacked-query", "1; drop table users"),
        ("ref:hex-literal", "id=0x41424344"),
    ])
    def test_positive_matches(self, label, positive):
        patterns = dict(
            (lab, pat) for pat, lab in REFERENCE_PATTERNS
        )
        assert count_all(patterns[label], positive) >= 1

    @pytest.mark.parametrize("label,negative", [
        ("ref:or-1-eq-1", "for 10=10 points"),
        ("ref:union-select", "union membership selection"),
        ("ref:sleep-n", "sleep schedule"),
    ])
    def test_negative_matches(self, label, negative):
        patterns = dict(
            (lab, pat) for pat, lab in REFERENCE_PATTERNS
        )
        assert count_all(patterns[label], negative) == 0
