"""Tests for the FeatureMatrix container."""

import numpy as np
import pytest

from repro.features import FeatureMatrix, build_catalog


@pytest.fixture(scope="module")
def small_catalog():
    return build_catalog().subset([0, 1, 2, 3])


def _matrix(counts, catalog):
    counts = np.asarray(counts)
    return FeatureMatrix(
        counts=counts,
        catalog=catalog,
        sample_ids=[f"s{i}" for i in range(counts.shape[0])],
    )


class TestValidation:
    def test_column_mismatch_raises(self, small_catalog):
        with pytest.raises(ValueError):
            _matrix(np.zeros((2, 7), dtype=int), small_catalog)

    def test_id_mismatch_raises(self, small_catalog):
        with pytest.raises(ValueError):
            FeatureMatrix(
                counts=np.zeros((2, 4), dtype=int),
                catalog=small_catalog,
                sample_ids=["only-one"],
            )

    def test_negative_counts_raise(self, small_catalog):
        with pytest.raises(ValueError):
            _matrix(np.array([[-1, 0, 0, 0]]), small_catalog)

    def test_one_dim_raises(self, small_catalog):
        with pytest.raises(ValueError):
            FeatureMatrix(
                counts=np.zeros(4, dtype=int),
                catalog=small_catalog,
                sample_ids=[],
            )


class TestStatistics:
    def test_sparsity(self, small_catalog):
        matrix = _matrix([[0, 0, 1, 2], [0, 0, 0, 0]], small_catalog)
        assert matrix.sparsity() == pytest.approx(6 / 8)

    def test_fraction_ones(self, small_catalog):
        matrix = _matrix([[0, 1, 1, 2], [0, 0, 0, 0]], small_catalog)
        assert matrix.fraction_ones() == pytest.approx(2 / 8)

    def test_binary_feature_mask(self, small_catalog):
        matrix = _matrix([[0, 1, 3, 1], [1, 0, 0, 1]], small_catalog)
        assert matrix.binary_feature_mask().tolist() == [
            True, True, False, True
        ]

    def test_column_support(self, small_catalog):
        matrix = _matrix([[0, 1, 3, 0], [0, 2, 0, 0]], small_catalog)
        assert matrix.column_support().tolist() == [0, 2, 1, 0]


class TestProjections:
    def test_select_columns(self, small_catalog):
        matrix = _matrix([[1, 2, 3, 4]], small_catalog)
        projected = matrix.select_columns([1, 3])
        assert projected.counts.tolist() == [[2, 4]]
        assert len(projected.catalog) == 2

    def test_select_rows(self, small_catalog):
        matrix = _matrix([[1, 0, 0, 0], [0, 2, 0, 0], [0, 0, 3, 0]],
                         small_catalog)
        projected = matrix.select_rows([0, 2])
        assert projected.counts[:, 0].tolist() == [1, 0]
        assert projected.sample_ids == ["s0", "s2"]

    def test_as_binary(self, small_catalog):
        matrix = _matrix([[0, 5, 1, 0]], small_catalog)
        assert matrix.as_binary().counts.tolist() == [[0, 1, 1, 0]]


class TestStandardized:
    def test_zero_mean_unit_std(self, small_catalog):
        matrix = _matrix(
            [[0, 1, 2, 3], [2, 3, 4, 5], [4, 5, 6, 7]], small_catalog
        )
        z = matrix.standardized()
        assert np.allclose(z.mean(axis=0), 0.0)
        assert np.allclose(z.std(axis=0), 1.0)

    def test_constant_column_maps_to_zero(self, small_catalog):
        matrix = _matrix([[5, 1, 0, 0], [5, 2, 0, 0]], small_catalog)
        z = matrix.standardized()
        assert np.allclose(z[:, 0], 0.0)
        assert np.allclose(z[:, 2], 0.0)

    def test_paper_shape_sparse(self):
        """The training matrix should look like Section II-B's: sparse with
        a healthy band of ones."""
        from repro.corpus import CorpusGenerator
        from repro.features import FeatureExtractor, prune

        generator = CorpusGenerator(seed=5)
        payloads = [s.payload for s in generator.generate(120)]
        full = FeatureExtractor().extract_many(payloads)
        pruned, _ = prune(full)
        assert 0.6 < pruned.sparsity() < 0.95
        assert pruned.fraction_ones() > 0.02
