"""Tests for the ``python -m repro`` command line."""

import io
import json
import os
import re

import pytest

from repro.__main__ import build_parser, main


def score_lines(capsys):
    """Parsed (verdict, score, payload) triples from score output."""
    out = capsys.readouterr().out
    rows = []
    for line in out.strip().splitlines():
        match = re.match(
            r"\[(ALERT|pass )\] p=([0-9.]+)"
            r"(?: signatures=\[[^\]]*\])?(?:  (.*))?$",
            line,
        )
        assert match, f"unparseable score line: {line!r}"
        rows.append(
            (match.group(1), float(match.group(2)), match.group(3) or "")
        )
    return rows


class TestTrainAndScore:
    @pytest.fixture(scope="class")
    def signature_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "signatures.json"
        code = main([
            "train", "-o", str(path), "--samples", "900",
            "--benign", "2500", "--max-cluster-rows", "700",
        ])
        assert code == 0
        return str(path)

    def test_train_writes_valid_json(self, signature_file):
        with open(signature_file) as handle:
            data = json.load(handle)
        assert data["schema"] == 1
        assert data["signatures"]

    def test_score_attack_exits_3(self, signature_file, capsys):
        code = main([
            "score", "-s", signature_file,
            "id=1' union select 1,2,3-- -",
        ])
        assert code == 3
        assert "ALERT" in capsys.readouterr().out

    def test_score_benign_exits_0(self, signature_file, capsys):
        code = main([
            "score", "-s", signature_file, "course=cs101&term=fall2012",
        ])
        assert code == 0
        assert "pass" in capsys.readouterr().out


class TestScoreStdin:
    ATTACK = "id=1' union select 1,2,3-- -"
    BENIGN = "course=cs101&term=fall2012"

    @pytest.fixture(scope="class")
    def signature_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-stdin") / "signatures.json"
        code = main([
            "train", "-o", str(path), "--samples", "900",
            "--benign", "2500", "--max-cluster-rows", "700",
        ])
        assert code == 0
        return str(path)

    def test_crlf_stdin_matches_argv(
        self, signature_file, capsys, monkeypatch
    ):
        """CRLF-terminated stdin (Windows pipes, curl output) must score
        identically to argv payloads — a stray \\r inside the payload
        changes normalization."""
        code_argv = main(["score", "-s", signature_file, self.ATTACK])
        argv_rows = score_lines(capsys)
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(f"{self.ATTACK}\r\n")
        )
        code_stdin = main(["score", "-s", signature_file])
        stdin_rows = score_lines(capsys)
        assert code_stdin == code_argv == 3
        assert stdin_rows == argv_rows

    def test_lf_stdin_unchanged(self, signature_file, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(f"{self.ATTACK}\n{self.BENIGN}\n"),
        )
        code = main(["score", "-s", signature_file])
        rows = score_lines(capsys)
        assert code == 3
        assert [r[0] for r in rows] == ["ALERT", "pass "]
        assert [r[2] for r in rows] == [self.ATTACK, self.BENIGN]

    def test_serial_and_batch_agree(self, signature_file, capsys):
        """Exit code and every printed score must be identical through
        the serial (workers=1) and batched (workers>1) paths."""
        payloads = [
            self.ATTACK,
            self.BENIGN,
            "q=robert'); drop table students;--",
            "page=3&sort=name",
            "",
        ]
        code_serial = main(
            ["score", "-s", signature_file, "--workers", "1"] + payloads
        )
        serial_rows = score_lines(capsys)
        code_batch = main(
            ["score", "-s", signature_file, "--workers", "2"] + payloads
        )
        batch_rows = score_lines(capsys)
        assert code_serial == code_batch == 3
        assert serial_rows == batch_rows


class TestVersionAndHelp:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_help_epilog_lists_commands(self):
        help_text = build_parser().format_help()
        for command in (
            "train", "score", "crawl", "eval", "serve", "loadgen",
        ):
            assert re.search(
                rf"^  {command}\s+\S", help_text, re.MULTILINE
            ), f"epilog missing command {command!r}"


class TestCrawl:
    def test_crawl_prints_stats(self, capsys):
        code = main(["crawl", "--samples", "120", "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pages fetched" in out
        assert "unique samples" in out


class TestLoadgenCommand:
    @pytest.mark.smoke
    def test_loadgen_against_in_process_gateway(self, capsys):
        code = main([
            "loadgen", "--detector", "modsecurity",
            "--requests", "120", "--connections", "2", "--window", "4",
            "--benign", "40", "--vulnerabilities", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "PARITY" in out
        assert "throughput" in out

    def test_psigene_requires_signature_file(self):
        with pytest.raises(SystemExit):
            main(["loadgen", "--detector", "psigene", "--requests", "10"])


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["explode"])
