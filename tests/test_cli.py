"""Tests for the ``python -m repro`` command line."""

import json
import os

import pytest

from repro.__main__ import main


class TestTrainAndScore:
    @pytest.fixture(scope="class")
    def signature_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "signatures.json"
        code = main([
            "train", "-o", str(path), "--samples", "900",
            "--benign", "2500", "--max-cluster-rows", "700",
        ])
        assert code == 0
        return str(path)

    def test_train_writes_valid_json(self, signature_file):
        with open(signature_file) as handle:
            data = json.load(handle)
        assert data["schema"] == 1
        assert data["signatures"]

    def test_score_attack_exits_3(self, signature_file, capsys):
        code = main([
            "score", "-s", signature_file,
            "id=1' union select 1,2,3-- -",
        ])
        assert code == 3
        assert "ALERT" in capsys.readouterr().out

    def test_score_benign_exits_0(self, signature_file, capsys):
        code = main([
            "score", "-s", signature_file, "course=cs101&term=fall2012",
        ])
        assert code == 0
        assert "pass" in capsys.readouterr().out


class TestCrawl:
    def test_crawl_prints_stats(self, capsys):
        code = main(["crawl", "--samples", "120", "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pages fetched" in out
        assert "unique samples" in out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["explode"])
