"""Tests for the unicode folding table."""

from repro.normalize.unicode_map import FOLD_TABLE, fold, fold_char


class TestFoldChar:
    def test_ascii_identity(self):
        for ch in "aZ0'\"; ":
            assert fold_char(ch) == ch

    def test_fullwidth_maps_to_ascii(self):
        assert fold_char("Ａ") == "A"
        assert fold_char("＇") == "'"
        assert fold_char("＝") == "="

    def test_smart_quote(self):
        assert fold_char("’") == "'"

    def test_unmapped_becomes_empty(self):
        assert fold_char("漢") == ""


class TestFoldTable:
    def test_covers_full_fullwidth_range(self):
        # U+FF01..U+FF5E maps onto U+0021..U+007E.
        for offset in range(0x5E):
            assert FOLD_TABLE[chr(0xFF01 + offset)] == chr(0x21 + offset)

    def test_all_values_ascii(self):
        for value in FOLD_TABLE.values():
            assert all(ord(ch) < 128 for ch in value)

    def test_ideographic_space(self):
        assert FOLD_TABLE["　"] == " "


class TestFold:
    def test_mixed_string(self):
        assert fold("ｓｅｌｅｃｔ ＊") == "select *"

    def test_dash_variants(self):
        assert fold("a–b—c−d") == "a-b-c-d"

    def test_empty(self):
        assert fold("") == ""
