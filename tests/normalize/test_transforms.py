"""Tests for the five normalization transformations."""

import pytest

from repro.normalize import (
    DEFAULT_TRANSFORMS,
    HexDecode,
    Lowercase,
    Normalizer,
    UnicodeFold,
    UrlDecode,
    WhitespaceCanonicalize,
    normalize,
)


class TestLowercase:
    def test_basic(self):
        assert Lowercase()("UNION SELECT") == "union select"

    def test_idempotent(self):
        transform = Lowercase()
        assert transform(transform("MiXeD")) == transform("MiXeD")


class TestUrlDecode:
    def test_single_level(self):
        assert UrlDecode()("%27") == "'"

    def test_plus_to_space(self):
        assert UrlDecode()("union+select") == "union select"

    def test_double_encoding_unwrapped(self):
        assert UrlDecode()("%2527") == "'"

    def test_triple_encoding_unwrapped(self):
        assert UrlDecode()("%252527") == "'"

    def test_percent_u_escape(self):
        assert UrlDecode()("%u0027") == "'"

    def test_bounded_rounds(self):
        # Deeply nested encodings stop at max_rounds without hanging.
        deep = "%25" * 10 + "27"
        UrlDecode()(deep)

    def test_no_change_fast_path(self):
        assert UrlDecode()("plain") == "plain"


class TestUnicodeFold:
    def test_fullwidth_letters(self):
        assert UnicodeFold()("ｕｎｉｏｎ") == "union"

    def test_smart_quotes(self):
        assert UnicodeFold()("‘x’") == "'x'"

    def test_unmapped_dropped(self):
        assert UnicodeFold()("a☃b") == "ab"

    def test_ascii_unchanged(self):
        text = "select * from t where a='b'"
        assert UnicodeFold()(text) == text


class TestHexDecode:
    def test_printable_literal_decoded(self):
        assert HexDecode()("0x61646d696e") == "admin"

    def test_in_context(self):
        assert (
            HexDecode()("select 0x726f6f74 from t") == "select root from t"
        )

    def test_odd_length_untouched(self):
        assert HexDecode()("0x616") == "0x616"

    def test_nonprintable_untouched(self):
        assert HexDecode()("0x0001") == "0x0001"

    def test_plain_number_untouched(self):
        assert HexDecode()("id=12345") == "id=12345"


class TestWhitespaceCanonicalize:
    def test_inline_comment_to_space(self):
        assert (
            WhitespaceCanonicalize()("union/**/select") == "union select"
        )

    def test_mysql_bang_comment(self):
        assert WhitespaceCanonicalize()("/*!50000select*/") == " "

    def test_tabs_and_newlines(self):
        assert WhitespaceCanonicalize()("a\t\nb") == "a b"

    def test_run_collapse(self):
        assert WhitespaceCanonicalize()("a     b") == "a b"

    def test_null_byte(self):
        assert WhitespaceCanonicalize()("a\x00b") == "a b"


class TestNormalizer:
    def test_default_has_five_transforms(self):
        assert len(DEFAULT_TRANSFORMS) == 5

    def test_names(self):
        names = Normalizer().names()
        assert names == [
            "url-decode", "unicode-fold", "lowercase", "hex-decode",
            "whitespace",
        ]

    def test_composition_order_matters(self):
        # %2B55 decodes to +55; a pipeline without url-decode first
        # would miss it.
        assert normalize("%2B55") == "+55"

    def test_classic_evasion_flattened(self):
        evaded = "1%2527/**/UnIoN/**/SeLeCt/**/1,2"
        assert normalize(evaded) == "1' union select 1,2"

    def test_fullwidth_keyword_evasion(self):
        assert "union select" in normalize("ｕｎｉｏｎ+ｓｅｌｅｃｔ")

    def test_custom_transform_list(self):
        only_lower = Normalizer([Lowercase()])
        assert only_lower("A%27") == "a%27"

    def test_empty_input(self):
        assert normalize("") == ""

    def test_plain_benign_text_survives(self):
        assert normalize("q=course+selection") == "q=course selection"


@pytest.mark.parametrize("evaded,needle", [
    ("UNION%0ASELECT", "union select"),
    ("union%09select", "union select"),
    ("un%69on sel%65ct", "union select"),
    ("%75nion %73elect", "union select"),
    ("UNION/*x*/SELECT", "union select"),
    ("0x756e696f6e", "union"),
])
def test_known_evasions_normalize_to_canonical(evaded, needle):
    assert needle in normalize(evaded)
