"""Tests for the from-scratch UPGMA, cross-validated against scipy."""

import numpy as np
import pytest
from scipy.cluster.hierarchy import linkage as scipy_linkage

from repro.cluster import (
    euclidean_matrix,
    unique_rows_with_weights,
    upgma,
    validate_linkage,
)


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(0).normal(size=(40, 6))


class TestAgainstScipy:
    def test_merge_heights_match(self, points):
        mine = upgma(points)
        reference = scipy_linkage(points, method="average")
        assert np.allclose(
            np.sort(mine[:, 2]), np.sort(reference[:, 2])
        )

    def test_cluster_sizes_match(self, points):
        mine = upgma(points)
        reference = scipy_linkage(points, method="average")
        assert np.allclose(
            np.sort(mine[:, 3]), np.sort(reference[:, 3])
        )

    def test_small_case_exact(self):
        points = np.array([[0.0], [1.0], [10.0], [11.0]])
        mine = upgma(points)
        # 0-1 merge at 1, 2-3 merge at 1, then clusters at avg distance 10.
        assert mine[0, 2] == pytest.approx(1.0)
        assert mine[1, 2] == pytest.approx(1.0)
        assert mine[2, 2] == pytest.approx(10.0)


class TestWeightedEquivalence:
    def test_duplicates_as_weights(self, points):
        """Weighted UPGMA over prototypes == plain UPGMA over raw rows."""
        duplicated = np.vstack([points, points[:15]])
        reference = scipy_linkage(duplicated, method="average")
        prototypes, weights, _ = unique_rows_with_weights(duplicated)
        mine = upgma(prototypes, weights=weights)
        reference_heights = np.sort(reference[:, 2])
        reference_heights = reference_heights[reference_heights > 1e-12]
        assert np.allclose(np.sort(mine[:, 2]), reference_heights)

    def test_final_weight_is_total(self, points):
        weights = np.random.default_rng(1).integers(
            1, 5, size=points.shape[0]
        ).astype(float)
        linkage = upgma(points, weights=weights)
        assert linkage[-1, 3] == pytest.approx(weights.sum())


class TestLinkageProperties:
    def test_monotone_heights(self, points):
        linkage = upgma(points)
        assert (np.diff(linkage[:, 2]) >= -1e-12).all()

    def test_validate_accepts_own_output(self, points):
        linkage = upgma(points)
        validate_linkage(linkage, points.shape[0])

    def test_validate_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            validate_linkage(np.zeros((3, 4)), 10)

    def test_validate_rejects_nonmonotone(self):
        bad = np.array([[0, 1, 5.0, 2], [2, 3, 1.0, 3]])
        with pytest.raises(ValueError):
            validate_linkage(bad, 3)

    def test_validate_rejects_future_reference(self):
        bad = np.array([[0, 5, 1.0, 2], [2, 3, 2.0, 3]])
        with pytest.raises(ValueError):
            validate_linkage(bad, 3)


class TestInputValidation:
    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            upgma(np.ones((1, 3)))

    def test_nonsquare_distance_rejected(self):
        with pytest.raises(ValueError):
            upgma(np.ones((3, 2)), distances=np.ones((3, 2)))

    def test_wrong_weight_count_rejected(self, points):
        with pytest.raises(ValueError):
            upgma(points, weights=np.ones(3))

    def test_nonpositive_weights_rejected(self, points):
        weights = np.ones(points.shape[0])
        weights[0] = 0
        with pytest.raises(ValueError):
            upgma(points, weights=weights)

    def test_precomputed_distances_used(self):
        distances = np.array([
            [0.0, 1.0, 9.0],
            [1.0, 0.0, 9.0],
            [9.0, 9.0, 0.0],
        ])
        linkage = upgma(np.zeros((3, 1)), distances=distances)
        assert linkage[0, 2] == pytest.approx(1.0)
        assert linkage[1, 2] == pytest.approx(9.0)
