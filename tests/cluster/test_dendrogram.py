"""Tests for dendrogram cutting, ordering, and cophenetic validation."""

import numpy as np
import pytest
from scipy.cluster.hierarchy import cophenet, fcluster
from scipy.cluster.hierarchy import linkage as scipy_linkage
from scipy.spatial.distance import pdist

from repro.cluster import Dendrogram, euclidean_matrix, upgma


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(7)
    # Three well-separated blobs.
    return np.vstack([
        rng.normal(0, 0.3, (10, 4)),
        rng.normal(5, 0.3, (12, 4)),
        rng.normal(-5, 0.3, (8, 4)),
    ])


@pytest.fixture(scope="module")
def dendrogram(points):
    return Dendrogram(upgma(points), points.shape[0])


class TestConstruction:
    def test_shape_mismatch_rejected(self, points):
        with pytest.raises(ValueError):
            Dendrogram(upgma(points), points.shape[0] + 1)


class TestMembers:
    def test_leaf_is_itself(self, dendrogram):
        assert dendrogram.members_of(0) == [0]

    def test_root_contains_all(self, dendrogram, points):
        root = 2 * points.shape[0] - 2
        assert sorted(dendrogram.members_of(root)) == list(
            range(points.shape[0])
        )

    def test_merge_members_union(self, dendrogram, points):
        n = points.shape[0]
        for step in range(n - 1):
            left = int(dendrogram.linkage[step, 0])
            right = int(dendrogram.linkage[step, 1])
            merged = set(dendrogram.members_of(n + step))
            assert merged == set(
                dendrogram.members_of(left)
            ) | set(dendrogram.members_of(right))


class TestLeafOrder:
    def test_permutation(self, dendrogram, points):
        order = dendrogram.leaf_order()
        assert sorted(order) == list(range(points.shape[0]))

    def test_blobs_contiguous(self, dendrogram, points):
        """Leaf order must keep each blob's members adjacent."""
        order = dendrogram.leaf_order()
        blob = [0 if i < 10 else (1 if i < 22 else 2) for i in order]
        transitions = sum(
            1 for a, b in zip(blob, blob[1:]) if a != b
        )
        assert transitions == 2


class TestCutting:
    def test_cut_to_k_three_blobs(self, dendrogram, points):
        labels = dendrogram.cut_to_k(3)
        assert len(np.unique(labels)) == 3
        # Blob membership must be pure.
        truth = np.array([0] * 10 + [1] * 12 + [2] * 8)
        for cluster in np.unique(labels):
            assert len(np.unique(truth[labels == cluster])) == 1

    def test_cut_matches_scipy_fcluster(self, points, dendrogram):
        reference = scipy_linkage(points, method="average")
        scipy_labels = fcluster(reference, t=3, criterion="maxclust")
        mine = dendrogram.cut_to_k(3)
        # Same partition up to relabeling.
        for cluster in np.unique(mine):
            scipy_ids = scipy_labels[mine == cluster]
            assert len(np.unique(scipy_ids)) == 1

    def test_cut_k1(self, dendrogram, points):
        assert len(np.unique(dendrogram.cut_to_k(1))) == 1

    def test_cut_kn(self, dendrogram, points):
        n = points.shape[0]
        assert len(np.unique(dendrogram.cut_to_k(n))) == n

    def test_invalid_k(self, dendrogram):
        with pytest.raises(ValueError):
            dendrogram.cut_to_k(0)

    def test_cut_at_height_zero_all_singletons(self, dendrogram, points):
        labels = dendrogram.cut_at_height(-1e-9)
        assert len(np.unique(labels)) == points.shape[0]

    def test_cut_at_max_height_single(self, dendrogram):
        top = dendrogram.linkage[:, 2].max()
        labels = dendrogram.cut_at_height(top + 1)
        assert len(np.unique(labels)) == 1

    def test_labels_dense_from_zero(self, dendrogram):
        labels = dendrogram.cut_to_k(3)
        assert set(labels) == {0, 1, 2}


class TestCophenetic:
    def test_matrix_matches_scipy(self, points, dendrogram):
        reference = scipy_linkage(points, method="average")
        scipy_coph = cophenet(reference)
        mine = dendrogram.cophenetic_matrix()
        index_upper = np.triu_indices(points.shape[0], k=1)
        assert np.allclose(np.sort(mine[index_upper]), np.sort(scipy_coph))

    def test_correlation_matches_scipy(self, points, dendrogram):
        reference = scipy_linkage(points, method="average")
        scipy_corr, _ = cophenet(reference, pdist(points))
        mine = dendrogram.cophenetic_correlation(euclidean_matrix(points))
        assert mine == pytest.approx(scipy_corr, abs=1e-9)

    def test_well_separated_data_high_correlation(self, points, dendrogram):
        # The paper reports 0.92 and calls it "promisingly high"; three
        # blobs with unequal separations land in the same band.
        corr = dendrogram.cophenetic_correlation(euclidean_matrix(points))
        assert corr > 0.85
