"""Tests for cluster validity indices."""

import numpy as np
import pytest

from repro.cluster import davies_bouldin, silhouette_mean


@pytest.fixture
def blobs():
    rng = np.random.default_rng(11)
    data = np.vstack([
        rng.normal(0, 0.2, (20, 3)),
        rng.normal(6, 0.2, (20, 3)),
    ])
    labels = np.repeat([0, 1], 20)
    return data, labels


class TestDaviesBouldin:
    def test_good_clustering_low(self, blobs):
        data, labels = blobs
        assert davies_bouldin(data, labels) < 0.3

    def test_bad_clustering_higher(self, blobs):
        data, labels = blobs
        rng = np.random.default_rng(1)
        shuffled = rng.permutation(labels)
        assert davies_bouldin(data, shuffled) > davies_bouldin(data, labels)

    def test_single_cluster_infinite(self, blobs):
        data, _ = blobs
        assert davies_bouldin(data, np.zeros(len(data))) == float("inf")

    def test_singletons_zero_scatter(self):
        data = np.array([[0.0, 0], [5, 0], [10, 0]])
        value = davies_bouldin(data, np.array([0, 1, 2]))
        assert value == 0.0

    def test_coincident_centroids_infinite_ratio(self):
        data = np.array([[0.0], [1.0], [0.0], [1.0]])
        labels = np.array([0, 0, 1, 1])
        assert davies_bouldin(data, labels) == float("inf")

    def test_matches_reference_formula(self, blobs):
        data, labels = blobs
        # Independent direct computation for k=2.
        c0 = data[labels == 0].mean(axis=0)
        c1 = data[labels == 1].mean(axis=0)
        s0 = np.linalg.norm(data[labels == 0] - c0, axis=1).mean()
        s1 = np.linalg.norm(data[labels == 1] - c1, axis=1).mean()
        expected = (s0 + s1) / np.linalg.norm(c0 - c1)
        assert davies_bouldin(data, labels) == pytest.approx(expected)


class TestSilhouette:
    def test_good_clustering_high(self, blobs):
        data, labels = blobs
        assert silhouette_mean(data, labels) > 0.8

    def test_random_labels_low(self, blobs):
        data, labels = blobs
        rng = np.random.default_rng(2)
        assert silhouette_mean(data, rng.permutation(labels)) < 0.3

    def test_degenerate_cases_zero(self, blobs):
        data, _ = blobs
        assert silhouette_mean(data, np.zeros(len(data))) == 0.0
        assert silhouette_mean(data, np.arange(len(data))) == 0.0
