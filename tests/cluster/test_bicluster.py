"""Tests for two-way biclustering and selection rules."""

import numpy as np
import pytest

from repro.cluster import Biclusterer, is_black_hole_block
from repro.cluster.bicluster import (
    BLACK_HOLE_ROW_FEATURES,
    MIN_SAMPLE_FRACTION,
)


def _block_data(rng, n_per_block=60, n_features=30):
    """Three planted blocks, each active on its own feature band."""
    blocks = []
    for band in range(3):
        block = np.zeros((n_per_block, n_features), dtype=float)
        columns = slice(band * 10, band * 10 + 10)
        block[:, columns] = rng.poisson(3, size=(n_per_block, 10))
        block[:, columns] += 1  # guarantee support
        blocks.append(block)
    return np.vstack(blocks)


@pytest.fixture(scope="module")
def planted():
    rng = np.random.default_rng(21)
    return _block_data(rng)


class TestPlantedRecovery:
    def test_three_bands_recovered(self, planted):
        # The adaptive cut subdivides while both children clear the 5%
        # rule (capped at max_biclusters), so bands may split into
        # sub-blocks — but every band must own at least one bicluster and
        # no bicluster may straddle bands (checked in test_blocks_pure).
        result = Biclusterer().fit(planted)
        assert 3 <= len(result.biclusters) <= 11
        truth = np.repeat([0, 1, 2], 60)
        owned_bands = {
            truth[b.sample_indices[0]] for b in result.biclusters
        }
        assert owned_bands == {0, 1, 2}

    def test_extreme_gap_disables_subdivision(self, planted):
        # A prohibitive separation requirement stops all splitting: one
        # root cluster remains.
        result = Biclusterer(split_gap=100.0).fit(planted)
        assert len(result.biclusters) == 1

    def test_blocks_pure(self, planted):
        result = Biclusterer().fit(planted)
        truth = np.repeat([0, 1, 2], 60)
        for bicluster in result.biclusters:
            labels = truth[bicluster.sample_indices]
            assert len(np.unique(labels)) == 1

    def test_features_match_band(self, planted):
        result = Biclusterer().fit(planted)
        truth = np.repeat([0, 1, 2], 60)
        for bicluster in result.biclusters:
            band = truth[bicluster.sample_indices[0]]
            expected = set(range(band * 10, band * 10 + 10))
            assert set(bicluster.feature_indices.tolist()) <= expected

    def test_no_black_holes_in_dense_blocks(self, planted):
        result = Biclusterer().fit(planted)
        assert not any(b.is_black_hole for b in result.biclusters)

    def test_high_cophenetic_on_planted(self, planted):
        result = Biclusterer().fit(planted)
        assert result.cophenetic_correlation > 0.85


class TestSelectionRules:
    def test_small_clusters_not_selected(self):
        rng = np.random.default_rng(5)
        data = _block_data(rng, n_per_block=60)
        # A tiny fourth block: 4 rows of 184 (~2%) — below the 5% rule.
        tiny = np.zeros((4, 30))
        tiny[:, 25:30] = 9.0
        result = Biclusterer().fit(np.vstack([data, tiny]))
        sizes = [b.n_samples for b in result.biclusters]
        total = 184
        for size in sizes:
            assert size / total >= MIN_SAMPLE_FRACTION

    def test_uncovered_rows_reported(self):
        rng = np.random.default_rng(6)
        data = _block_data(rng, n_per_block=60)
        outlier = np.full((1, 30), 40.0)
        result = Biclusterer().fit(np.vstack([data, outlier]))
        covered = set()
        for bicluster in result.biclusters:
            covered.update(bicluster.sample_indices.tolist())
        assert set(result.uncovered.tolist()) == (
            set(range(181)) - covered
        )

    def test_max_biclusters_cap(self, planted):
        result = Biclusterer(max_biclusters=2).fit(planted)
        assert len(result.biclusters) <= 2

    def test_indices_start_at_one(self, planted):
        result = Biclusterer().fit(planted)
        assert [b.index for b in result.biclusters][0] == 1


class TestBlackHoles:
    def test_probe_block_marked(self):
        rng = np.random.default_rng(9)
        dense = _block_data(rng, n_per_block=60)
        probes = np.zeros((30, 30))
        probes[:, 0] = 1.0
        probes[:, 1] = rng.integers(0, 2, 30)
        result = Biclusterer().fit(np.vstack([dense, probes]))
        probe_clusters = [
            b for b in result.biclusters
            if set(b.sample_indices.tolist()) & set(range(180, 210))
        ]
        assert probe_clusters
        assert all(b.is_black_hole for b in probe_clusters)

    def test_is_black_hole_block_on_sparse(self):
        block = np.zeros((20, 100))
        block[:, 0] = 1
        block[:, 1] = 1
        assert is_black_hole_block(block)

    def test_is_black_hole_block_on_dense(self):
        block = np.ones((20, 100))
        assert not is_black_hole_block(block)

    def test_row_feature_threshold_boundary(self):
        block = np.zeros((10, 50))
        block[:, :BLACK_HOLE_ROW_FEATURES] = 1
        assert is_black_hole_block(block)
        block[:, : BLACK_HOLE_ROW_FEATURES + 3] = 1
        assert not is_black_hole_block(block)

    def test_empty_block_is_black_hole(self):
        assert is_black_hole_block(np.zeros((0, 10)))

    def test_cells_mode(self):
        sparse = np.zeros((20, 100))
        sparse[:, 0] = 1
        clusterer = Biclusterer(
            black_hole_mode="cells", black_hole_zero_fraction=0.9
        )
        assert clusterer.is_black_hole(sparse)
        assert not clusterer.is_black_hole(np.ones((5, 5)))


class TestValidation:
    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            Biclusterer().fit(np.ones((2, 5)))

    def test_identical_samples_rejected(self):
        with pytest.raises(ValueError):
            Biclusterer().fit(np.ones((10, 5)))

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            Biclusterer(min_fraction=0.0)

    def test_bad_transform_rejected(self):
        with pytest.raises(ValueError):
            Biclusterer(transform="sqrt")

    def test_bad_black_hole_mode_rejected(self):
        with pytest.raises(ValueError):
            Biclusterer(black_hole_mode="maybe")


class TestTransforms:
    def test_log1p_normalized_rows_unit_norm(self, planted):
        transformed = Biclusterer().transform_rows(planted)
        norms = np.linalg.norm(transformed, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_binary_transform(self, planted):
        clusterer = Biclusterer(transform="binary", row_normalize=False)
        transformed = clusterer.transform_rows(planted)
        assert set(np.unique(transformed)) <= {0.0, 1.0}

    def test_raw_transform_identity(self, planted):
        clusterer = Biclusterer(transform="raw", row_normalize=False)
        assert np.allclose(clusterer.transform_rows(planted), planted)

    def test_zero_row_survives_normalization(self):
        clusterer = Biclusterer()
        data = np.zeros((4, 6))
        data[0, 0] = 1
        transformed = clusterer.transform_rows(data)
        assert np.isfinite(transformed).all()
