"""Tests for distance computation and prototype collapsing."""

import numpy as np
import pytest
from scipy.spatial.distance import pdist, squareform

from repro.cluster import (
    euclidean_condensed,
    euclidean_matrix,
    unique_rows_with_weights,
)


class TestEuclideanMatrix:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(25, 7))
        mine = euclidean_matrix(data)
        scipys = squareform(pdist(data))
        assert np.allclose(mine, scipys)

    def test_zero_diagonal(self):
        data = np.random.default_rng(1).normal(size=(10, 3))
        assert np.allclose(np.diag(euclidean_matrix(data)), 0.0)

    def test_symmetry(self):
        data = np.random.default_rng(2).normal(size=(12, 4))
        matrix = euclidean_matrix(data)
        assert np.allclose(matrix, matrix.T)

    def test_identical_points_zero(self):
        data = np.ones((3, 5))
        assert np.allclose(euclidean_matrix(data), 0.0)

    def test_no_negative_from_cancellation(self):
        # Large magnitudes can make |x|²+|y|²-2xy slightly negative.
        data = np.full((4, 2), 1e8) + np.random.default_rng(3).normal(
            size=(4, 2)
        )
        assert (euclidean_matrix(data) >= 0).all()

    def test_one_dim_rejected(self):
        with pytest.raises(ValueError):
            euclidean_matrix(np.ones(5))


class TestCondensed:
    def test_matches_scipy_pdist(self):
        data = np.random.default_rng(4).normal(size=(15, 3))
        assert np.allclose(euclidean_condensed(data), pdist(data))

    def test_length(self):
        data = np.random.default_rng(5).normal(size=(10, 2))
        assert euclidean_condensed(data).shape == (45,)


class TestUniqueRows:
    def test_collapse(self):
        data = np.array([[1, 0], [0, 1], [1, 0], [1, 0]])
        prototypes, weights, inverse = unique_rows_with_weights(data)
        assert prototypes.shape[0] == 2
        assert sorted(weights.tolist()) == [1.0, 3.0]

    def test_inverse_reconstructs(self):
        data = np.array([[1, 0], [0, 1], [1, 0]])
        prototypes, _, inverse = unique_rows_with_weights(data)
        assert (prototypes[inverse] == data).all()

    def test_all_unique(self):
        data = np.arange(12).reshape(4, 3)
        prototypes, weights, _ = unique_rows_with_weights(data)
        assert prototypes.shape[0] == 4
        assert (weights == 1).all()

    def test_weights_sum_to_rows(self):
        data = np.random.default_rng(6).integers(0, 2, size=(50, 4))
        _, weights, _ = unique_rows_with_weights(data)
        assert weights.sum() == 50
