"""Tests for Figure 2 heatmap data and renderings."""

import numpy as np
import pytest

from repro.cluster import (
    Biclusterer,
    build_heatmap,
    render_ppm,
    render_text,
    standardize_columns,
)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(3)
    blocks = []
    for band in range(3):
        block = np.zeros((40, 24))
        block[:, band * 8:band * 8 + 8] = rng.poisson(3, (40, 8)) + 1
        blocks.append(block)
    counts = np.vstack(blocks)
    result = Biclusterer().fit(counts)
    return counts, result


class TestStandardize:
    def test_zero_mean(self):
        data = np.random.default_rng(1).poisson(4, (30, 5)).astype(float)
        z = standardize_columns(data)
        assert np.allclose(z.mean(axis=0), 0.0)

    def test_constant_column_zero(self):
        data = np.hstack([
            np.full((10, 1), 7.0),
            np.random.default_rng(2).normal(size=(10, 1)),
        ])
        z = standardize_columns(data)
        assert np.allclose(z[:, 0], 0.0)


class TestBuildHeatmap:
    def test_shape_preserved(self, fitted):
        counts, result = fitted
        heatmap = build_heatmap(counts, result)
        assert heatmap.z.shape == counts.shape

    def test_orders_are_permutations(self, fitted):
        counts, result = fitted
        heatmap = build_heatmap(counts, result)
        assert sorted(heatmap.row_order.tolist()) == list(
            range(counts.shape[0])
        )
        assert sorted(heatmap.column_order.tolist()) == list(
            range(counts.shape[1])
        )

    def test_rows_grouped_by_bicluster(self, fitted):
        counts, result = fitted
        heatmap = build_heatmap(counts, result)
        labels = heatmap.row_cluster_of
        nonzero = labels[labels > 0]
        transitions = sum(
            1 for a, b in zip(nonzero, nonzero[1:]) if a != b
        )
        # Members of each bicluster must be contiguous in display order.
        assert transitions == len(result.biclusters) - 1

    def test_block_structure_visible(self, fitted):
        """Within a bicluster's display rows, its own feature columns must
        be hotter than the rest — the red blocks of Figure 2."""
        counts, result = fitted
        heatmap = build_heatmap(counts, result)
        for bicluster in result.biclusters:
            display_rows = [
                i for i, original in enumerate(heatmap.row_order)
                if original in set(bicluster.sample_indices.tolist())
            ]
            display_cols = [
                j for j, original in enumerate(heatmap.column_order)
                if original in set(bicluster.feature_indices.tolist())
            ]
            block = heatmap.z[np.ix_(display_rows, display_cols)]
            rest = np.delete(heatmap.z[display_rows, :], display_cols,
                             axis=1)
            assert block.mean() > rest.mean()


class TestRenderings:
    def test_text_render_dimensions(self, fitted):
        counts, result = fitted
        heatmap = build_heatmap(counts, result)
        text = render_text(heatmap, max_rows=20, max_cols=30)
        lines = text.splitlines()
        assert len(lines) == 20
        assert all("|" in line for line in lines)

    def test_ppm_render(self, fitted, tmp_path):
        counts, result = fitted
        heatmap = build_heatmap(counts, result)
        path = tmp_path / "figure2.ppm"
        render_ppm(heatmap, str(path))
        raw = path.read_bytes()
        assert raw.startswith(b"P6\n")
        header, rest = raw.split(b"\n255\n", 1)
        width, height = map(int, header.split(b"\n")[1].split())
        assert (width, height) == (counts.shape[1], counts.shape[0])
        assert len(rest) == width * height * 3
