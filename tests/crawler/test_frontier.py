"""Tests for the crawl frontier."""

import pytest

from repro.crawler import Frontier


class TestQueueing:
    def test_fifo_order(self):
        frontier = Frontier()
        frontier.add("http://a.test/1")
        frontier.add("http://a.test/2")
        assert frontier.next()[0] == "http://a.test/1"
        assert frontier.next()[0] == "http://a.test/2"

    def test_duplicate_rejected(self):
        frontier = Frontier()
        assert frontier.add("http://a.test/x")
        assert not frontier.add("http://a.test/x")
        assert len(frontier) == 1

    def test_depth_tracked(self):
        frontier = Frontier()
        frontier.add("http://a.test/x", depth=3)
        assert frontier.next() == ("http://a.test/x", 3)

    def test_empty_returns_none(self):
        assert Frontier().next() is None


class TestBudgets:
    def test_max_pages(self):
        frontier = Frontier(max_pages=2)
        for i in range(5):
            frontier.add(f"http://a.test/{i}")
        assert frontier.next() is not None
        assert frontier.next() is not None
        assert frontier.next() is None
        assert frontier.dispensed == 2

    def test_max_depth_drops(self):
        frontier = Frontier(max_depth=1)
        assert not frontier.add("http://a.test/deep", depth=2)
        assert frontier.dropped_depth == 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            Frontier(max_pages=0)

    def test_exhausted_flag(self):
        frontier = Frontier(max_pages=1)
        frontier.add("http://a.test/x")
        assert not frontier.exhausted
        frontier.next()
        assert frontier.exhausted


class TestHostScoping:
    def test_offsite_dropped(self):
        frontier = Frontier(allowed_hosts={"a.test"})
        assert frontier.add("http://a.test/ok")
        assert not frontier.add("http://evil.test/bad")
        assert frontier.dropped_offsite == 1

    def test_no_scoping_by_default(self):
        frontier = Frontier()
        assert frontier.add("http://anywhere.test/x")
