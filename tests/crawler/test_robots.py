"""Tests for robots.txt parsing and policy."""

from repro.crawler import RobotsPolicy, parse_robots


class TestParsing:
    BODY = (
        "# portal robots\n"
        "User-agent: *\n"
        "Disallow: /private/\n"
        "Allow: /private/public-subdir/\n"
        "Crawl-delay: 2\n"
        "\n"
        "User-agent: evilbot\n"
        "Disallow: /\n"
    )

    def test_wildcard_group(self):
        policy = parse_robots(self.BODY, user_agent="psigene-crawler")
        assert "/private/" in policy.disallow
        assert policy.crawl_delay == 2.0

    def test_specific_group_wins(self):
        policy = parse_robots(self.BODY, user_agent="evilbot")
        assert policy.disallow == ["/"]
        assert policy.crawl_delay == 0.0

    def test_comments_ignored(self):
        policy = parse_robots("# Disallow: /fake\nUser-agent: *\n")
        assert policy.disallow == []

    def test_empty_body(self):
        policy = parse_robots("")
        assert policy.allowed("/anything")

    def test_bad_crawl_delay_ignored(self):
        policy = parse_robots(
            "User-agent: *\nCrawl-delay: soon\nDisallow: /x\n"
        )
        assert policy.crawl_delay == 0.0

    def test_multiple_agents_share_group(self):
        body = (
            "User-agent: a\nUser-agent: b\nDisallow: /shared\n"
        )
        assert "/shared" in parse_robots(body, user_agent="a").disallow
        assert "/shared" in parse_robots(body, user_agent="b").disallow


class TestPolicy:
    def test_no_rules_allows_everything(self):
        assert RobotsPolicy().allowed("/anything")

    def test_disallow_prefix(self):
        policy = RobotsPolicy(disallow=["/private/"])
        assert not policy.allowed("/private/x.html")
        assert policy.allowed("/public/x.html")

    def test_allow_overrides_with_longer_match(self):
        policy = RobotsPolicy(
            disallow=["/private/"], allow=["/private/ok/"]
        )
        assert policy.allowed("/private/ok/page.html")
        assert not policy.allowed("/private/secret.html")

    def test_disallow_root(self):
        policy = RobotsPolicy(disallow=["/"])
        assert not policy.allowed("/index.html")

    def test_equal_length_allow_wins(self):
        policy = RobotsPolicy(disallow=["/a/"], allow=["/a/"])
        assert policy.allowed("/a/x")
