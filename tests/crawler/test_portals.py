"""Tests for the simulated portals."""

import json

import pytest

from repro.corpus.grammar import AttackSample
from repro.crawler import PORTAL_NAMES, Portal, SimulatedWeb


def _samples(count):
    return [
        AttackSample(
            sample_id=f"s{i}",
            payload=f"id={i}' union select {i},2-- -",
            family="union-extract",
        )
        for i in range(count)
    ]


class TestPortal:
    def test_serves_index(self):
        portal = Portal("p.test", _samples(5))
        page = portal.get("/index.html")
        assert page.status == 200
        assert "advisory" in page.body

    def test_serves_advisories(self):
        portal = Portal("p.test", _samples(3))
        page = portal.get("/advisory/00000.html")
        assert page.status == 200
        assert "Proof of concept" in page.body

    def test_404_for_unknown(self):
        portal = Portal("p.test", _samples(1))
        assert portal.get("/nope.html").status == 404

    def test_robots_served(self):
        portal = Portal("p.test", _samples(1))
        page = portal.get("/robots.txt")
        assert "Disallow: /private/" in page.body

    def test_index_pagination(self):
        portal = Portal("p.test", _samples(60), per_page=25)
        assert portal.get("/index.html").status == 200
        assert portal.get("/index_1.html").status == 200
        assert portal.get("/index_2.html").status == 200
        assert "index_1.html" in portal.get("/index.html").body

    def test_api_portal_serves_json(self):
        portal = Portal("api.test", _samples(150), api=True)
        page = portal.get("/api/search?page=0")
        assert page.status == 200
        data = json.loads(page.body)
        assert data["pages"] == 2
        assert len(data["results"]) == 100

    def test_non_api_portal_has_no_api(self):
        portal = Portal("p.test", _samples(5), api=False)
        assert portal.get("/api/search?page=0").status == 404

    def test_payload_embedded_escaped(self):
        sample = AttackSample(
            sample_id="s0", payload="id=1&x=<script>", family="fuzz-junk"
        )
        portal = Portal("p.test", [sample])
        body = portal.get("/advisory/00000.html").body
        assert "&amp;" in body or "&lt;" in body


class TestSimulatedWeb:
    @pytest.fixture(scope="class")
    def web(self):
        return SimulatedWeb(corpus_size=120, seed=3)

    def test_four_portals(self, web):
        assert set(web.portals) == set(PORTAL_NAMES)

    def test_osvdb_has_api(self, web):
        assert web.portals["osvdb.test"].api
        assert not web.portals["exploitdb.test"].api

    def test_seeds_one_per_portal(self, web):
        assert len(web.seeds()) == len(PORTAL_NAMES)

    def test_unknown_host_connection_error(self, web):
        assert web.get("unknown.test", "/").status == 0

    def test_overlap_publishes_duplicates(self, web):
        published = sum(
            portal.sample_count for portal in web.portals.values()
        )
        assert published > web.distinct_samples

    def test_deterministic(self):
        first = SimulatedWeb(corpus_size=50, seed=9)
        second = SimulatedWeb(corpus_size=50, seed=9)
        assert (
            first.get("exploitdb.test", "/index.html").body
            == second.get("exploitdb.test", "/index.html").body
        )
