"""Failure-injection tests: the crawler against a hostile/broken web."""

import numpy as np
import pytest

from repro.crawler import CrawlSession, Page, SimulatedWeb
from repro.crawler.portals import PORTAL_NAMES


class FlakyWeb(SimulatedWeb):
    """Wraps the simulated web with injected failures.

    Every Nth response becomes a 500; some advisory bodies are replaced
    with garbage (truncated HTML, binary-ish noise, malformed JSON).
    """

    def __init__(self, *, error_every=7, garbage_every=11, **kwargs):
        super().__init__(**kwargs)
        self._counter = 0
        self._error_every = error_every
        self._garbage_every = garbage_every

    def get(self, host, path_and_query):
        page = super().get(host, path_and_query)
        if path_and_query == "/robots.txt":
            return page
        self._counter += 1
        if self._counter % self._error_every == 0:
            return Page(500, "text/html", "internal error")
        if self._counter % self._garbage_every == 0:
            if "json" in page.content_type:
                return Page(200, "application/json", '{"results": [')
            return Page(
                200, "text/html",
                "<html><code>no question mark here \x00\xff</code>",
            )
        return page


class TestCrawlerResilience:
    def test_crawl_survives_errors_and_garbage(self):
        web = FlakyWeb(corpus_size=300, seed=8)
        report = CrawlSession(web).run()
        # It must finish, and still harvest a substantial corpus.
        assert len(report.samples) > 100

    def test_no_duplicate_samples_despite_retries(self):
        web = FlakyWeb(corpus_size=200, seed=9)
        report = CrawlSession(web).run()
        payloads = [s.payload for s in report.samples]
        from repro.normalize import normalize

        normalized = [normalize(p) for p in payloads]
        assert len(normalized) == len(set(normalized))

    def test_dead_portal_does_not_block_others(self):
        class DeadPortalWeb(SimulatedWeb):
            def get(self, host, path_and_query):
                if host == PORTAL_NAMES[0]:
                    return Page(0, "", "")  # connection refused
                return super().get(host, path_and_query)

        web = DeadPortalWeb(corpus_size=200, seed=10)
        report = CrawlSession(web).run()
        assert PORTAL_NAMES[0] not in report.per_portal
        assert len(report.per_portal) == len(PORTAL_NAMES) - 1
        assert len(report.samples) > 50

    def test_malformed_json_api_degrades_gracefully(self):
        class BrokenApiWeb(SimulatedWeb):
            def get(self, host, path_and_query):
                if path_and_query.startswith("/api/search"):
                    return Page(200, "application/json", "{]")
                return super().get(host, path_and_query)

        web = BrokenApiWeb(corpus_size=200, seed=11)
        report = CrawlSession(web).run()
        # HTML advisories still deliver the corpus.
        assert len(report.samples) > 100


class TestDetectorRobustness:
    """Detectors must survive arbitrary payloads without exceptions."""

    HOSTILE = [
        "",
        "=",
        "&&&&&",
        "a" * 50_000,
        "%" * 999,
        "id=" + "%25" * 500 + "27",
        "id=\x00\x01\x02",
        "q=" + "union select " * 300,
        "\udcff\udcfe",  # lone surrogates
        "𝕌𝕟𝕚𝕔𝕠𝕕𝕖=𝕒𝕥𝕥𝕒𝕔𝕜",
    ]

    @pytest.mark.parametrize("payload", HOSTILE, ids=range(len(HOSTILE)))
    def test_psigene_total(self, small_signatures, payload):
        score, _fired = small_signatures.evaluate(payload)
        assert 0.0 <= score <= 1.0

    @pytest.mark.parametrize("payload", HOSTILE, ids=range(len(HOSTILE)))
    def test_rulesets_total(self, payload):
        from repro.ids.rulesets import (
            build_bro_ruleset,
            build_modsec_ruleset,
            build_snort_ruleset,
        )

        for ruleset in (
            build_bro_ruleset(), build_snort_ruleset(),
            build_modsec_ruleset(),
        ):
            detection = ruleset.inspect(payload)
            assert isinstance(detection.alert, bool)
