"""Tests for normalized payload deduplication."""

from repro.crawler import PayloadDeduplicator


class TestDedup:
    def test_first_admission(self):
        dedup = PayloadDeduplicator()
        assert dedup.admit("id=1' union select 1")
        assert dedup.accepted == 1

    def test_exact_duplicate_rejected(self):
        dedup = PayloadDeduplicator()
        dedup.admit("id=1'")
        assert not dedup.admit("id=1'")
        assert dedup.rejected == 1

    def test_reencoded_duplicate_rejected(self):
        # %27 and ' normalize identically — cross-portal re-encodes collapse.
        dedup = PayloadDeduplicator()
        dedup.admit("id=1' union select 1,2")
        assert not dedup.admit("id=1%27+union+select+1,2")
        assert not dedup.admit("id=1%27/**/UNION/**/SELECT/**/1,2")

    def test_case_variant_rejected(self):
        dedup = PayloadDeduplicator()
        dedup.admit("id=1' or 1=1")
        assert not dedup.admit("id=1' OR 1=1")

    def test_distinct_payloads_kept(self):
        dedup = PayloadDeduplicator()
        assert dedup.admit("id=1' or 1=1")
        assert dedup.admit("id=2' or 1=1")
        assert len(dedup) == 2

    def test_counts_consistent(self):
        dedup = PayloadDeduplicator()
        for payload in ("a=1", "a=1", "b=2", "a=1", "c=3"):
            dedup.admit(payload)
        assert dedup.accepted == 3
        assert dedup.rejected == 2
        assert len(dedup) == 3
