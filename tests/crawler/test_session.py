"""Tests for the end-to-end crawl session."""

import pytest

from repro.crawler import CrawlSession, SimulatedWeb


@pytest.fixture(scope="module")
def report():
    web = SimulatedWeb(corpus_size=200, seed=12)
    return web, CrawlSession(web).run()


class TestCrawlCompleteness:
    def test_most_samples_recovered(self, report):
        web, result = report
        # The crawl must recover nearly every distinct published sample
        # (a few multiline payloads split across lines become noise).
        assert len(result.samples) >= web.distinct_samples * 0.9

    def test_all_portals_contribute(self, report):
        _, result = report
        assert set(result.per_portal) == set(
            SimulatedWeb(corpus_size=4, seed=0).portals
        )

    def test_robots_respected(self, report):
        _, result = report
        assert result.pages_blocked >= 1

    def test_payloads_seen_exceeds_unique(self, report):
        web, result = report
        # Cross-portal overlap means raw extractions > unique samples.
        assert result.payloads_seen > len(result.samples)

    def test_samples_have_portal_attribution(self, report):
        _, result = report
        assert all(s.portal for s in result.samples)

    def test_sample_ids_unique(self, report):
        _, result = report
        ids = [s.sample_id for s in result.samples]
        assert len(ids) == len(set(ids))

    def test_family_unknown_to_crawler(self, report):
        _, result = report
        assert all(s.family == "" for s in result.samples)


class TestBudget:
    def test_max_pages_respected(self):
        web = SimulatedWeb(corpus_size=200, seed=12)
        session = CrawlSession(web, max_pages=10)
        result = session.run()
        assert result.pages_fetched <= 10

    def test_deterministic_crawl(self):
        def crawl():
            web = SimulatedWeb(corpus_size=80, seed=5)
            return [s.payload for s in CrawlSession(web).run().samples]

        assert crawl() == crawl()
