"""Tests for the polite fetcher."""

import pytest

from repro.crawler import Fetcher, SimulatedClock, SimulatedWeb


@pytest.fixture
def web():
    return SimulatedWeb(corpus_size=30, seed=4)


class TestClock:
    def test_monotonic(self):
        clock = SimulatedClock()
        start = clock.now()
        clock.sleep(2.5)
        assert clock.now() == start + 2.5

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().sleep(-1)


class TestFetching:
    def test_fetch_ok(self, web):
        fetcher = Fetcher(web)
        result = fetcher.fetch("http://exploitdb.test/index.html")
        assert result is not None and result.ok

    def test_404_counted_as_error(self, web):
        fetcher = Fetcher(web)
        result = fetcher.fetch("http://exploitdb.test/missing.html")
        assert result is not None and not result.ok
        assert fetcher.stats.errors == 1

    def test_robots_blocked_returns_none(self, web):
        fetcher = Fetcher(web)
        result = fetcher.fetch(
            "http://exploitdb.test/private/internal.html"
        )
        assert result is None
        assert fetcher.stats.blocked_by_robots == 1

    def test_per_host_stats(self, web):
        fetcher = Fetcher(web)
        fetcher.fetch("http://exploitdb.test/index.html")
        fetcher.fetch("http://packetstorm.test/index.html")
        fetcher.fetch("http://exploitdb.test/about.html")
        assert fetcher.stats.per_host["exploitdb.test"] == 2
        assert fetcher.stats.per_host["packetstorm.test"] == 1


class TestPoliteness:
    def test_crawl_delay_enforced(self, web):
        clock = SimulatedClock()
        fetcher = Fetcher(web, clock=clock)
        fetcher.fetch("http://exploitdb.test/index.html")
        first_time = clock.now()
        fetcher.fetch("http://exploitdb.test/about.html")
        # Portal robots declare Crawl-delay: 1.
        assert clock.now() - first_time >= 1.0

    def test_delay_tracked_in_stats(self, web):
        clock = SimulatedClock()
        fetcher = Fetcher(web, clock=clock)
        fetcher.fetch("http://exploitdb.test/index.html")
        fetcher.fetch("http://exploitdb.test/about.html")
        assert fetcher.stats.total_delay > 0

    def test_different_hosts_not_delayed(self, web):
        clock = SimulatedClock()
        fetcher = Fetcher(web, clock=clock)
        fetcher.fetch("http://exploitdb.test/index.html")
        before = clock.now()
        fetcher.fetch("http://packetstorm.test/index.html")
        assert clock.now() - before < 1.0
