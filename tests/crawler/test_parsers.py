"""Tests for page parsing and payload extraction."""

from repro.crawler import (
    extract_links,
    extract_payloads_from_html,
    extract_payloads_from_json,
)


class TestLinkExtraction:
    def test_absolute_links(self):
        body = '<a href="http://other.test/x">x</a>'
        assert extract_links(body, "base.test") == ["http://other.test/x"]

    def test_relative_links_resolved(self):
        body = '<a href="/advisory/1.html">a</a>'
        assert extract_links(body, "base.test") == [
            "http://base.test/advisory/1.html"
        ]

    def test_bare_relative_links(self):
        body = '<a href="page.html">a</a>'
        assert extract_links(body, "b.test") == ["http://b.test/page.html"]

    def test_anchors_and_mailto_dropped(self):
        body = '<a href="#top">t</a><a href="mailto:x@y">m</a>'
        assert extract_links(body, "b.test") == []

    def test_multiple_links_in_order(self):
        body = '<a href="/1">1</a><a href="/2">2</a>'
        links = extract_links(body, "b.test")
        assert links == ["http://b.test/1", "http://b.test/2"]


class TestHtmlPayloadExtraction:
    def test_code_block_url(self):
        body = "<code>http://v.example/p.php?id=1' or 1=1-- -</code>"
        assert extract_payloads_from_html(body) == ["id=1' or 1=1-- -"]

    def test_pre_block_raw_request(self):
        body = "<pre>GET /x.php?cat=2%27--+- HTTP/1.1</pre>"
        assert extract_payloads_from_html(body) == ["cat=2%27--+-"]

    def test_html_entities_unescaped(self):
        body = "<code>http://v/p?a=1&amp;b=2' and 3&lt;4</code>"
        assert extract_payloads_from_html(body) == ["a=1&b=2' and 3<4"]

    def test_no_question_mark_no_payload(self):
        body = "<code>SELECT * FROM users</code>"
        assert extract_payloads_from_html(body) == []

    def test_text_outside_blocks_ignored(self):
        body = "<p>visit http://x/p?id=1</p><code>nothing here</code>"
        assert extract_payloads_from_html(body) == []

    def test_multiline_block(self):
        body = (
            "<pre>http://v/a.php?x=1' union select 1\n"
            "http://v/b.php?y=2' union select 2</pre>"
        )
        payloads = extract_payloads_from_html(body)
        assert payloads == [
            "x=1' union select 1", "y=2' union select 2"
        ]


class TestJsonPayloadExtraction:
    def test_valid_response(self):
        body = (
            '{"page": 1, "pages": 3, "results": ['
            '{"id": "a", "payload": "id=1%27"},'
            '{"id": "b", "payload": "cat=2%27"}]}'
        )
        payloads, page, pages = extract_payloads_from_json(body)
        assert payloads == ["id=1%27", "cat=2%27"]
        assert (page, pages) == (1, 3)

    def test_malformed_json_is_safe(self):
        payloads, page, pages = extract_payloads_from_json("{oops")
        assert payloads == []
        assert pages == 1

    def test_missing_fields_tolerated(self):
        payloads, page, pages = extract_payloads_from_json(
            '{"results": [{"id": "no-payload-key"}]}'
        )
        assert payloads == []
