"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster import Dendrogram, euclidean_matrix, upgma
from repro.http.url import parse_query, quote, split_url, unquote
from repro.learn import sigmoid
from repro.normalize import normalize
from repro.regexlib import count_all, validate


# ---------------------------------------------------------------------------
# URL codec
# ---------------------------------------------------------------------------

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=60,
)


@given(printable)
def test_quote_unquote_roundtrip(text):
    assert unquote(quote(text)) == text


@given(printable)
def test_unquote_total(text):
    # Decoding arbitrary input never raises and never grows the string.
    assert len(unquote(text)) <= len(text)


@given(printable, printable)
def test_parse_query_roundtrip_structure(name, value):
    name = name.replace("&", "").replace("=", "") or "k"
    value = value.replace("&", "")
    pairs = parse_query(f"{name}={value}")
    assert pairs == [(name, value)]


@given(printable)
def test_split_url_never_raises(text):
    host, path, query = split_url(text)
    assert isinstance(host, str)
    assert path.startswith("/") or path == "/"


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------

@given(printable)
def test_normalize_idempotent_on_own_output(text):
    once = normalize(text)
    assert normalize(once) == once


@given(printable)
def test_normalize_output_ascii_lowercase(text):
    out = normalize(text)
    assert all(ord(ch) < 128 for ch in out)
    assert out == out.lower()


@given(st.text(max_size=40))
def test_normalize_total_on_unicode(text):
    normalize(text)  # must never raise


# ---------------------------------------------------------------------------
# count_all
# ---------------------------------------------------------------------------

@given(printable, printable)
def test_count_all_additive_over_concatenation(a, b):
    # Counting a literal token is superadditive over concatenation
    # (the seam can only create extra matches, never destroy them).
    token = "union"
    separated = a + " | " + b
    assert count_all(token, separated) >= (
        count_all(token, a) + count_all(token, b)
    ) - 1


@given(printable)
def test_count_all_nonnegative(text):
    assert count_all(r"\bselect\b", text) >= 0


@given(st.integers(min_value=1, max_value=6), printable)
def test_count_all_scales_with_repetition(repeats, filler):
    filler = filler.replace("sleep", "")
    text = (" sleep( " + filler) * repeats
    assert count_all(r"sleep\s*\(", text) == repeats


# ---------------------------------------------------------------------------
# Sigmoid
# ---------------------------------------------------------------------------

@given(hnp.arrays(np.float64, st.integers(1, 30),
                  elements=st.floats(-1e6, 1e6)))
def test_sigmoid_bounded_and_monotone(z):
    p = np.asarray(sigmoid(z))
    assert ((p >= 0) & (p <= 1)).all()
    order = np.argsort(z)
    assert (np.diff(p[order]) >= -1e-12).all()


# ---------------------------------------------------------------------------
# UPGMA / dendrogram
# ---------------------------------------------------------------------------

@st.composite
def point_sets(draw):
    n = draw(st.integers(min_value=3, max_value=18))
    d = draw(st.integers(min_value=1, max_value=4))
    values = draw(
        hnp.arrays(
            np.float64, (n, d),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    return values


@given(point_sets())
@settings(max_examples=40, deadline=None)
def test_upgma_heights_monotone(points):
    linkage = upgma(points)
    assert (np.diff(linkage[:, 2]) >= -1e-9).all()


@given(point_sets())
@settings(max_examples=40, deadline=None)
def test_upgma_total_weight_conserved(points):
    linkage = upgma(points)
    assert linkage[-1, 3] == points.shape[0]


@given(point_sets())
@settings(max_examples=30, deadline=None)
def test_dendrogram_cut_partitions(points):
    n = points.shape[0]
    dendrogram = Dendrogram(upgma(points), n)
    for k in (1, 2, n):
        labels = dendrogram.cut_to_k(k)
        assert labels.shape == (n,)
        # A valid partition: every leaf gets exactly one label, labels
        # dense from zero.
        unique = np.unique(labels)
        assert (unique == np.arange(unique.size)).all()


@given(point_sets())
@settings(max_examples=30, deadline=None)
def test_cophenetic_dominates_original_distance(points):
    """UPGMA cophenetic distances are ultrametric approximations: the
    correlation with original distances is always in [-1, 1] and the
    cophenetic matrix is symmetric with zero diagonal."""
    n = points.shape[0]
    dendrogram = Dendrogram(upgma(points), n)
    coph = dendrogram.cophenetic_matrix()
    assert np.allclose(coph, coph.T)
    assert np.allclose(np.diag(coph), 0.0)
    corr = dendrogram.cophenetic_correlation(euclidean_matrix(points))
    assert -1.0 - 1e-9 <= corr <= 1.0 + 1e-9


@given(point_sets())
@settings(max_examples=30, deadline=None)
def test_cophenetic_ultrametric_triangle(points):
    """Cophenetic distances satisfy the strong (ultrametric) triangle
    inequality: d(a,c) <= max(d(a,b), d(b,c))."""
    n = points.shape[0]
    dendrogram = Dendrogram(upgma(points), n)
    coph = dendrogram.cophenetic_matrix()
    rng = np.random.default_rng(0)
    for _ in range(20):
        a, b, c = rng.integers(0, n, size=3)
        assert coph[a, c] <= max(coph[a, b], coph[b, c]) + 1e-9


# ---------------------------------------------------------------------------
# Feature extraction
# ---------------------------------------------------------------------------

@given(printable, printable)
@settings(max_examples=25, deadline=None)
def test_extraction_invariant_to_mutation_roundtrip(prefix, suffix):
    """Any payload and its url-encoded form produce identical feature
    vectors — normalization is a true canonicalizer."""
    from repro.features import FeatureExtractor

    extractor = _shared_extractor()
    # ``+`` is wire-ambiguous: a raw ``+`` is a transport-encoded space,
    # while quote() emits ``%2B`` (a literal plus), so the two forms decode
    # to different strings by design and the invariant cannot apply.
    prefix = prefix.replace("+", "")
    suffix = suffix.replace("+", "")
    payload = f"{prefix}' union select {suffix}"
    encoded = quote(payload)
    assert (
        extractor.extract(payload) == extractor.extract(encoded)
    ).all()


_EXTRACTOR_CACHE = []


def _shared_extractor():
    if not _EXTRACTOR_CACHE:
        from repro.features import FeatureExtractor

        _EXTRACTOR_CACHE.append(FeatureExtractor())
    return _EXTRACTOR_CACHE[0]
