"""Additional hypothesis property tests: serialization, pruning, linkage
weights, robots, and the Perdisci LCS."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster import unique_rows_with_weights, upgma
from repro.core import (
    GeneralizedSignature,
    SignatureSet,
    signature_set_from_json,
    signature_set_to_json,
)
from repro.crawler import parse_robots
from repro.features import FeatureMatrix, build_catalog, prune
from repro.learn import LogisticModel
from repro.perdisci import common_token_subsequence, tokenize

_CATALOG = build_catalog()


# ---------------------------------------------------------------------------
# Serialization fuzz
# ---------------------------------------------------------------------------

@given(
    st.lists(
        st.floats(-50, 50, allow_nan=False), min_size=2, max_size=6
    ),
    st.floats(0.01, 0.99),
    st.integers(1, 11),
)
@settings(max_examples=30, deadline=None)
def test_signature_serialization_roundtrip(theta, threshold, index):
    features = _CATALOG.subset(list(range(len(theta) - 1)))
    signature = GeneralizedSignature(
        bicluster_index=index,
        features=features,
        model=LogisticModel(np.array(theta)),
        threshold=threshold,
    )
    restored = signature_set_from_json(
        signature_set_to_json(SignatureSet([signature]))
    )
    assert np.allclose(restored[0].model.theta, theta)
    assert restored[0].threshold == threshold
    payload = "id=1' union select sleep(1),2"
    assert restored[0].probability(payload) == (
        signature.probability(payload)
    )


# ---------------------------------------------------------------------------
# Pruning properties
# ---------------------------------------------------------------------------

@st.composite
def count_matrices(draw):
    rows = draw(st.integers(2, 12))
    columns = draw(st.integers(2, 10))
    values = draw(hnp.arrays(
        np.int32, (rows, columns),
        elements=st.integers(0, 4),
    ))
    return values


@given(count_matrices())
@settings(max_examples=40, deadline=None)
def test_prune_idempotent(counts):
    catalog = _CATALOG.subset(list(range(counts.shape[1])))
    matrix = FeatureMatrix(
        counts=counts, catalog=catalog,
        sample_ids=[f"s{i}" for i in range(counts.shape[0])],
    )
    once, _ = prune(matrix)
    twice, report = prune(once)
    assert twice.n_features == once.n_features
    assert report.zero_support == ()
    assert report.duplicates == ()


@given(count_matrices())
@settings(max_examples=40, deadline=None)
def test_prune_preserves_distinct_information(counts):
    catalog = _CATALOG.subset(list(range(counts.shape[1])))
    matrix = FeatureMatrix(
        counts=counts, catalog=catalog,
        sample_ids=[f"s{i}" for i in range(counts.shape[0])],
    )
    pruned, _ = prune(matrix)
    # Distinct rows stay distinct: duplicate-column collapse never merges
    # two samples that differed.
    originals = {row.tobytes() for row in np.unique(counts, axis=0)}
    pruned_rows = {row.tobytes() for row in np.unique(
        pruned.counts, axis=0
    )}
    assert len(pruned_rows) == len(originals)


# ---------------------------------------------------------------------------
# Weighted UPGMA invariance
# ---------------------------------------------------------------------------

@given(st.integers(0, 10_000), st.integers(2, 8))
@settings(max_examples=25, deadline=None)
def test_weighted_upgma_equals_expanded(seed, duplicates):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(6, 3))
    expanded = np.vstack([base] + [base[:2]] * duplicates)
    prototypes, weights, _ = unique_rows_with_weights(expanded)
    weighted = upgma(prototypes, weights=weights)
    plain = upgma(expanded)
    plain_heights = np.sort(plain[:, 2])
    plain_heights = plain_heights[plain_heights > 1e-12]
    assert np.allclose(np.sort(weighted[:, 2]), plain_heights)


# ---------------------------------------------------------------------------
# robots.txt totality
# ---------------------------------------------------------------------------

@given(st.text(max_size=300))
@settings(max_examples=60, deadline=None)
def test_parse_robots_total(text):
    policy = parse_robots(text)
    assert isinstance(policy.allowed("/index.html"), bool)


# ---------------------------------------------------------------------------
# LCS properties
# ---------------------------------------------------------------------------

payload_text = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=122),
    min_size=0, max_size=40,
)


@given(st.lists(payload_text, min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_lcs_is_subsequence_of_every_member(payloads):
    common = common_token_subsequence(payloads)
    for payload in payloads:
        tokens = tokenize(payload)
        position = 0
        for token in common:
            while position < len(tokens) and tokens[position] != token:
                position += 1
            assert position < len(tokens), (common, tokens)
            position += 1


@given(payload_text)
@settings(max_examples=50, deadline=None)
def test_lcs_of_identical_is_identity(payload):
    assert common_token_subsequence([payload, payload]) == tokenize(payload)


# ---------------------------------------------------------------------------
# NFA differential against re
# ---------------------------------------------------------------------------

_NFA_PATTERNS = [
    r"union\s+select",
    r"\bselect\b",
    r"ch(a)?r\s*\(\s*\d",
    r"[^a-z0-9]+=",
    r"(abc|abd|ae)x",
    r"--[\s']",
]


@given(
    st.sampled_from(_NFA_PATTERNS),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=60,
    ),
)
@settings(max_examples=120, deadline=None)
def test_nfa_agrees_with_re_on_random_text(pattern, text):
    import re

    from repro.regexlib import NfaMatcher

    matcher = _nfa_cache(pattern)
    assert matcher.search(text) == bool(
        re.search(pattern, text, re.IGNORECASE)
    )


_NFA_CACHE = {}


def _nfa_cache(pattern):
    from repro.regexlib import NfaMatcher

    if pattern not in _NFA_CACHE:
        _NFA_CACHE[pattern] = NfaMatcher(pattern)
    return _NFA_CACHE[pattern]
