"""One command to regenerate the paper's full artifact bundle.

Runs the benchmark suite (every experiment, table, figure, ablation, and
extension bench) so each one re-emits its ``BENCH_<slug>.json`` artifact
through the shared :mod:`repro.bench` writer, then folds the bundle into:

``CORPUS_HASHES.json`` — the corpus content-hash ledger, the union of
every artifact's recorded corpus fingerprints (order-sensitive SHA-256
over per-payload digests).  A conflict — two artifacts recording
different digests for the same corpus name — fails the run: the bundle
would not describe one coherent evaluation.

``SUMMARY.json`` — the unified, schema-validated evaluation summary:
per-bench kind/seed/metrics plus the corpus ledger and environment
provenance, so the whole trajectory reads from a single file.

Modes:

``--quick``
    Smoke subset (tables I/II/IV + figure 4 — one shared pipeline
    build, under a minute) proving the bundle machinery end to end.
    The default full mode regenerates everything (several minutes).

``--out DIR``
    Write artifacts, ledger, and summary into ``DIR`` instead of the
    committed ``benchmarks/results/`` (exported to the bench run via
    ``REPRO_BENCH_RESULTS_DIR``).

Usage::

    python scripts/reproduce_all.py --quick
    python scripts/reproduce_all.py            # full bundle
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))
)

#: The smoke subset: cheap benches sharing one pipeline build, still
#: exercising context-corpus hashing and all three artifact kinds'
#: plumbing (table + figure + the shared writer).
QUICK_BENCHES = (
    "benchmarks/test_table1_vulndb.py",
    "benchmarks/test_table2_feature_sources.py",
    "benchmarks/test_table4_rulesets.py",
    "benchmarks/test_figure4_cumulative_tpr.py",
)


def run_benches(paths: tuple[str, ...], out_dir: str) -> int:
    """Run the bench suite with artifacts redirected to ``out_dir``."""
    env = dict(os.environ)
    env["REPRO_BENCH_RESULTS_DIR"] = out_dir
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    command = [sys.executable, "-m", "pytest", "-q", *paths]
    print(f"$ {' '.join(command)}")
    return subprocess.run(command, env=env, cwd=REPO_ROOT).returncode


def fold_bundle(out_dir: str, mode: str) -> None:
    """Build the corpus ledger and SUMMARY.json from ``out_dir``."""
    from repro.bench import (
        build_summary,
        dump_bench_json,
        list_artifacts,
        load_artifact,
        validate_summary,
    )

    paths = list_artifacts(out_dir)
    if not paths:
        raise SystemExit(
            f"no BENCH_*.json artifacts in {out_dir}; bench run "
            f"produced nothing to fold"
        )
    artifacts = [load_artifact(path) for path in paths]

    corpus_hashes: dict[str, str] = {}
    for artifact in artifacts:
        for name, digest in artifact["corpus"].items():
            known = corpus_hashes.get(name)
            if known is not None and known != digest:
                raise SystemExit(
                    f"corpus ledger conflict: {name!r} hashed "
                    f"{digest[:12]}… by {artifact['bench']} but "
                    f"{known[:12]}… elsewhere"
                )
            corpus_hashes[name] = digest

    ledger_path = os.path.join(out_dir, "CORPUS_HASHES.json")
    with open(ledger_path, "w") as handle:
        handle.write(
            dump_bench_json({"schema": 1, "corpora": corpus_hashes})
        )
    print(f"[saved to {ledger_path}] ({len(corpus_hashes)} corpora)")

    summary = validate_summary(build_summary(
        artifacts, mode=mode, corpus_hashes=corpus_hashes
    ))
    summary_path = os.path.join(out_dir, "SUMMARY.json")
    with open(summary_path, "w") as handle:
        handle.write(dump_bench_json(summary))
    print(
        f"[saved to {summary_path}] ({len(summary['benches'])} benches, "
        f"mode={mode})"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate every bench artifact and fold the bundle."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run only the smoke subset (fast end-to-end proof)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "benchmarks", "results"),
        help="artifact output directory (default: benchmarks/results)",
    )
    args = parser.parse_args(argv)

    out_dir = os.path.abspath(args.out)
    os.makedirs(out_dir, exist_ok=True)
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

    mode = "quick" if args.quick else "full"
    paths = QUICK_BENCHES if args.quick else ("benchmarks",)
    returncode = run_benches(paths, out_dir)
    if returncode != 0:
        print(
            f"bench run exited {returncode}; folding whatever artifacts "
            f"were emitted",
            file=sys.stderr,
        )
    fold_bundle(out_dir, mode)
    return returncode


if __name__ == "__main__":
    raise SystemExit(main())
