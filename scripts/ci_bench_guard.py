"""CI guard: serving-path performance must not regress against baseline.

Two committed artifacts under ``benchmarks/results/`` are the baseline
ledger the guard holds the tree to:

``BENCH_matching.json`` — the fused single-pass matcher.  The guard
re-measures the same configuration fresh (canonical small detector,
seeded fuzz corpus — no bench-scale training required) and fails when:

1. the fresh run's verdicts are not bit-identical to the legacy path, or
2. the fresh speedup falls below 85% of the committed baseline speedup
   (a >15% regression of the fast path relative to the reference loop —
   a ratio of ratios, so it is insensitive to the runner's absolute
   speed).

``BENCH_serving.json`` — the sharded fleet (DESIGN.md §15).  The
committed artifact must clear the acceptance bars (modeled speedup
>= 2.5x at 4 shards, offline parity), and a fresh 2-shard live probe
must still serve with bit-exact parity and retain at least half of
single-shard aggregate capacity (multi-process coordination overhead
has not blown up).

``BENCH_canary.json`` — the closed canary loop (DESIGN.md §16).  The
committed artifact must record one round promoted through the
two-phase fleet reload with zero conformance divergences and one
injected FPR-budget violation rejected with the incumbent provably
unchanged.  The guard then replays both committed rounds through the
*current* gate implementation: the deltas the bench measured must
still produce the same promote/reject decisions, so gate-semantics
drift against the committed ledger fails CI even before the live
canary smoke step runs.

``BENCH_surfaces.json`` — the multi-surface detection ledger
(DESIGN.md §17).  Everything in it is deterministic from committed
seeds, so the guard recomputes the exact bench configuration (per-
family TPR/FPR through the full surface selection, the legacy
extraction's blindness, the surface scanner's detectability, and the
adversarial evasion search's survival rate) and requires the fresh
numbers to be *identical* to the committed artifact — any drift means
detector or extractor semantics changed without the ledger being
re-recorded.  The committed artifact must also clear the bench's
acceptance floors and keep the legacy-blind families at exactly zero
legacy TPR.

When a baseline artifact does not exist in HEAD (first run on a fresh
branch), that guard section records what it measured and passes: there
is nothing to regress against yet.

Usage: ``PYTHONPATH=src python scripts/ci_bench_guard.py``
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys

BASELINE_PATH = "benchmarks/results/BENCH_matching.json"
SERVING_BASELINE_PATH = "benchmarks/results/BENCH_serving.json"
CANARY_BASELINE_PATH = "benchmarks/results/BENCH_canary.json"
SURFACES_BASELINE_PATH = "benchmarks/results/BENCH_surfaces.json"
ALLOWED_FRACTION = 0.85
MIN_MODELED_SPEEDUP_AT_4 = 2.5
MIN_PROBE_EFFICIENCY = 0.5
PROBE_PAYLOAD_COUNT = 400


def committed_baseline(path: str = BASELINE_PATH) -> dict | None:
    """The baseline artifact as committed in HEAD, or None if absent."""
    result = subprocess.run(
        ["git", "show", f"HEAD:{path}"],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        return None
    try:
        return json.loads(result.stdout)
    except json.JSONDecodeError as error:
        raise AssertionError(
            f"committed {path} is not valid JSON: {error}"
        ) from error


def fresh_measurement() -> dict:
    """Benchmark the canonical small detector on the seeded fuzz corpus."""
    from repro.conformance import generate_corpus, train_default_detector
    from repro.match import bench_fused_matching

    detector = train_default_detector(2012)
    payloads = generate_corpus(seed=2012, budget="small")
    result = bench_fused_matching(
        detector.signature_set, payloads, repeats=5
    )
    return json.loads(result.to_json())


def check(baseline: dict | None, fresh: dict) -> str:
    """The guard's verdict line; raises AssertionError on regression."""
    if not fresh["identical"]:
        raise AssertionError(
            "fused verdicts diverged from the legacy path"
        )
    if fresh["speedup"] < 1.0:
        raise AssertionError(
            f"fused path is slower than legacy "
            f"(speedup {fresh['speedup']:.2f}x)"
        )
    if baseline is None:
        return (
            f"bench guard OK (no committed {BASELINE_PATH} baseline): "
            f"fresh speedup {fresh['speedup']:.2f}x, verdicts identical"
        )
    floor = ALLOWED_FRACTION * float(baseline["speedup"])
    if fresh["speedup"] < floor:
        raise AssertionError(
            f"fused speedup regressed >15%: fresh {fresh['speedup']:.2f}x "
            f"< floor {floor:.2f}x "
            f"(baseline {baseline['speedup']:.2f}x)"
        )
    return (
        f"bench guard OK: fresh speedup {fresh['speedup']:.2f}x "
        f">= floor {floor:.2f}x "
        f"(baseline {baseline['speedup']:.2f}x), verdicts identical"
    )


def serving_probe() -> dict:
    """A small live 2-shard fleet run: parity and retained capacity.

    Closed-loop over a slice of the deterministic replay trace, one
    shard then two, on the same host.  Returns measured throughputs and
    the parity verdict — cheap enough for every CI run, live enough to
    catch a fleet that no longer serves or diverges from the offline
    engine.
    """
    import asyncio

    from repro.conformance import train_default_detector
    from repro.serve import build_load_trace, run_fleet_loadgen

    detector = train_default_detector(2012)
    trace = build_load_trace(seed=7, n_benign=300, n_vulnerabilities=6)
    payloads = trace.payloads()[:PROBE_PAYLOAD_COUNT]
    reports = {}
    for shards in (1, 2):
        reports[shards] = asyncio.run(run_fleet_loadgen(
            detector,
            payloads,
            shards=shards,
            queue_bound=max(64, len(payloads)),
            policy="block",
            workers=2,
            connections=4,
            window=16,
        ))
    return {
        "requests": len(payloads),
        "c1_rps": reports[1].throughput_rps,
        "c2_rps": reports[2].throughput_rps,
        "parity_ok": all(
            r.parity is not None and r.parity.ok
            and r.completed == r.requests and r.errors == 0
            for r in reports.values()
        ),
    }


def check_serving(baseline: dict | None, probe: dict) -> str:
    """Serving guard verdict; raises AssertionError on regression."""
    if not probe["parity_ok"]:
        raise AssertionError(
            "fleet probe lost parity with the offline engine"
        )
    efficiency = probe["c2_rps"] / probe["c1_rps"]
    if efficiency < MIN_PROBE_EFFICIENCY:
        raise AssertionError(
            f"2-shard fleet retains only {efficiency:.2f} of "
            f"single-shard capacity (floor {MIN_PROBE_EFFICIENCY}): "
            f"shard coordination overhead regressed"
        )
    if baseline is None:
        return (
            f"serving guard OK (no committed {SERVING_BASELINE_PATH} "
            f"baseline): probe efficiency {efficiency:.2f}, parity OK"
        )
    modeled = float(baseline.get("modeled_speedup_at_4", 0.0))
    if modeled < MIN_MODELED_SPEEDUP_AT_4:
        raise AssertionError(
            f"committed {SERVING_BASELINE_PATH} modeled_speedup_at_4 "
            f"{modeled:.2f}x < {MIN_MODELED_SPEEDUP_AT_4}x bar"
        )
    if not baseline.get("parity_ok", False):
        raise AssertionError(
            f"committed {SERVING_BASELINE_PATH} records parity_ok=false"
        )
    return (
        f"serving guard OK: baseline modeled speedup {modeled:.2f}x "
        f">= {MIN_MODELED_SPEEDUP_AT_4}x at 4 shards, "
        f"probe efficiency {efficiency:.2f}, parity OK"
    )


def _committed_shadow(payload: dict, *, generation: int):
    """Rebuild a ShadowReport from one committed bench round."""
    from repro.canary.shadow import ShadowReport

    return ShadowReport(
        mode="fleet",
        generation=generation,
        n_attacks=0,
        n_benign=0,
        incumbent_tpr=float(payload["incumbent_tpr"]),
        candidate_tpr=float(payload["candidate_tpr"]),
        incumbent_fpr=float(payload["incumbent_fpr"]),
        candidate_fpr=float(payload["candidate_fpr"]),
        verdict_flips=0,
        divergences=[],
    )


def check_canary(baseline: dict | None) -> str:
    """Canary guard verdict; raises AssertionError on any broken bar.

    Validates the committed artifact's acceptance bars, then replays
    the committed deltas through the current gate: the decisions must
    reproduce.  Churn is held at zero for the replay — the committed
    reject reason is the FPR budget, never churn, so the replay
    isolates the budget arithmetic.
    """
    if baseline is None:
        return (
            f"canary guard OK (no committed {CANARY_BASELINE_PATH} "
            f"baseline): nothing to validate yet"
        )
    from repro.canary.gate import (
        ChurnReport,
        GatePolicy,
        SignatureChurn,
        evaluate_gate,
    )

    promote = baseline["promote"]
    reject = baseline["reject"]
    policy = GatePolicy(**baseline["policy"])
    if promote["outcome"] != "promoted" or promote["reasons"]:
        raise AssertionError(
            f"committed {CANARY_BASELINE_PATH} promote round did not "
            f"promote cleanly: {promote['outcome']} "
            f"{promote['reasons']}"
        )
    if promote["divergences"] != 0:
        raise AssertionError(
            f"committed {CANARY_BASELINE_PATH} promote round saw "
            f"{promote['divergences']} live-path divergences"
        )
    if promote["generation_after"] != promote["generation_before"] + 1:
        raise AssertionError(
            f"committed {CANARY_BASELINE_PATH} promote round did not "
            f"advance exactly one generation"
        )
    if reject["outcome"] != "rejected" or (
        "fpr_budget" not in reject["reasons"]
    ):
        raise AssertionError(
            f"committed {CANARY_BASELINE_PATH} reject round is not an "
            f"FPR-budget rejection: {reject['outcome']} "
            f"{reject['reasons']}"
        )
    if not reject["incumbent_unchanged"]:
        raise AssertionError(
            f"committed {CANARY_BASELINE_PATH} records the rejection "
            f"mutating the incumbent"
        )
    if reject["generation_after"] != reject["generation_before"]:
        raise AssertionError(
            f"committed {CANARY_BASELINE_PATH} reject round moved the "
            f"live generation"
        )

    zero_churn = ChurnReport(
        entries=[SignatureChurn(0, "unchanged", 0.0, 0.0)],
        incumbent_size=1,
        candidate_size=1,
    )
    replayed_promote = evaluate_gate(
        _committed_shadow(
            promote, generation=promote["generation_after"]
        ),
        zero_churn,
        policy,
    )
    if not replayed_promote.promoted:
        raise AssertionError(
            f"gate semantics drifted: committed promote deltas now "
            f"reject with {replayed_promote.reasons}"
        )
    replayed_reject = evaluate_gate(
        _committed_shadow(
            reject, generation=reject["generation_before"]
        ),
        zero_churn,
        policy,
    )
    if replayed_reject.promoted or (
        "fpr_budget" not in replayed_reject.reasons
    ):
        raise AssertionError(
            f"gate semantics drifted: committed reject deltas now "
            f"decide {replayed_reject.reasons or ['promote']}"
        )
    return (
        f"canary guard OK: promote gen "
        f"{promote['generation_before']}->{promote['generation_after']} "
        f"with 0 divergences, reject held at fpr "
        f"{reject['candidate_fpr']:.4f} > budget "
        f"{policy.fpr_budget}, gate replay reproduces both decisions"
    )


def _bench_surfaces_module():
    """The surfaces bench module, loaded from its file.

    The guard reuses the bench's own ``measure_surfaces`` and floors so
    there is exactly one definition of the measured configuration — a
    drifting copy here would make "identical to the artifact" vacuous.
    """
    path = os.path.join("benchmarks", "test_ext_surfaces.py")
    spec = importlib.util.spec_from_file_location(
        "_bench_ext_surfaces", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def surfaces_measurement() -> dict:
    """Recompute the surface ledger in the bench's exact configuration."""
    from repro.conformance import train_default_detector

    bench = _bench_surfaces_module()
    return bench.measure_surfaces(train_default_detector(bench.SEED))


def check_surfaces(baseline: dict | None, fresh: dict) -> str:
    """Surfaces guard verdict; raises AssertionError on any drift."""
    bench = _bench_surfaces_module()
    for family, floor in bench.TPR_FLOORS.items():
        stats = fresh["families"][family]
        if stats["tpr"] < floor:
            raise AssertionError(
                f"surface family {family} TPR {stats['tpr']:.3f} "
                f"fell below its {floor:.2f} floor"
            )
        if stats["fpr"] > bench.FPR_CEILING:
            raise AssertionError(
                f"surface family {family} FPR {stats['fpr']:.4f} "
                f"exceeds the {bench.FPR_CEILING} ceiling"
            )
    for family in bench.LEGACY_BLIND_FAMILIES:
        if fresh["families"][family]["legacy_tpr"] != 0.0:
            raise AssertionError(
                f"legacy extraction now sees {family} traffic "
                f"(legacy_tpr "
                f"{fresh['families'][family]['legacy_tpr']:.3f}); "
                f"the blindness measurement is broken"
            )
    survival = fresh["evasion"]["survival_rate"]
    if baseline is None:
        return (
            f"surfaces guard OK (no committed {SURFACES_BASELINE_PATH} "
            f"baseline): floors clear, evasion survival {survival:.3f}"
        )
    for section in ("families", "scanner", "evasion"):
        if fresh[section] != baseline.get(section):
            raise AssertionError(
                f"surface ledger drifted in '{section}': fresh "
                f"{json.dumps(fresh[section], sort_keys=True)[:300]} != "
                f"committed "
                f"{json.dumps(baseline.get(section), sort_keys=True)[:300]}"
                f"; re-run benchmarks/test_ext_surfaces.py and commit "
                f"{SURFACES_BASELINE_PATH}"
            )
    return (
        f"surfaces guard OK: ledger identical to committed baseline, "
        f"evasion survival {survival:.3f} "
        f"({fresh['evasion']['evaded']}/{fresh['evasion']['attacked']} "
        f"bases evaded), legacy-blind families hold at zero"
    )


def main() -> int:
    """Run both guards; returns a process exit code."""
    try:
        baseline = committed_baseline()
        fresh = fresh_measurement()
        print(check(baseline, fresh))
        serving = committed_baseline(SERVING_BASELINE_PATH)
        probe = serving_probe()
        print(check_serving(serving, probe))
        print(check_canary(committed_baseline(CANARY_BASELINE_PATH)))
        print(check_surfaces(
            committed_baseline(SURFACES_BASELINE_PATH),
            surfaces_measurement(),
        ))
    except Exception as error:  # noqa: BLE001 - CI wants any failure loud
        print(f"bench guard FAILED: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
