"""CI guard: the fused matching engine must not regress against baseline.

The committed ``benchmarks/results/BENCH_matching.json`` is the baseline
ledger entry for the fused single-pass matcher.  This guard re-measures
the same configuration fresh (canonical small detector, seeded fuzz
corpus — no bench-scale training required) and fails when:

1. the fresh run's verdicts are not bit-identical to the legacy path, or
2. the fresh speedup falls below 85% of the committed baseline speedup
   (a >15% regression of the fast path relative to the reference loop —
   a ratio of ratios, so it is insensitive to the runner's absolute
   speed).

When the baseline artifact does not exist in HEAD (first run on a fresh
branch), the guard records what it measured and passes: there is nothing
to regress against yet.

Usage: ``PYTHONPATH=src python scripts/ci_bench_guard.py``
"""

from __future__ import annotations

import json
import subprocess
import sys

BASELINE_PATH = "benchmarks/results/BENCH_matching.json"
ALLOWED_FRACTION = 0.85


def committed_baseline() -> dict | None:
    """The baseline artifact as committed in HEAD, or None if absent."""
    result = subprocess.run(
        ["git", "show", f"HEAD:{BASELINE_PATH}"],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        return None
    try:
        return json.loads(result.stdout)
    except json.JSONDecodeError as error:
        raise AssertionError(
            f"committed {BASELINE_PATH} is not valid JSON: {error}"
        ) from error


def fresh_measurement() -> dict:
    """Benchmark the canonical small detector on the seeded fuzz corpus."""
    from repro.conformance import generate_corpus, train_default_detector
    from repro.match import bench_fused_matching

    detector = train_default_detector(2012)
    payloads = generate_corpus(seed=2012, budget="small")
    result = bench_fused_matching(
        detector.signature_set, payloads, repeats=5
    )
    return json.loads(result.to_json())


def check(baseline: dict | None, fresh: dict) -> str:
    """The guard's verdict line; raises AssertionError on regression."""
    if not fresh["identical"]:
        raise AssertionError(
            "fused verdicts diverged from the legacy path"
        )
    if fresh["speedup"] < 1.0:
        raise AssertionError(
            f"fused path is slower than legacy "
            f"(speedup {fresh['speedup']:.2f}x)"
        )
    if baseline is None:
        return (
            f"bench guard OK (no committed {BASELINE_PATH} baseline): "
            f"fresh speedup {fresh['speedup']:.2f}x, verdicts identical"
        )
    floor = ALLOWED_FRACTION * float(baseline["speedup"])
    if fresh["speedup"] < floor:
        raise AssertionError(
            f"fused speedup regressed >15%: fresh {fresh['speedup']:.2f}x "
            f"< floor {floor:.2f}x "
            f"(baseline {baseline['speedup']:.2f}x)"
        )
    return (
        f"bench guard OK: fresh speedup {fresh['speedup']:.2f}x "
        f">= floor {floor:.2f}x "
        f"(baseline {baseline['speedup']:.2f}x), verdicts identical"
    )


def main() -> int:
    """Run the guard; returns a process exit code."""
    try:
        baseline = committed_baseline()
        fresh = fresh_measurement()
        print(check(baseline, fresh))
    except Exception as error:  # noqa: BLE001 - CI wants any failure loud
        print(f"bench guard FAILED: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
