"""CI guard: every committed bench artifact must validate and hold its floor.

All benchmarks emit a machine-readable ``BENCH_<slug>.json`` next to their
text table under ``benchmarks/results/`` (the shared :mod:`repro.bench`
schema).  This guard holds the tree to that ledger in three layers:

**Layer 1 — schema sweep.**  Every ``BENCH_*.json`` on disk must validate
against the ``BenchResult`` schema and be byte-identical to its canonical
re-serialization (one writer, one byte layout — diffs stay reviewable).

**Layer 2 — per-bench floors.**  Every artifact slug must appear in the
``FLOORS`` table below and clear its floors — constant (metric, op, bound)
triples mirroring each bench's own acceptance assertions, so a regressed
artifact cannot be committed even when the bench run that produced it was
skipped.  A slug with no floors entry fails (unguarded artifact); a floors
entry with no artifact fails (missing trajectory point).

**Layer 3 — deep guards.**  Four benches get live re-measurement on top of
the committed numbers:

``BENCH_matching.json`` — the fused single-pass matcher is re-measured
fresh (canonical small detector, seeded fuzz corpus); verdicts must stay
bit-identical to the legacy path and the fresh speedup must hold 85% of
the committed baseline speedup (a ratio of ratios — insensitive to the
runner's absolute speed).

``BENCH_serving.json`` — a live 2-shard fleet probe must serve with
bit-exact parity and retain at least half of single-shard capacity.

``BENCH_canary.json`` — the committed promote/reject rounds replay
through the *current* gate implementation; both decisions must reproduce,
so gate-semantics drift fails CI before the live canary smoke step.

``BENCH_surfaces.json`` — the surface ledger is deterministic from
committed seeds, so the guard recomputes the exact bench configuration
and requires the fresh ledger to be *identical* to the committed one.

When a baseline artifact does not exist in HEAD (first run on a fresh
branch), the deep guards record what they measured and pass: there is
nothing to regress against yet.

Usage: ``PYTHONPATH=src python scripts/ci_bench_guard.py``
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys

BASELINE_PATH = "benchmarks/results/BENCH_matching.json"
SERVING_BASELINE_PATH = "benchmarks/results/BENCH_serving.json"
CANARY_BASELINE_PATH = "benchmarks/results/BENCH_canary.json"
SURFACES_BASELINE_PATH = "benchmarks/results/BENCH_surfaces.json"
ALLOWED_FRACTION = 0.85
MIN_MODELED_SPEEDUP_AT_4 = 2.5
MIN_PROBE_EFFICIENCY = 0.5
PROBE_PAYLOAD_COUNT = 400

# Per-bench regression floors: slug -> ((metric, op, bound), ...).
# Each triple mirrors an acceptance assertion in the bench module that
# produced the artifact; ops are ">=", "<=", "==".  Derived-margin
# metrics (e.g. ``tpr_gain_40`` = TPR(+40%) − TPR(base)) turn the
# benches' cross-metric assertions into constant comparisons.
FLOORS: dict[str, tuple[tuple[str, str, object], ...]] = {
    "matching": (
        ("identical", "==", True),
        ("speedup", ">=", 3.0),
    ),
    "serving": (
        ("parity_ok", "==", True),
        ("modeled_speedup_at_4", ">=", MIN_MODELED_SPEEDUP_AT_4),
    ),
    "canary": (
        ("promoted", "==", True),
        ("rejected_fpr_budget", "==", True),
        ("incumbent_unchanged", "==", True),
    ),
    "surfaces": (
        ("scanner_detected_legacy", "==", 0),
        ("scanner_rate_full", ">=", 0.6),
        ("evasion_survival_rate", "<=", 1.0),
    ),
    "exp2_incremental": (
        ("tpr_gain_40", ">=", 0.0),
        ("tpr_gain_40", "<=", 0.25),
        ("fpr_cost_40", "<=", 0.002),
    ),
    "exp3_perdisci": (
        ("tpr", "<=", 0.35),
        ("fpr", "<=", 0.001),
        ("train_gap", ">=", 0.1),
        ("psigene_margin", ">=", 0.3),
    ),
    "exp4_performance": (
        ("slowdown_vs_modsec", ">=", 1.5),
        ("slowdown_vs_modsec", "<=", 100.0),
        ("slowdown_vs_bro", ">=", 1.5),
        ("psigene_max_us", "<=", 20_000.0),
    ),
    "exp4_parallel": (
        ("verdict_parity", "==", True),
        ("speedup_at_max", ">=", 1.2),
    ),
    "exp4_batch_extraction": (
        ("identical", "==", True),
        ("modeled_speedup_at_4", ">=", 1.5),
    ),
    "exp4_batch_matching": (
        ("identical", "==", True),
        ("modeled_speedup_at_4", ">=", 1.5),
    ),
    "ablation_binary_features": (
        ("fpr_penalty", ">=", 0.0),
        ("tpr_edge", ">=", -0.08),
    ),
    "ablation_blackhole_rule": (
        ("tpr_gain", ">=", -1e-6),
        ("fpr_cost", ">=", 0.0),
    ),
    "ablation_incremental_strategy": (
        ("iteration_savings", ">=", 1),
        ("warm_fpr", "<=", 0.005),
    ),
    "ablation_regularization": (
        ("weight_shrink", ">=", 0.0),
        ("min_tpr", ">=", 0.5),
    ),
    "ablation_selection_rule": (
        ("paper_biclusters", ">=", 5),
        ("paper_coverage", ">=", 0.6),
    ),
    "table1_vulndb": (
        ("printed_rows", "==", 4),
        ("coverage_ratio", "==", 1.0),
    ),
    "table2_feature_sources": (
        ("sources", "==", 3),
        ("initial_features", "==", 477),
        ("final_features", ">=", 80),
        ("final_features", "<=", 250),
    ),
    "table3_signature_features": (
        ("theta_consistent", "==", True),
        ("n_features", ">=", 1),
        ("n_features", "<=", 40),
    ),
    "table4_rulesets": (
        ("bro_rules", "==", 6),
        ("snort_rules", "==", 79),
        ("et_rules", "==", 4231),
        ("modsec_rules", "==", 34),
    ),
    "table5_accuracy": (
        ("psigene_tpr_sqlmap", ">=", 0.75),
        ("modsec_tpr_sqlmap", ">=", 0.9),
        ("bro_fpr", "==", 0.0),
        ("snort_fpr", "<=", 0.01),
    ),
    "table6_cluster_details": (
        ("n_signatures", ">=", 5),
        ("n_signatures", "<=", 9),
        ("size_spread", ">=", 1.5),
    ),
    "figure2_heatmap": (
        ("biclusters", ">=", 6),
        ("biclusters", "<=", 11),
        ("black_holes", ">=", 1),
        ("black_holes", "<=", 3),
        ("cophenetic", ">=", 0.6),
    ),
    "figure3_roc": (
        ("best_partial_auc", ">=", 0.02),
        ("auc_spread", ">=", 0.0),
    ),
    "figure4_cumulative_tpr": (
        ("top_marginal", ">=", 0.1),
        ("set_tpr", ">=", 0.7),
    ),
    "ext_calibration": (
        ("ece", "<=", 0.12),
        ("brier", "<=", 0.1),
        ("low_bin_rate", "<=", 0.2),
        ("high_bin_rate", ">=", 0.8),
    ),
    "ext_drift": (
        ("min_tpr_before", ">=", 0.5),
        ("final_tpr_after", ">=", 0.7),
    ),
    "ext_evasion_matrix": (
        ("psigene_min_identity", ">=", 0.8),
        ("psigene_min_evasion_recall", ">=", 0.6),
        ("modsec_min_evasion_recall", ">=", 0.6),
    ),
    "serve_loadgen": (
        ("parity_ok", "==", True),
        ("tight_queue_shed_rate", "<=", 1.0),
    ),
    "obs_overhead": (
        ("overhead_fraction", "<=", 0.05),
        ("per_request_us", "<=", 100_000.0),
    ),
    "micro_substrates": (
        ("normalize_us", "<=", 100_000.0),
        ("extract_us", "<=", 100_000.0),
    ),
}


def committed_baseline(path: str = BASELINE_PATH) -> dict | None:
    """The baseline artifact as committed in HEAD, or None if absent."""
    result = subprocess.run(
        ["git", "show", f"HEAD:{path}"],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        return None
    try:
        return json.loads(result.stdout)
    except json.JSONDecodeError as error:
        raise AssertionError(
            f"committed {path} is not valid JSON: {error}"
        ) from error


def sweep_artifacts() -> str:
    """Layer 1 + 2: validate every on-disk artifact and apply its floors.

    Returns the verdict line; raises AssertionError on the first broken
    artifact, missing floors entry, or missing artifact.
    """
    from repro.bench import dump_bench_json, list_artifacts, load_artifact

    paths = list_artifacts()
    if not paths:
        raise AssertionError(
            "no BENCH_*.json artifacts under benchmarks/results/; "
            "run scripts/reproduce_all.py"
        )
    seen: set[str] = set()
    for path in paths:
        payload = load_artifact(path)  # raises BenchSchemaError on bad shape
        with open(path, encoding="utf-8") as handle:
            raw = handle.read()
        if dump_bench_json(payload) != raw:
            raise AssertionError(
                f"{path} is not in canonical serialization; rewrite it "
                f"through repro.bench.write_artifact"
            )
        slug = payload["bench"]
        seen.add(slug)
        floors = FLOORS.get(slug)
        if floors is None:
            raise AssertionError(
                f"{path}: bench '{slug}' has no FLOORS entry in "
                f"scripts/ci_bench_guard.py — every artifact must be "
                f"guarded"
            )
        for metric, op, bound in floors:
            if metric not in payload["metrics"]:
                raise AssertionError(
                    f"{path}: floors expect metric '{metric}' which the "
                    f"artifact does not record"
                )
            value = payload["metrics"][metric]
            ok = (
                value >= bound if op == ">=" else
                value <= bound if op == "<=" else
                value == bound
            )
            if not ok:
                raise AssertionError(
                    f"{path}: {metric}={value!r} violates floor "
                    f"'{metric} {op} {bound!r}'"
                )
    missing = sorted(set(FLOORS) - seen)
    if missing:
        raise AssertionError(
            f"floors defined but artifact missing for: {', '.join(missing)}"
            f" — run scripts/reproduce_all.py and commit the results"
        )
    return (
        f"artifact sweep OK: {len(paths)} artifacts schema-valid, "
        f"canonical, and clear of {sum(len(f) for f in FLOORS.values())} "
        f"floors across {len(FLOORS)} benches"
    )


def fresh_measurement() -> dict:
    """Benchmark the canonical small detector on the seeded fuzz corpus."""
    from repro.conformance import generate_corpus, train_default_detector
    from repro.match import bench_fused_matching

    detector = train_default_detector(2012)
    payloads = generate_corpus(seed=2012, budget="small")
    result = bench_fused_matching(
        detector.signature_set, payloads, repeats=5
    )
    return json.loads(result.to_json())


def check(baseline: dict | None, fresh: dict) -> str:
    """The guard's verdict line; raises AssertionError on regression."""
    speedup = fresh["metrics"]["speedup"]
    if not fresh["metrics"]["identical"]:
        raise AssertionError(
            "fused verdicts diverged from the legacy path"
        )
    if speedup < 1.0:
        raise AssertionError(
            f"fused path is slower than legacy (speedup {speedup:.2f}x)"
        )
    if baseline is None:
        return (
            f"bench guard OK (no committed {BASELINE_PATH} baseline): "
            f"fresh speedup {speedup:.2f}x, verdicts identical"
        )
    baseline_speedup = float(baseline["metrics"]["speedup"])
    floor = ALLOWED_FRACTION * baseline_speedup
    if speedup < floor:
        raise AssertionError(
            f"fused speedup regressed >15%: fresh {speedup:.2f}x "
            f"< floor {floor:.2f}x (baseline {baseline_speedup:.2f}x)"
        )
    return (
        f"bench guard OK: fresh speedup {speedup:.2f}x "
        f">= floor {floor:.2f}x (baseline {baseline_speedup:.2f}x), "
        f"verdicts identical"
    )


def serving_probe() -> dict:
    """A small live 2-shard fleet run: parity and retained capacity.

    Closed-loop over a slice of the deterministic replay trace, one
    shard then two, on the same host.  Returns measured throughputs and
    the parity verdict — cheap enough for every CI run, live enough to
    catch a fleet that no longer serves or diverges from the offline
    engine.
    """
    import asyncio

    from repro.conformance import train_default_detector
    from repro.serve import build_load_trace, run_fleet_loadgen

    detector = train_default_detector(2012)
    trace = build_load_trace(seed=7, n_benign=300, n_vulnerabilities=6)
    payloads = trace.payloads()[:PROBE_PAYLOAD_COUNT]
    reports = {}
    for shards in (1, 2):
        reports[shards] = asyncio.run(run_fleet_loadgen(
            detector,
            payloads,
            shards=shards,
            queue_bound=max(64, len(payloads)),
            policy="block",
            workers=2,
            connections=4,
            window=16,
        ))
    return {
        "requests": len(payloads),
        "c1_rps": reports[1].throughput_rps,
        "c2_rps": reports[2].throughput_rps,
        "parity_ok": all(
            r.parity is not None and r.parity.ok
            and r.completed == r.requests and r.errors == 0
            for r in reports.values()
        ),
    }


def check_serving(baseline: dict | None, probe: dict) -> str:
    """Serving guard verdict; raises AssertionError on regression."""
    if not probe["parity_ok"]:
        raise AssertionError(
            "fleet probe lost parity with the offline engine"
        )
    efficiency = probe["c2_rps"] / probe["c1_rps"]
    if efficiency < MIN_PROBE_EFFICIENCY:
        raise AssertionError(
            f"2-shard fleet retains only {efficiency:.2f} of "
            f"single-shard capacity (floor {MIN_PROBE_EFFICIENCY}): "
            f"shard coordination overhead regressed"
        )
    if baseline is None:
        return (
            f"serving guard OK (no committed {SERVING_BASELINE_PATH} "
            f"baseline): probe efficiency {efficiency:.2f}, parity OK"
        )
    metrics = baseline["metrics"]
    modeled = float(metrics.get("modeled_speedup_at_4", 0.0))
    if modeled < MIN_MODELED_SPEEDUP_AT_4:
        raise AssertionError(
            f"committed {SERVING_BASELINE_PATH} modeled_speedup_at_4 "
            f"{modeled:.2f}x < {MIN_MODELED_SPEEDUP_AT_4}x bar"
        )
    if not metrics.get("parity_ok", False):
        raise AssertionError(
            f"committed {SERVING_BASELINE_PATH} records parity_ok=false"
        )
    return (
        f"serving guard OK: baseline modeled speedup {modeled:.2f}x "
        f">= {MIN_MODELED_SPEEDUP_AT_4}x at 4 shards, "
        f"probe efficiency {efficiency:.2f}, parity OK"
    )


def _committed_shadow(payload: dict, *, generation: int):
    """Rebuild a ShadowReport from one committed bench round."""
    from repro.canary.shadow import ShadowReport

    return ShadowReport(
        mode="fleet",
        generation=generation,
        n_attacks=0,
        n_benign=0,
        incumbent_tpr=float(payload["incumbent_tpr"]),
        candidate_tpr=float(payload["candidate_tpr"]),
        incumbent_fpr=float(payload["incumbent_fpr"]),
        candidate_fpr=float(payload["candidate_fpr"]),
        verdict_flips=0,
        divergences=[],
    )


def check_canary(baseline: dict | None) -> str:
    """Canary guard verdict; raises AssertionError on any broken bar.

    Validates the committed artifact's acceptance bars, then replays
    the committed deltas through the current gate: the decisions must
    reproduce.  Churn is held at zero for the replay — the committed
    reject reason is the FPR budget, never churn, so the replay
    isolates the budget arithmetic.
    """
    if baseline is None:
        return (
            f"canary guard OK (no committed {CANARY_BASELINE_PATH} "
            f"baseline): nothing to validate yet"
        )
    from repro.canary.gate import (
        ChurnReport,
        GatePolicy,
        SignatureChurn,
        evaluate_gate,
    )

    ledger = baseline["data"]
    promote = ledger["promote"]
    reject = ledger["reject"]
    policy = GatePolicy(**ledger["policy"])
    if promote["outcome"] != "promoted" or promote["reasons"]:
        raise AssertionError(
            f"committed {CANARY_BASELINE_PATH} promote round did not "
            f"promote cleanly: {promote['outcome']} "
            f"{promote['reasons']}"
        )
    if promote["divergences"] != 0:
        raise AssertionError(
            f"committed {CANARY_BASELINE_PATH} promote round saw "
            f"{promote['divergences']} live-path divergences"
        )
    if promote["generation_after"] != promote["generation_before"] + 1:
        raise AssertionError(
            f"committed {CANARY_BASELINE_PATH} promote round did not "
            f"advance exactly one generation"
        )
    if reject["outcome"] != "rejected" or (
        "fpr_budget" not in reject["reasons"]
    ):
        raise AssertionError(
            f"committed {CANARY_BASELINE_PATH} reject round is not an "
            f"FPR-budget rejection: {reject['outcome']} "
            f"{reject['reasons']}"
        )
    if not reject["incumbent_unchanged"]:
        raise AssertionError(
            f"committed {CANARY_BASELINE_PATH} records the rejection "
            f"mutating the incumbent"
        )
    if reject["generation_after"] != reject["generation_before"]:
        raise AssertionError(
            f"committed {CANARY_BASELINE_PATH} reject round moved the "
            f"live generation"
        )

    zero_churn = ChurnReport(
        entries=[SignatureChurn(0, "unchanged", 0.0, 0.0)],
        incumbent_size=1,
        candidate_size=1,
    )
    replayed_promote = evaluate_gate(
        _committed_shadow(
            promote, generation=promote["generation_after"]
        ),
        zero_churn,
        policy,
    )
    if not replayed_promote.promoted:
        raise AssertionError(
            f"gate semantics drifted: committed promote deltas now "
            f"reject with {replayed_promote.reasons}"
        )
    replayed_reject = evaluate_gate(
        _committed_shadow(
            reject, generation=reject["generation_before"]
        ),
        zero_churn,
        policy,
    )
    if replayed_reject.promoted or (
        "fpr_budget" not in replayed_reject.reasons
    ):
        raise AssertionError(
            f"gate semantics drifted: committed reject deltas now "
            f"decide {replayed_reject.reasons or ['promote']}"
        )
    return (
        f"canary guard OK: promote gen "
        f"{promote['generation_before']}->{promote['generation_after']} "
        f"with 0 divergences, reject held at fpr "
        f"{reject['candidate_fpr']:.4f} > budget "
        f"{policy.fpr_budget}, gate replay reproduces both decisions"
    )


def _bench_surfaces_module():
    """The surfaces bench module, loaded from its file.

    The guard reuses the bench's own ``measure_surfaces`` and floors so
    there is exactly one definition of the measured configuration — a
    drifting copy here would make "identical to the artifact" vacuous.
    """
    path = os.path.join("benchmarks", "test_ext_surfaces.py")
    spec = importlib.util.spec_from_file_location(
        "_bench_ext_surfaces", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def surfaces_measurement() -> dict:
    """Recompute the surface ledger in the bench's exact configuration."""
    from repro.conformance import train_default_detector

    bench = _bench_surfaces_module()
    return bench.measure_surfaces(train_default_detector(bench.SEED))


def check_surfaces(baseline: dict | None, fresh: dict) -> str:
    """Surfaces guard verdict; raises AssertionError on any drift."""
    bench = _bench_surfaces_module()
    for family, floor in bench.TPR_FLOORS.items():
        stats = fresh["families"][family]
        if stats["tpr"] < floor:
            raise AssertionError(
                f"surface family {family} TPR {stats['tpr']:.3f} "
                f"fell below its {floor:.2f} floor"
            )
        if stats["fpr"] > bench.FPR_CEILING:
            raise AssertionError(
                f"surface family {family} FPR {stats['fpr']:.4f} "
                f"exceeds the {bench.FPR_CEILING} ceiling"
            )
    for family in bench.LEGACY_BLIND_FAMILIES:
        if fresh["families"][family]["legacy_tpr"] != 0.0:
            raise AssertionError(
                f"legacy extraction now sees {family} traffic "
                f"(legacy_tpr "
                f"{fresh['families'][family]['legacy_tpr']:.3f}); "
                f"the blindness measurement is broken"
            )
    survival = fresh["evasion"]["survival_rate"]
    if baseline is None:
        return (
            f"surfaces guard OK (no committed {SURFACES_BASELINE_PATH} "
            f"baseline): floors clear, evasion survival {survival:.3f}"
        )
    ledger = baseline["data"]
    for section in ("families", "scanner", "evasion"):
        if fresh[section] != ledger.get(section):
            raise AssertionError(
                f"surface ledger drifted in '{section}': fresh "
                f"{json.dumps(fresh[section], sort_keys=True)[:300]} != "
                f"committed "
                f"{json.dumps(ledger.get(section), sort_keys=True)[:300]}"
                f"; re-run benchmarks/test_ext_surfaces.py and commit "
                f"{SURFACES_BASELINE_PATH}"
            )
    return (
        f"surfaces guard OK: ledger identical to committed baseline, "
        f"evasion survival {survival:.3f} "
        f"({fresh['evasion']['evaded']}/{fresh['evasion']['attacked']} "
        f"bases evaded), legacy-blind families hold at zero"
    )


def main() -> int:
    """Run all guard layers; returns a process exit code."""
    try:
        print(sweep_artifacts())
        baseline = committed_baseline()
        fresh = fresh_measurement()
        print(check(baseline, fresh))
        serving = committed_baseline(SERVING_BASELINE_PATH)
        probe = serving_probe()
        print(check_serving(serving, probe))
        print(check_canary(committed_baseline(CANARY_BASELINE_PATH)))
        print(check_surfaces(
            committed_baseline(SURFACES_BASELINE_PATH),
            surfaces_measurement(),
        ))
    except Exception as error:  # noqa: BLE001 - CI wants any failure loud
        print(f"bench guard FAILED: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
