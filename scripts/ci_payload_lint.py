"""CI lint: no internal caller of the deprecated ``payload()`` shim.

``HttpRequest.payload()`` survives only as a deprecation shim over
``surfaces()`` (DESIGN.md §17).  Internal code migrating back onto it
would silently re-entrench the legacy query+form extraction — and its
blind spots — so this lint walks every Python file in ``src``,
``tests``, ``benchmarks`` and ``scripts`` and fails on any
``<expr>.payload()`` call outside the two files allowed to touch it:
the shim's own module and the test pinning its byte-identical output.

The check is AST-based, not textual: docstrings and comments may (and
do) mention ``payload()`` freely; only actual call sites count.

Usage: ``python scripts/ci_payload_lint.py``
"""

from __future__ import annotations

import ast
import os
import sys

LINT_ROOTS = ("src", "tests", "benchmarks", "scripts")
ALLOWED_FILES = frozenset({
    os.path.join("src", "repro", "http", "request.py"),
    os.path.join("tests", "http", "test_request.py"),
})
DEPRECATED_ATTR = "payload"


def payload_calls(path: str) -> list[int]:
    """Line numbers of ``<expr>.payload()`` calls in one Python file."""
    with open(path, "rb") as handle:
        tree = ast.parse(handle.read(), filename=path)
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == DEPRECATED_ATTR
    ]


def lint(repo_root: str = ".") -> list[str]:
    """All violations as ``path:line`` strings, sorted."""
    violations = []
    checked = 0
    for root in LINT_ROOTS:
        for dirpath, dirnames, filenames in os.walk(
            os.path.join(repo_root, root)
        ):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                relative = os.path.relpath(path, repo_root)
                checked += 1
                if relative in ALLOWED_FILES:
                    continue
                violations.extend(
                    f"{relative}:{line}" for line in payload_calls(path)
                )
    if not checked:
        raise AssertionError("payload lint walked zero Python files")
    return sorted(violations)


def main() -> int:
    """Run the lint; returns a process exit code."""
    violations = lint()
    if violations:
        print(
            "payload lint FAILED: deprecated HttpRequest.payload() "
            "called outside the shim and its pinning test — use "
            "surfaces()/flat_payload() instead:",
            file=sys.stderr,
        )
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("payload lint OK: no internal callers of the deprecated shim")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
