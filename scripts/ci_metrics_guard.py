"""CI guard: boot the gateway, scrape ``/metrics``, fail on bad lines.

Runs the exact contract a Prometheus scraper depends on, end to end:

1. start a :class:`~repro.serve.gateway.DetectionGateway` on an
   ephemeral port,
2. push a few payloads through the line protocol so the counters move,
3. ``GET /metrics`` over a raw socket,
4. strict-parse the exposition (:func:`repro.obs.prometheus.parse_exposition`
   raises on any malformed line), and
5. cross-check the parsed counters against the ``/stats`` JSON.

Exits non-zero on any failure, with the offending detail on stderr.

Usage: ``PYTHONPATH=src python scripts/ci_metrics_guard.py``
"""

from __future__ import annotations

import asyncio
import json
import sys


async def _http(host: str, port: int, path: str) -> tuple[int, str]:
    """Minimal GET; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: ci\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header, _, body = raw.partition(b"\r\n\r\n")
    return int(header.split()[1]), body.decode()


async def _scenario() -> None:
    from repro.ids import DeterministicRuleSet, Rule
    from repro.obs.prometheus import parse_exposition, sample_value
    from repro.serve import DetectionGateway, SignatureStore

    detector = DeterministicRuleSet(
        "ci-guard", [Rule(1, "union", r"union\s+select")]
    )
    gateway = DetectionGateway(SignatureStore(detector))
    host, port = await gateway.start()
    try:
        reader, writer = await asyncio.open_connection(host, port)
        payloads = ["id=1' union select 1", "q=hello", "page=2"]
        for payload in payloads:
            writer.write(payload.encode() + b"\n")
            await writer.drain()
            await reader.readline()
        writer.close()
        await writer.wait_closed()

        status, body = await _http(host, port, "/metrics")
        if status != 200:
            raise AssertionError(f"/metrics returned HTTP {status}")
        families = parse_exposition(body)  # raises on malformed lines
        if not families:
            raise AssertionError("/metrics exposition is empty")

        stats_status, stats_body = await _http(host, port, "/stats")
        if stats_status != 200:
            raise AssertionError(f"/stats returned HTTP {stats_status}")
        counters = json.loads(stats_body)["counters"]
        for short_name in ("inspected", "alerted"):
            exposed = sample_value(families, f"repro_{short_name}_total")
            if exposed != counters[short_name]:
                raise AssertionError(
                    f"{short_name}: /metrics says {exposed}, "
                    f"/stats says {counters[short_name]}"
                )
        if counters["inspected"] != len(payloads):
            raise AssertionError(
                f"expected {len(payloads)} inspections, "
                f"counted {counters['inspected']}"
            )
        print(
            f"metrics guard OK: {len(families)} families, "
            f"{sum(len(s) for s in families.values())} samples, "
            f"counters agree with /stats"
        )
    finally:
        await gateway.stop()


def main() -> int:
    """Run the guard; returns a process exit code."""
    try:
        asyncio.run(_scenario())
    except Exception as error:  # noqa: BLE001 - CI wants any failure loud
        print(f"metrics guard FAILED: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
