"""Quickstart: train pSigene end-to-end and score some requests.

Runs the full four-phase pipeline (crawl → features → biclusters →
signatures) at a small scale, prints the generated signature set, and
classifies a handful of HTTP request payloads.

    python examples/quickstart.py
"""

from repro.core import PipelineConfig, PSigenePipeline


def main() -> None:
    config = PipelineConfig(
        seed=2012,
        n_attack_samples=1500,   # paper scale: 30,000
        n_benign_train=4000,
        max_cluster_rows=1000,
    )
    print("Training pSigene (crawl -> features -> biclusters -> signatures)")
    pipeline = PSigenePipeline(config)
    result = pipeline.run()

    print(f"\ncrawled attack samples : {len(result.samples)}")
    print(f"feature catalog        : {result.pruning.initial_features} "
          f"-> {result.pruning.final_features} after pruning")
    print(f"biclusters selected    : {len(result.biclusters)} "
          f"({sum(b.is_black_hole for b in result.biclusters)} black holes)")
    print(f"cophenetic correlation : "
          f"{result.biclustering.cophenetic_correlation:.3f} (paper: 0.92)")
    print(f"generalized signatures : {len(result.signature_set)}\n")

    for signature in result.signature_set:
        print(f"  Sig_b{signature.bicluster_index}: "
              f"{signature.n_features} features "
              f"(bicluster had {signature.bicluster_feature_count}), "
              f"trained on {signature.training_samples} samples")

    probes = [
        ("attack: UNION extraction",
         "id=1' union select 1,2,concat(database(),char(58),user())-- -"),
        ("attack: time-based blind", "cat=5' and sleep(9)-- -"),
        ("attack: tautology", "user=admin' or '1'='1"),
        ("attack: evasion-encoded",
         "id=1%2527/**/UNION/**/SELECT/**/1,2--%20-"),
        ("benign: course signup", "course=cs101&term=fall2012&section=2"),
        ("benign: search with SQL words",
         "q=select+topics+in+machine+learning&page=1"),
        ("benign: name with quote", "name=alice+o%27connor&id=12345"),
    ]
    print("\nScoring payloads (max per-signature probability):")
    for label, payload in probes:
        score, fired = result.signature_set.evaluate(payload)
        verdict = "ALERT " if fired else "pass  "
        print(f"  [{verdict}] p={score:0.4f}  {label}")


if __name__ == "__main__":
    main()
