"""Generate the full HTML evaluation report.

Trains pSigene, builds the test sets, and writes a single self-contained
HTML file with every table and figure of the paper's evaluation — the
Table IV/V/VI tables, the Figure 2 heatmap (raster + dendrogram SVG), the
Figure 3 ROC curves, and the Figure 4 cumulative-TPR chart.

    python examples/evaluation_report.py [output.html]
"""

import sys

from repro.eval import EvaluationContext, write_report


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "psigene_report.html"
    print("Building evaluation context (train + test sets)...")
    context = EvaluationContext.build(
        seed=2012,
        n_attack_samples=2000,
        n_benign_train=6000,
        n_benign_test=12_000,
        max_cluster_rows=1200,
        n_vulnerabilities=50,
    )
    print("Rendering report (tables + SVG figures)...")
    write_report(context, output)
    signature_count = len(context.result.signature_set)
    print(f"wrote {output} ({signature_count} signatures evaluated); "
          "open it in any browser — no external assets needed")


if __name__ == "__main__":
    main()
