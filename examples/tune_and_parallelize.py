"""Operating the signature set: threshold tuning and cluster-mode matching.

Two operational features the paper sketches:

* Section III-D: from the per-signature ROC curves "a security
  administrator can visually, and approximately, decide which signatures
  to enable or disable" — here automated as an FPR-budgeted threshold
  search (`repro.eval.tune_thresholds`).
* Experiment 4 / future work: "the signature matching is completely
  parallelizable — each parallel thread can match one signature"
  (Bro's cluster mode) — here implemented as `repro.ids.ClusterModeEngine`.

    python examples/tune_and_parallelize.py
"""

from repro.core import PipelineConfig, PSigenePipeline
from repro.corpus import BenignTrafficGenerator, VulnerableWebApp
from repro.eval import tune_thresholds
from repro.http import Trace
from repro.ids import ClusterModeEngine, PSigeneDetector, SignatureEngine
from repro.scanners import ArachniSimulator


def main() -> None:
    print("Training pSigene...")
    pipeline = PSigenePipeline(PipelineConfig(
        seed=2012, n_attack_samples=1500, n_benign_train=4000,
        max_cluster_rows=1000,
    ))
    result = pipeline.run()

    print("Generating tuning traffic (Arachni scan + benign day)...")
    app = VulnerableWebApp(seed=7, n_vulnerabilities=20)
    attacks = ArachniSimulator(app, seed=70).scan()
    benign = BenignTrafficGenerator(seed=71).trace(8000)

    print("\n-- Threshold tuning (per-signature FPR budget 0.02%) --")
    tuned, tunings = tune_thresholds(
        result.signature_set, attacks, benign,
        max_fpr_per_signature=0.0002,
    )
    for tuning in tunings:
        state = "enabled " if tuning.enabled else "DISABLED"
        print(f"  Sig_b{tuning.bicluster_index}: threshold="
              f"{tuning.threshold:0.3f} tpr={tuning.tpr:0.3f} "
              f"fpr={tuning.fpr:0.5f}  [{state}]")

    def measure(signature_set, name):
        engine = SignatureEngine(PSigeneDetector(signature_set))
        tpr = engine.run(attacks).alert_flags.mean()
        fpr = engine.run(benign).alert_flags.mean()
        print(f"  {name:12s} TPR={tpr:0.4f} FPR={fpr:0.5f} "
              f"({len(signature_set)} signatures)")

    print("\n-- Before vs after tuning --")
    measure(result.signature_set, "default")
    measure(tuned, "tuned")

    print("\n-- Cluster-mode matching (Bro cluster analogue) --")
    sample = Trace(name="probe", requests=attacks.requests[:300])
    for workers in (1, 2, 4, len(tuned) or 1):
        run = ClusterModeEngine(tuned, workers=workers).run(sample)
        print(f"  workers={run.workers}: serial={run.serial_us:7.1f}µs  "
              f"critical-path={run.critical_path_us:7.1f}µs  "
              f"speedup={run.speedup:0.2f}x  shards={run.shard_sizes}")


if __name__ == "__main__":
    main()
