"""Crawl the simulated cybersecurity portals and inspect the harvest.

Phase 1 of the pipeline in isolation: the crawler walks four portals
(index pages, advisory pages, an OSVDB-style JSON search API), honors
robots.txt and per-host crawl delays, extracts proof-of-concept payloads
from ``<code>``/``<pre>`` blocks by the paper's rule (everything after the
first ``?``), and deduplicates re-posted samples by normalized digest.

    python examples/crawl_and_inspect.py
"""

from collections import Counter

from repro.corpus.vulndb import classify_payload, coverage, july_2012_cohort
from repro.crawler import CrawlSession, SimulatedClock, SimulatedWeb


def main() -> None:
    web = SimulatedWeb(corpus_size=1200, seed=2012)
    clock = SimulatedClock()
    session = CrawlSession(web, clock=clock)
    print("Crawling", ", ".join(web.portals), "...")
    report = session.run()

    print(f"\npages fetched       : {report.pages_fetched}")
    print(f"blocked by robots   : {report.pages_blocked}")
    print(f"payloads extracted  : {report.payloads_seen}")
    print(f"after deduplication : {len(report.samples)}")
    print(f"virtual crawl time  : {clock.now():.0f}s "
          "(politeness delays honored)")

    print("\nsamples per portal:")
    for portal, count in sorted(report.per_portal.items()):
        print(f"  {portal:24s} {count}")

    families = Counter(
        classify_payload(s.payload) for s in report.samples
    )
    print("\nattack-technique mix (classified from payload text):")
    for family, count in families.most_common():
        bar = "#" * (60 * count // max(families.values()))
        print(f"  {family:18s} {count:5d} {bar}")

    cohort = july_2012_cohort()
    covered = coverage(cohort, report.samples)
    print(f"\nTable I coverage check: {sum(covered.values())}/{len(cohort)} "
          "July-2012 vulnerabilities have launchable samples in the corpus")

    print("\nexample harvested payloads:")
    for sample in report.samples[:5]:
        print(f"  [{sample.portal}] {sample.payload[:70]}")


if __name__ == "__main__":
    main()
