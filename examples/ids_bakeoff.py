"""IDS bake-off: pSigene versus Bro, Snort+ET, and ModSecurity.

Reproduces a small-scale version of the paper's Experiment 1 (Table V):
train pSigene on a crawled corpus, generate SQLmap and Arachni+Vega test
traces against a vulnerable web application, replay one day of benign
university traffic, and print TPR/FPR per detector.

    python examples/ids_bakeoff.py
"""

from repro.eval import (
    EvaluationContext,
    format_table,
    percent,
    table5_accuracy,
)


def main() -> None:
    print("Building evaluation context (train + generate test sets)...")
    context = EvaluationContext.build(
        seed=2012,
        n_attack_samples=2000,
        n_benign_train=6000,
        n_benign_test=12_000,
        max_cluster_rows=1200,
        n_vulnerabilities=60,
    )
    print(f"  sqlmap trace : {len(context.datasets.sqlmap)} attacks")
    print(f"  arachni set  : {len(context.datasets.arachni)} attacks")
    print(f"  benign trace : {len(context.datasets.benign)} requests\n")

    rows = table5_accuracy(context)
    print(format_table(
        ["RULES", "TPR%(SQLmap)", "TPR%(Arachni)", "FPR%", "FALSE ALARMS"],
        [
            [r["rules"], percent(r["tpr_sqlmap"]),
             percent(r["tpr_arachni"]), percent(r["fpr"], 4),
             r["false_alarms"]]
            for r in rows
        ],
        title="Experiment 1 / Table V (small scale)",
    ))
    print(
        "\nPaper (Table V): ModSec 96.07/98.72/0.0515, "
        "pSigene-9 86.53/90.52/0.037, pSigene-7 82.72/89.48/0.016, "
        "Snort-ET 79.55/76.59/0.1742, Bro 73.23/76.33/0.0"
    )


if __name__ == "__main__":
    main()
