"""Incremental retraining: the paper's Experiment 2 as an operational loop.

Deploy pSigene, watch a scanner attack a protected application, fold the
freshly observed attack samples back into training (only Θ is relearned —
the cluster structure stays fixed), and measure detection before/after.

    python examples/incremental_retraining.py
"""

from repro.core import PipelineConfig, PSigenePipeline, incremental_update
from repro.corpus import VulnerableWebApp
from repro.http import Trace
from repro.ids import PSigeneDetector, SignatureEngine
from repro.scanners import SqlmapSimulator


def detection_rate(signature_set, trace) -> float:
    engine = SignatureEngine(PSigeneDetector(signature_set))
    return float(engine.run(trace).alert_flags.mean())


def main() -> None:
    print("Day 0: train pSigene from the public-portal crawl")
    pipeline = PSigenePipeline(PipelineConfig(
        seed=2012, n_attack_samples=1500, n_benign_train=4000,
        max_cluster_rows=1000,
    ))
    result = pipeline.run()

    print("Day 1: a scanner attacks the protected application")
    app = VulnerableWebApp(seed=404, n_vulnerabilities=30)
    observed = SqlmapSimulator(app, seed=99).scan()
    half = len(observed) // 2
    today = Trace(name="day1", requests=observed.requests[:half])
    tomorrow = Trace(name="day2", requests=observed.requests[half:])

    before = detection_rate(result.signature_set, tomorrow)
    print(f"  detection on tomorrow's traffic (no update): {before:.2%}")

    print("Night 1: fold today's confirmed attacks into training "
          f"({len(today)} samples; automatic, Θ-only)")
    update = incremental_update(
        pipeline, result, today.payloads()
    )
    for index, count in sorted(update.assigned.items()):
        print(f"    bicluster {index}: +{count} samples")

    after = detection_rate(update.signature_set, tomorrow)
    print(f"\n  detection on tomorrow's traffic (after update): {after:.2%}")
    print(f"  change: {after - before:+.2%} "
          "(paper: +2.6% at 20% augmentation, +4.6% at 40%)")


if __name__ == "__main__":
    main()
