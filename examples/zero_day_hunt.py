"""Zero-day hunt: how generalized signatures catch unseen attack shapes.

The paper's central claim is that signatures trained on crawled samples
match attacks they were never trained on ("generalized implies the
signatures will be able to match some zero-day attacks").  This example
trains the pipeline, then probes it with hand-crafted payloads that use
table names, functions, and structures absent from the training grammar —
and contrasts pSigene's verdicts with a Perdisci-style token-subsequence
signature set trained on the same corpus.

    python examples/zero_day_hunt.py
"""

from repro.core import PipelineConfig, PSigenePipeline
from repro.perdisci import PerdisciSystem

ZERO_DAYS = [
    # Novel vocabulary and structure, same attack physics.
    "report=Q4' UNION SELECT billing_token,NULL,NULL FROM "
    "vault.payment_methods WHERE region='eu'-- -",
    "ticket=88' AND (SELECT 1 FROM stand_in WHERE "
    "tag=0x6465616462656566 AND sleep(11))-- -",
    "locale=fr' OR 'zebra'='zebra",
    "doc=7';CREATE TABLE pwned(flag varchar(64));-- -",
    "sid=3' AND ORD(MID((SELECT api_key FROM tenants LIMIT 1),7,1))>99#",
    "export=csv' INTO OUTFILE '/var/www/shell.php'-- -",
]

LOOKALIKES = [
    # Benign strings that merely smell like SQL.
    "q=select+committee+report+2012",
    "q=union+station+parking",
    "comment=I+really+like+null+coffee+--+dave",
    "title=Drop+the+Bass+%28remix%29",
]


def main() -> None:
    print("Training pSigene...")
    pipeline = PSigenePipeline(PipelineConfig(
        seed=2012, n_attack_samples=1500, n_benign_train=4000,
        max_cluster_rows=1000,
    ))
    result = pipeline.run()
    signatures = result.signature_set

    print("Training the Perdisci token-subsequence baseline...")
    perdisci = PerdisciSystem(max_training=500, seed=1)
    perdisci.fit([s.payload for s in result.samples])

    print(f"\n{'':52s}  pSigene      Perdisci")
    print("zero-day payloads (never seen, novel vocabulary):")
    for payload in ZERO_DAYS:
        score, fired = signatures.evaluate(payload)
        psig = f"p={score:0.3f} {'ALERT' if fired else 'miss '}"
        perd = "ALERT" if perdisci.inspect(payload).alert else "miss "
        print(f"  {payload[:50]:52s}  {psig}  {perd}")

    print("\nbenign lookalikes:")
    for payload in LOOKALIKES:
        score, fired = signatures.evaluate(payload)
        psig = f"p={score:0.3f} {'ALERT' if fired else 'pass '}"
        perd = "ALERT" if perdisci.inspect(payload).alert else "pass "
        print(f"  {payload[:50]:52s}  {psig}  {perd}")

    caught = sum(1 for p in ZERO_DAYS if signatures.matches(p))
    print(f"\npSigene caught {caught}/{len(ZERO_DAYS)} zero-days; "
          "Perdisci's memorized token subsequences catch (almost) none — "
          "the paper's Experiment 3 in miniature.")


if __name__ == "__main__":
    main()
