"""Unified observability: metrics registry, span tracing, exposition.

Every subsystem of the reproduction reports through this package
(DESIGN.md §12):

- :mod:`repro.obs.registry` — process-wide counters, gauges, and
  log-bucketed histograms, with a :class:`NullRegistry` no-op variant.
- :mod:`repro.obs.trace` — nested span tracing for the offline pipeline
  with deterministic JSON export.
- :mod:`repro.obs.prometheus` — Prometheus text-format rendering and a
  strict parser (used by ``GET /metrics``, ``repro obs dump``, and the
  CI exposition guard).
- :mod:`repro.obs.manifest` — per-run JSON manifests under ``runs/``.

The serving stack's :class:`~repro.serve.telemetry.Telemetry` is a
consumer of this registry: the gateway's ``/stats`` counters and the
``/metrics`` exposition are two views of the same instruments.
"""

from repro.obs import trace
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    ManifestError,
    build_manifest,
    git_describe,
    validate_manifest,
    write_manifest,
)
from repro.obs.prometheus import (
    CONTENT_TYPE,
    ExpositionError,
    Sample,
    parse_exposition,
    render_exposition,
    sample_value,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.trace import Span, Tracer, current_tracer, span

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "ExpositionError",
    "Gauge",
    "Histogram",
    "MANIFEST_SCHEMA",
    "ManifestError",
    "MetricsRegistry",
    "NullRegistry",
    "Sample",
    "Span",
    "Tracer",
    "build_manifest",
    "current_tracer",
    "get_registry",
    "git_describe",
    "parse_exposition",
    "render_exposition",
    "sample_value",
    "set_registry",
    "span",
    "trace",
    "use_registry",
    "validate_manifest",
    "write_manifest",
]
