"""Process-wide metrics: counters, gauges, and log-bucketed histograms.

The paper's evaluation is measurement end to end — crawl volume
(Section II-A), feature-matrix sparsity (II-B), per-signature matching
latency (Experiment 4), detection rates (Table V) — yet only the serving
hot path was instrumented before this module existed.  The registry is
the one place every subsystem reports through: the crawler counts fetches
and dedup hits, the extractor counts per-feature matches, the learner
counts PCG iterations, and the gateway's telemetry is a thin consumer of
the same instruments it used to own.

Design constraints, in order:

1. **Cheap on the hot path.**  One instrument operation is one lock
   acquisition and a couple of scalar updates; instrument handles are
   resolved once (at construction / first use) and then held, so steady
   state never touches the registry dict.
2. **No-op capable.**  :class:`NullRegistry` hands out inert instruments
   so instrumented code can run with measurable-zero overhead — the
   baseline the overhead benchmark compares against.
3. **Exposable.**  Every instrument renders to the Prometheus text format
   (:mod:`repro.obs.prometheus`) and to a plain dict snapshot.

Metric naming convention (DESIGN.md §12): ``repro_<subsystem>_<what>``
with the standard suffixes — ``_total`` for counters, ``_seconds`` for
histograms of durations, bare names for gauges.
"""

from __future__ import annotations

import math
import re
import threading
from collections.abc import Callable, Mapping
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    """Validate a metric name against the Prometheus charset."""
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _check_labels(labels: Mapping[str, str] | None) -> tuple:
    """Validate and freeze a label set into a sorted, hashable key."""
    if not labels:
        return ()
    for key in labels:
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(f"invalid label name: {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count.

    Args:
        name: Prometheus-style metric name (``repro_..._total``).
        help: one-line description, rendered as ``# HELP``.
        labels: optional static label set distinguishing this series
            from siblings of the same name.
        lock: shared registry lock (a private one is made when absent).
    """

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        lock: threading.Lock | None = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = dict(_check_labels(labels))
        self._lock = lock if lock is not None else threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        """Current count."""
        with self._lock:
            return self._value

    def samples(self) -> list[tuple[str, dict, float]]:
        """Exposition samples: ``[(name, labels, value)]``."""
        return [(self.name, self.labels, float(self.value))]


class Gauge:
    """A value that can go up and down — or be computed on read.

    A callback gauge (``function=...``) is evaluated at collection time;
    it is how live state (admission queue depth, store version) is
    exported without the owner pushing updates.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        function: Callable[[], float] | None = None,
        lock: threading.Lock | None = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = dict(_check_labels(labels))
        self._lock = lock if lock is not None else threading.Lock()
        self._value = 0.0
        self._function = function

    def set(self, value: float) -> None:
        """Set the gauge to ``value`` (clears any callback)."""
        with self._lock:
            self._function = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the stored value."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the stored value."""
        self.inc(-amount)

    def set_function(self, function: Callable[[], float] | None) -> None:
        """Make this gauge compute its value through ``function``."""
        with self._lock:
            self._function = function

    @property
    def value(self) -> float:
        """Current value (evaluates the callback when one is set)."""
        with self._lock:
            function = self._function
            if function is None:
                return self._value
        return float(function())

    def samples(self) -> list[tuple[str, dict, float]]:
        """Exposition samples: ``[(name, labels, value)]``."""
        return [(self.name, self.labels, float(self.value))]


class Histogram:
    """Streaming histogram with geometrically-spaced buckets.

    Exact storage of every observation is unbounded on a long-running
    process; a fixed set of log-spaced buckets bounds memory at a few
    hundred integers while keeping quantile error under the bucket
    growth factor (~12% worst case with the default 1.25).

    Args:
        name: metric name (``repro_..._seconds`` for durations).
        help: one-line description.
        low: lower edge of the first finite bucket.
        high: upper edge of the last finite bucket.
        growth: ratio between consecutive bucket edges.
        lock: shared registry lock (a private one is made when absent).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str = "histogram",
        help: str = "",
        *,
        low: float = 1e-6,
        high: float = 60.0,
        growth: float = 1.25,
        lock: threading.Lock | None = None,
    ) -> None:
        if not (0 < low < high):
            raise ValueError(f"need 0 < low < high, got {low}, {high}")
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1, got {growth}")
        self.name = _check_name(name)
        self.help = help
        self.labels: dict[str, str] = {}
        edges = [low]
        while edges[-1] < high:
            edges.append(edges[-1] * growth)
        self._edges = edges
        self._log_low = math.log(low)
        self._log_growth = math.log(growth)
        # One underflow bucket below ``low`` and one overflow above ``high``.
        self._counts = [0] * (len(edges) + 1)
        self._lock = lock if lock is not None else threading.Lock()
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (negatives clamp to zero)."""
        if value < 0:
            value = 0.0
        if value < self._edges[0]:
            index = 0
        else:
            index = 1 + int(
                (math.log(value) - self._log_low) / self._log_growth
            )
            index = min(index, len(self._counts) - 1)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Mean observed value (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in (0, 1], as the covering bucket edge.

        Returns the upper edge of the bucket holding the q-th observation,
        clamped to the largest observed value, so the estimate never
        exceeds reality by more than one bucket's width.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = math.ceil(q * self.count)
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                edge = self._edges[min(index, len(self._edges) - 1)]
                return min(edge, self.max)
        return self.max

    def percentiles_ms(self) -> dict[str, float]:
        """The standard p50/p95/p99 triple plus mean/max, in milliseconds."""
        return {
            "p50_ms": self.quantile(0.50) * 1e3,
            "p95_ms": self.quantile(0.95) * 1e3,
            "p99_ms": self.quantile(0.99) * 1e3,
            "mean_ms": self.mean * 1e3,
            "max_ms": self.max * 1e3,
        }

    def state(self) -> dict[str, Any]:
        """Portable snapshot of this histogram for cross-process merging.

        The fleet supervisor ships shard histograms over a pipe as plain
        dicts and folds them together with :meth:`merge_state`; bucket
        geometry (``low``/``growth``/bucket count) travels with the
        counts so a mismatched merge fails loudly instead of silently
        misbinning.
        """
        with self._lock:
            return {
                "low": self._edges[0],
                "growth": math.exp(self._log_growth),
                "counts": list(self._counts),
                "count": self.count,
                "total": self.total,
                "max": self.max,
            }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Raises:
            ValueError: when the bucket geometry differs — merging
                histograms binned on different edges has no meaning.
        """
        counts = state["counts"]
        if (
            len(counts) != len(self._counts)
            or abs(state["low"] - self._edges[0]) > 1e-12
            or abs(math.log(state["growth"]) - self._log_growth) > 1e-12
        ):
            raise ValueError(
                "histogram geometry mismatch: cannot merge "
                f"{len(counts)} buckets (low={state['low']}, "
                f"growth={state['growth']}) into {len(self._counts)} "
                f"(low={self._edges[0]})"
            )
        with self._lock:
            for index, bucket_count in enumerate(counts):
                self._counts[index] += int(bucket_count)
            self.count += int(state["count"])
            self.total += float(state["total"])
            if float(state["max"]) > self.max:
                self.max = float(state["max"])

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(upper_edge, cumulative_count)`` pairs.

        The final pair has ``math.inf`` as its edge and equals ``count``.
        """
        with self._lock:
            pairs: list[tuple[float, int]] = []
            seen = 0
            for index, bucket_count in enumerate(self._counts[:-1]):
                seen += bucket_count
                pairs.append((self._edges[index], seen))
            pairs.append((math.inf, self.count))
            return pairs

    def samples(self) -> list[tuple[str, dict, float]]:
        """Exposition samples: ``_bucket{le=...}`` series, ``_sum``,
        ``_count``."""
        rows: list[tuple[str, dict, float]] = []
        for edge, cumulative in self.cumulative_buckets():
            label = "+Inf" if math.isinf(edge) else format(edge, ".9g")
            rows.append((f"{self.name}_bucket", {"le": label}, float(cumulative)))
        rows.append((f"{self.name}_sum", {}, float(self.total)))
        rows.append((f"{self.name}_count", {}, float(self.count)))
        return rows


class MetricsRegistry:
    """Get-or-create home for every instrument in a process.

    One lock is shared by the registry and all of its instruments, so a
    multi-instrument update (the telemetry hot path) serializes exactly
    once per instrument with no lock-ordering hazards.

    Instruments are keyed by ``(name, labelset)``; asking for an existing
    key returns the existing instrument, asking for an existing name with
    a different kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple, Any] = {}
        self._kinds: dict[str, str] = {}

    def _get_or_create(
        self, kind: str, name: str, key: tuple, factory: Callable[[], Any]
    ) -> Any:
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing_kind}, not {kind}"
                )
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
                self._kinds[name] = kind
            return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        """Get or create the :class:`Counter` for ``(name, labels)``."""
        key = (name, _check_labels(labels))
        return self._get_or_create(
            "counter", name, key,
            lambda: Counter(name, help, labels=labels, lock=self._lock),
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        function: Callable[[], float] | None = None,
    ) -> Gauge:
        """Get or create a :class:`Gauge`; ``function`` (re)binds the
        callback even on an existing gauge."""
        key = (name, _check_labels(labels))
        gauge = self._get_or_create(
            "gauge", name, key,
            lambda: Gauge(
                name, help, labels=labels, function=function,
                lock=self._lock,
            ),
        )
        if function is not None:
            gauge.set_function(function)
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        low: float = 1e-6,
        high: float = 60.0,
        growth: float = 1.25,
    ) -> Histogram:
        """Get or create the :class:`Histogram` named ``name``."""
        key = (name, ())
        return self._get_or_create(
            "histogram", name, key,
            lambda: Histogram(
                name, help, low=low, high=high, growth=growth,
                lock=self._lock,
            ),
        )

    def collect(self) -> list[Any]:
        """Every registered instrument, sorted by (name, labelset)."""
        with self._lock:
            return [
                self._instruments[key]
                for key in sorted(self._instruments)
            ]

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view: scalar values and histogram summaries."""
        result: dict[str, Any] = {}
        for instrument in self.collect():
            if instrument.kind == "histogram":
                result[instrument.name] = {
                    "count": instrument.count,
                    **instrument.percentiles_ms(),
                }
            else:
                key = instrument.name
                if instrument.labels:
                    rendered = ",".join(
                        f"{k}={v}" for k, v in sorted(instrument.labels.items())
                    )
                    key = f"{key}{{{rendered}}}"
                result[key] = instrument.value
        return result


class _NullInstrument:
    """Inert counter/gauge/histogram: every mutator is a no-op.

    One instance serves all three roles; reads return zero so code that
    inspects its own instruments keeps working against a
    :class:`NullRegistry`.
    """

    kind = "null"
    name = "null"
    help = ""
    labels: dict[str, str] = {}
    count = 0
    total = 0.0
    max = 0.0
    value = 0.0
    mean = 0.0

    def inc(self, amount: float = 1) -> None:
        """No-op."""

    def dec(self, amount: float = 1) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def set_function(self, function: Callable[[], float] | None) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""

    def quantile(self, q: float) -> float:
        """Always 0.0."""
        return 0.0

    def percentiles_ms(self) -> dict[str, float]:
        """All-zero percentile summary."""
        return {
            "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
            "mean_ms": 0.0, "max_ms": 0.0,
        }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Empty bucket list."""
        return [(math.inf, 0)]

    def samples(self) -> list[tuple[str, dict, float]]:
        """No samples."""
        return []


_NULL = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry whose instruments do nothing.

    Install it (``set_registry(NullRegistry())``) to run instrumented
    code with zero bookkeeping — the control arm of the overhead
    benchmark, and the escape hatch for workloads that want no metrics.
    """

    def counter(self, name, help="", *, labels=None):
        """The shared inert instrument."""
        return _NULL

    def gauge(self, name, help="", *, labels=None, function=None):
        """The shared inert instrument."""
        return _NULL

    def histogram(self, name, help="", *, low=1e-6, high=60.0, growth=1.25):
        """The shared inert instrument."""
        return _NULL

    def collect(self) -> list[Any]:
        """Always empty."""
        return []

    def snapshot(self) -> dict[str, Any]:
        """Always empty."""
        return {}


_default_registry: MetricsRegistry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default registry; returns the old one."""
    global _default_registry
    with _registry_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


class use_registry:
    """Context manager: temporarily install ``registry`` as the default.

    >>> from repro.obs import MetricsRegistry, use_registry
    >>> with use_registry(MetricsRegistry()) as registry:
    ...     pass  # instrumented code reports into `registry`
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        """Install the registry; returns it for ``as`` binding."""
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info) -> None:
        """Restore the previously installed registry."""
        if self._previous is not None:
            set_registry(self._previous)
