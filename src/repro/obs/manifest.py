"""Run manifests: one JSON record per pipeline run, written to ``runs/``.

The paper reports its pipeline as aggregate numbers (30,000 samples
crawled, 477 features, 9 signatures); reproducing those numbers at
different scales and seeds means keeping a machine-readable record of
every run — what configuration ran, which phases it executed, how long
each took in wall and CPU time, what it produced, and against which
code (``git describe``).  ``PSigenePipeline.run`` emits one of these
when ``PipelineConfig.manifest_dir`` is set; ``repro obs validate``
checks one against the schema.

The schema is deliberately flat and versioned (``schema: 1``) so later
PRs can extend it without breaking earlier readers.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Any

__all__ = [
    "MANIFEST_SCHEMA",
    "ManifestError",
    "build_manifest",
    "git_describe",
    "validate_manifest",
    "write_manifest",
]

#: Current manifest schema version.
MANIFEST_SCHEMA = 1

#: Required top-level keys and the types validation enforces.
_REQUIRED: dict[str, type | tuple] = {
    "schema": int,
    "created_unix": (int, float),
    "git": str,
    "seed": int,
    "config": dict,
    "phases": list,
    "counts": dict,
}

_PHASE_REQUIRED: dict[str, type | tuple] = {
    "name": str,
    "depth": int,
    "wall_s": (int, float),
    "cpu_s": (int, float),
    "attrs": dict,
}


class ManifestError(ValueError):
    """A manifest that does not conform to the schema."""


def git_describe(cwd: str | None = None) -> str:
    """``git describe --always --dirty`` of the working tree.

    Returns ``"unknown"`` when git is unavailable or the directory is
    not a repository — a manifest must never fail a run over metadata.
    """
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


def build_manifest(
    *,
    seed: int,
    config: dict[str, Any],
    phases: list[dict[str, Any]],
    counts: dict[str, int],
    trace: dict[str, Any] | None = None,
    git: str | None = None,
) -> dict[str, Any]:
    """Assemble a schema-1 manifest dict.

    Args:
        seed: the run's master seed.
        config: JSON-safe snapshot of the driving configuration.
        phases: flat phase rows (see ``Tracer.phase_summaries``).
        counts: what the run produced (samples, features, signatures...).
        trace: optional full span tree (``Tracer.export()``).
        git: code version; computed via :func:`git_describe` when absent.
    """
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": time.time(),
        "git": git if git is not None else git_describe(),
        "seed": int(seed),
        "config": dict(config),
        "phases": [dict(phase) for phase in phases],
        "counts": {key: int(value) for key, value in counts.items()},
    }
    if trace is not None:
        manifest["trace"] = trace
    return manifest


def validate_manifest(manifest: Any) -> dict[str, Any]:
    """Check a manifest against the schema; returns it on success.

    Raises:
        ManifestError: missing keys, wrong types, or a phase row that
            does not carry name/depth/wall/cpu/attrs.
    """
    if not isinstance(manifest, dict):
        raise ManifestError(
            f"manifest must be an object, got {type(manifest).__name__}"
        )
    for key, expected in _REQUIRED.items():
        if key not in manifest:
            raise ManifestError(f"manifest missing required key {key!r}")
        if not isinstance(manifest[key], expected):
            raise ManifestError(
                f"manifest key {key!r} has type "
                f"{type(manifest[key]).__name__}"
            )
    if manifest["schema"] != MANIFEST_SCHEMA:
        raise ManifestError(
            f"unsupported manifest schema {manifest['schema']!r}"
        )
    for index, phase in enumerate(manifest["phases"]):
        if not isinstance(phase, dict):
            raise ManifestError(f"phase {index} is not an object")
        for key, expected in _PHASE_REQUIRED.items():
            if key not in phase:
                raise ManifestError(
                    f"phase {index} missing required key {key!r}"
                )
            if not isinstance(phase[key], expected):
                raise ManifestError(
                    f"phase {index} key {key!r} has type "
                    f"{type(phase[key]).__name__}"
                )
    for key, value in manifest["counts"].items():
        if not isinstance(key, str) or not isinstance(value, int):
            raise ManifestError(
                f"counts entries must be str -> int, got {key!r}: {value!r}"
            )
    return manifest


def write_manifest(manifest: dict[str, Any], directory: str) -> str:
    """Validate and write a manifest to ``<directory>/<timestamp>.json``.

    The filename is a UTC timestamp; collisions (two runs in one second)
    get a ``-<n>`` suffix rather than clobbering the earlier run.
    Returns the written path.
    """
    validate_manifest(manifest)
    os.makedirs(directory, exist_ok=True)
    stamp = time.strftime(
        "%Y%m%dT%H%M%SZ", time.gmtime(manifest["created_unix"])
    )
    path = os.path.join(directory, f"{stamp}.json")
    suffix = 1
    while os.path.exists(path):
        path = os.path.join(directory, f"{stamp}-{suffix}.json")
        suffix += 1
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path
