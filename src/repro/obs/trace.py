"""Lightweight span tracing for the offline pipeline.

The pipeline is a chain of phases — crawl, extract, bicluster,
generalize — and every performance question about it ("where did the
wall time go when ``--samples`` doubled?") is a question about that
tree.  A :class:`Tracer` records it: ``with trace.span("features.extract",
n=3000):`` opens a named span, nested ``span()`` calls become children,
and the finished tree exports to deterministic JSON (stable key order,
spans in start order) that the run manifest embeds.

Ambient by design: instrumented library code calls the module-level
:func:`span` without knowing whether anyone is tracing.  When no tracer
is active the call yields an unrecorded throwaway span — two dict
lookups of overhead — so instrumentation can stay unconditionally in
place.  Activation is a `contextvars` binding, so concurrent tasks
(e.g. the gateway's event loop) never see another task's tracer.

Durations are recorded as both wall time (``perf_counter``) and CPU
time (``process_time``); the spread between them is the cheapest
blocked-versus-busy diagnostic there is.
"""

from __future__ import annotations

import contextlib
import json
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry

__all__ = ["Span", "Tracer", "current_tracer", "span"]

_ACTIVE_TRACER: ContextVar["Tracer | None"] = ContextVar(
    "repro_obs_tracer", default=None
)


@dataclass
class Span:
    """One named, timed region of work.

    Attributes:
        name: dotted span name (``phase.features``, ``cluster.linkage``).
        attrs: caller-supplied attributes (sample counts, worker counts).
        children: spans opened while this one was current.
        wall_s: wall-clock duration in seconds (set at close).
        cpu_s: process CPU time consumed in seconds (set at close).
    """

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    wall_s: float = 0.0
    cpu_s: float = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes discovered mid-span; returns self."""
        self.attrs.update(attrs)
        return self

    def to_dict(self, *, timings: bool = True) -> dict[str, Any]:
        """Plain-dict form; ``timings=False`` yields the structural
        skeleton (names, attrs, nesting) used by determinism checks."""
        exported: dict[str, Any] = {
            "name": self.name,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }
        if timings:
            exported["wall_s"] = self.wall_s
            exported["cpu_s"] = self.cpu_s
        exported["children"] = [
            child.to_dict(timings=timings) for child in self.children
        ]
        return exported


class Tracer:
    """Collects a tree of :class:`Span` records.

    Args:
        registry: optional metrics registry; when present every closed
            span also feeds a ``repro_span_seconds``-style histogram so
            phase timings show up in ``/metrics`` and ``obs dump``
            without a separate export step.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.roots: list[Span] = []
        self.registry = registry
        self._stack: list[Span] = []

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any):
        """Open a child span of the current span (or a new root)."""
        opened = Span(name=name, attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(opened)
        else:
            self.roots.append(opened)
        self._stack.append(opened)
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield opened
        finally:
            opened.wall_s = time.perf_counter() - wall_start
            opened.cpu_s = time.process_time() - cpu_start
            self._stack.pop()
            if self.registry is not None:
                self.registry.histogram(
                    "repro_span_" + _metric_suffix(name) + "_seconds",
                    f"Wall time of {name} spans.",
                ).observe(opened.wall_s)

    @contextlib.contextmanager
    def activate(self):
        """Install this tracer as the ambient one for :func:`span`."""
        token = _ACTIVE_TRACER.set(self)
        try:
            yield self
        finally:
            _ACTIVE_TRACER.reset(token)

    def export(self, *, timings: bool = True) -> dict[str, Any]:
        """The trace as a JSON-ready dict (``schema`` + root spans)."""
        return {
            "schema": 1,
            "spans": [root.to_dict(timings=timings) for root in self.roots],
        }

    def to_json(self, *, timings: bool = True) -> str:
        """Deterministic JSON: sorted keys, fixed separators."""
        return json.dumps(
            self.export(timings=timings),
            sort_keys=True,
            separators=(",", ":"),
        )

    def phase_summaries(self) -> list[dict[str, Any]]:
        """Flat per-phase rows (name, wall/cpu, attrs) for manifests.

        Depth-first over the tree, so nested spans follow their parent.
        """
        rows: list[dict[str, Any]] = []

        def _walk(span_record: Span, depth: int) -> None:
            rows.append({
                "name": span_record.name,
                "depth": depth,
                "wall_s": span_record.wall_s,
                "cpu_s": span_record.cpu_s,
                "attrs": {
                    k: span_record.attrs[k]
                    for k in sorted(span_record.attrs)
                },
            })
            for child in span_record.children:
                _walk(child, depth + 1)

        for root in self.roots:
            _walk(root, 0)
        return rows


def _metric_suffix(name: str) -> str:
    """Span name → metric-name fragment (dots and dashes to underscores)."""
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def current_tracer() -> Tracer | None:
    """The ambient tracer, or ``None`` when tracing is off."""
    return _ACTIVE_TRACER.get()


@contextlib.contextmanager
def span(name: str, **attrs: Any):
    """Open a span on the ambient tracer; a cheap no-op without one.

    This is the one call instrumented code makes:

    >>> from repro.obs import trace
    >>> with trace.span("features.extract", n=3000) as s:
    ...     s.set(matches=12)
    """
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        yield Span(name=name, attrs=dict(attrs))
        return
    with tracer.span(name, **attrs) as opened:
        yield opened
