"""Prometheus text exposition: render a registry, parse it back, strictly.

The gateway's ``GET /metrics`` and the ``repro obs dump`` CLI both emit
this format (text/plain, version 0.0.4).  The module also ships a strict
parser — not for scraping Prometheus ourselves, but so the tests and the
CI guard can round-trip the exposition and fail loudly on drift: a
malformed line that a real Prometheus server would drop silently is an
observability outage nobody notices until a dashboard goes blank.

Rendering rules (the subset of the spec we produce):

- ``# HELP <name> <text>`` then ``# TYPE <name> <kind>`` once per family,
  immediately before its samples.
- Samples are ``name value`` or ``name{label="value",...} value`` with
  label values ``\\``-escaped.
- Families are sorted by name; a trailing newline ends the document.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "CONTENT_TYPE",
    "ExpositionError",
    "Sample",
    "parse_exposition",
    "render_exposition",
    "sample_value",
]

#: The content type Prometheus scrapers expect for the text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class ExpositionError(ValueError):
    """A line that is not valid Prometheus text format."""


class Sample:
    """One parsed sample line.

    Attributes:
        name: sample name (may carry ``_bucket``/``_sum`` suffixes).
        labels: decoded label mapping.
        value: the sample's float value.
    """

    def __init__(self, name: str, labels: dict[str, str], value: float):
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:
        return f"Sample({self.name!r}, {self.labels!r}, {self.value!r})"


def _escape_label_value(value: str) -> str:
    """Escape ``\\``, ``"`` and newlines per the exposition spec."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _unescape_label_value(value: str) -> str:
    """Reverse :func:`_escape_label_value`."""
    result: list[str] = []
    index = 0
    while index < len(value):
        ch = value[index]
        if ch == "\\" and index + 1 < len(value):
            follower = value[index + 1]
            result.append(
                {"n": "\n", "\\": "\\", '"': '"'}.get(follower, follower)
            )
            index += 2
        else:
            result.append(ch)
            index += 1
    return "".join(result)


def _format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_exposition(registry: "MetricsRegistry") -> str:
    """The registry's instruments in Prometheus text format."""
    lines: list[str] = []
    seen_families: set[str] = set()
    for instrument in registry.collect():
        family = instrument.name
        if family not in seen_families:
            seen_families.add(family)
            if instrument.help:
                help_text = instrument.help.replace("\\", r"\\")
                help_text = help_text.replace("\n", r"\n")
                lines.append(f"# HELP {family} {help_text}")
            lines.append(f"# TYPE {family} {instrument.kind}")
        for name, labels, value in instrument.samples():
            if labels:
                rendered = ",".join(
                    f'{key}="{_escape_label_value(str(labels[key]))}"'
                    for key in sorted(labels)
                )
                lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_value(text: str, line_number: int) -> float:
    """Parse a sample value, accepting the spec's infinity spellings."""
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    try:
        return float(text)
    except ValueError as exc:
        raise ExpositionError(
            f"line {line_number}: bad sample value {text!r}"
        ) from exc


def _parse_labels(raw: str, line_number: int) -> dict[str, str]:
    """Decode the ``k="v",...`` body of a labeled sample."""
    labels: dict[str, str] = {}
    if not raw.strip():
        return labels
    # Split on commas outside quotes.
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    index = 0
    while index < len(raw):
        ch = raw[index]
        if ch == "\\" and in_quotes:
            current.append(raw[index:index + 2])
            index += 2
            continue
        if ch == '"':
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
        index += 1
    if in_quotes:
        raise ExpositionError(
            f"line {line_number}: unterminated label value"
        )
    parts.append("".join(current))
    for part in parts:
        match = _LABEL_RE.match(part.strip())
        if match is None:
            raise ExpositionError(
                f"line {line_number}: malformed label {part!r}"
            )
        key = match.group("key")
        if key in labels:
            raise ExpositionError(
                f"line {line_number}: duplicate label {key!r}"
            )
        labels[key] = _unescape_label_value(match.group("value"))
    return labels


def parse_exposition(text: str) -> dict[str, list[Sample]]:
    """Parse exposition text into ``{family_name: [Sample, ...]}``.

    Strict by design — raises :class:`ExpositionError` on anything a
    conforming producer would never emit: unknown ``# TYPE`` kinds,
    samples with no ``TYPE``, malformed labels, duplicate series,
    missing trailing newline.
    """
    if text and not text.endswith("\n"):
        raise ExpositionError("exposition must end with a newline")
    families: dict[str, list[Sample]] = {}
    types: dict[str, str] = {}
    seen_series: set[tuple[str, tuple]] = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ExpositionError(
                    f"line {line_number}: malformed comment {line!r}"
                )
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ExpositionError(
                    f"line {line_number}: bad metric name {name!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPES:
                    raise ExpositionError(
                        f"line {line_number}: bad TYPE line {line!r}"
                    )
                if name in types:
                    raise ExpositionError(
                        f"line {line_number}: duplicate TYPE for {name!r}"
                    )
                types[name] = parts[3]
                families.setdefault(name, [])
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(
                f"line {line_number}: malformed sample {line!r}"
            )
        sample_name = match.group("name")
        family = _family_of(sample_name, types)
        if family is None:
            raise ExpositionError(
                f"line {line_number}: sample {sample_name!r} has no TYPE"
            )
        labels = _parse_labels(match.group("labels") or "", line_number)
        series_key = (sample_name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            raise ExpositionError(
                f"line {line_number}: duplicate series {sample_name!r} "
                f"{labels!r}"
            )
        seen_series.add(series_key)
        value = _parse_value(match.group("value"), line_number)
        families[family].append(Sample(sample_name, labels, value))
    return families


def _family_of(sample_name: str, types: dict[str, str]) -> str | None:
    """Resolve a sample to its family, honoring histogram suffixes."""
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return None


def sample_value(
    families: dict[str, list[Sample]],
    name: str,
    labels: dict[str, str] | None = None,
) -> float:
    """Convenience lookup: the value of one series, by exact match.

    Raises:
        KeyError: when no sample of that name/labelset exists.
    """
    wanted = labels or {}
    for samples in families.values():
        for sample in samples:
            if sample.name == name and sample.labels == wanted:
                return sample.value
    raise KeyError(f"no sample {name!r} with labels {wanted!r}")
