"""Perdisci fine-grained clustering of HTTP requests.

Section III-F: coarse-grained clustering is skipped (each HTTP request
stands alone); fine-grained clustering uses "the same predefined weights
(10 and 8) as in Perdisci, assigning them to the parameter values and
names, respectively", disregarding method and path; cluster count is
controlled with the Davies–Bouldin validity index.

Requests embed into a weighted vector space — parameter-value character
bigrams (weight 10) concatenated with parameter-name indicators (weight 8)
— so that the agglomerative clustering and the DB index both operate on
the distances those weights induce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.dendrogram import Dendrogram
from repro.cluster.distance import euclidean_matrix
from repro.cluster.linkage import upgma
from repro.cluster.validity import davies_bouldin
from repro.http.url import parse_query, unquote

VALUE_WEIGHT = 10.0
NAME_WEIGHT = 8.0


def _bigrams(text: str) -> list[str]:
    return [text[i:i + 2] for i in range(len(text) - 1)]


@dataclass
class RequestEmbedding:
    """The embedding vocabulary learned from a payload corpus."""

    bigram_index: dict[str, int]
    name_index: dict[str, int]

    @property
    def dimension(self) -> int:
        """Total embedded vector length (bigrams + names)."""
        return len(self.bigram_index) + len(self.name_index)


def _split(payload: str) -> tuple[list[str], str]:
    """Parameter names and the concatenated decoded values of a payload."""
    pairs = parse_query(payload)
    names = [name.lower() for name, _ in pairs]
    values = " ".join(
        unquote(value, plus_as_space=True).lower() for _, value in pairs
    )
    return names, values


def build_embedding(
    payloads: list[str], *, max_bigrams: int = 1500
) -> RequestEmbedding:
    """Learn the bigram/name vocabulary from a corpus (frequency-capped)."""
    bigram_counts: dict[str, int] = {}
    names_seen: dict[str, int] = {}
    for payload in payloads:
        names, values = _split(payload)
        for bigram in _bigrams(values):
            bigram_counts[bigram] = bigram_counts.get(bigram, 0) + 1
        for name in names:
            names_seen[name] = names_seen.get(name, 0) + 1
    top = sorted(bigram_counts, key=lambda b: -bigram_counts[b])[:max_bigrams]
    return RequestEmbedding(
        bigram_index={b: i for i, b in enumerate(sorted(top))},
        name_index={n: i for i, n in enumerate(sorted(names_seen))},
    )


def embed(payloads: list[str], embedding: RequestEmbedding) -> np.ndarray:
    """Weighted vectors: √10·(L2-normalized value bigrams) ⊕ √8·(names)."""
    n_bigrams = len(embedding.bigram_index)
    n_names = len(embedding.name_index)
    out = np.zeros((len(payloads), n_bigrams + n_names), dtype=np.float64)
    for row, payload in enumerate(payloads):
        names, values = _split(payload)
        for bigram in _bigrams(values):
            column = embedding.bigram_index.get(bigram)
            if column is not None:
                out[row, column] += 1.0
        norm = np.linalg.norm(out[row, :n_bigrams])
        if norm > 0:
            out[row, :n_bigrams] *= np.sqrt(VALUE_WEIGHT) / norm
        name_block = np.zeros(n_names)
        for name in names:
            column = embedding.name_index.get(name)
            if column is not None:
                name_block[column] = 1.0
        norm = np.linalg.norm(name_block)
        if norm > 0:
            name_block *= np.sqrt(NAME_WEIGHT) / norm
        out[row, n_bigrams:] = name_block
    return out


@dataclass
class FineGrainedResult:
    """Clustering outcome.

    Attributes:
        labels: flat cluster label per payload.
        k: number of clusters chosen.
        db_index: Davies–Bouldin value at the chosen cut.
        db_by_k: the DB validity curve the search walked.
    """

    labels: np.ndarray
    k: int
    db_index: float
    db_by_k: dict[int, float]


def fine_grained_clustering(
    vectors: np.ndarray,
    *,
    k_min: int = 2,
    k_max: int | None = None,
    sweep_points: int = 40,
) -> FineGrainedResult:
    """Agglomerative clustering with the DB-index-selected cut.

    The DB validity curve is sampled at ``sweep_points`` values of k
    (evaluating every cut adds minutes for no change in the argmin region
    the paper's search cares about).  ``k_max`` defaults to 150, the
    regime the paper's DB-controlled search landed in (145 clusters).
    """
    if k_max is None:
        k_max = 150
    distances = euclidean_matrix(vectors)
    linkage = upgma(vectors, distances=distances.copy())
    dendrogram = Dendrogram(linkage, vectors.shape[0])
    db_by_k: dict[int, float] = {}
    labels_by_k: dict[int, np.ndarray] = {}
    upper = min(k_max, vectors.shape[0] - 1)
    step = max(1, (upper - k_min) // max(1, sweep_points - 1))
    for k in range(k_min, upper + 1, step):
        labels = dendrogram.cut_to_k(k)
        actual = len(np.unique(labels))
        if actual in db_by_k:
            continue
        db_by_k[actual] = davies_bouldin(vectors, labels)
        labels_by_k[actual] = labels
    # Among cuts whose validity is within 5% of the best, prefer the
    # finest clustering: token-subsequence signatures need small, tight
    # clusters, and the original system's DB-controlled process likewise
    # landed on a fine partition (145 clusters in Section III-F).
    best_db = min(db_by_k.values())
    best_k = max(
        k for k, value in db_by_k.items() if value <= best_db * 1.05
    )
    return FineGrainedResult(
        labels=labels_by_k[best_k],
        k=best_k,
        db_index=db_by_k[best_k],
        db_by_k=db_by_k,
    )
