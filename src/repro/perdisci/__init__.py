"""Perdisci et al. baseline (Experiment 3): behavioral clustering +
token-subsequence signature generation, adapted to SQLi per Section III-F."""

from repro.perdisci.clustering import (
    NAME_WEIGHT,
    VALUE_WEIGHT,
    FineGrainedResult,
    build_embedding,
    embed,
    fine_grained_clustering,
)
from repro.perdisci.signatures import (
    MERGE_THRESHOLD,
    MIN_CONTENT_LENGTH,
    PerdisciReport,
    PerdisciSystem,
)
from repro.perdisci.token_subsequence import (
    TokenSignature,
    common_token_subsequence,
    tokenize,
)

__all__ = [
    "tokenize",
    "common_token_subsequence",
    "TokenSignature",
    "build_embedding",
    "embed",
    "fine_grained_clustering",
    "FineGrainedResult",
    "VALUE_WEIGHT",
    "NAME_WEIGHT",
    "PerdisciSystem",
    "PerdisciReport",
    "MERGE_THRESHOLD",
    "MIN_CONTENT_LENGTH",
]
