"""Token-subsequence signature generation (Polygraph-style).

Perdisci et al. build, for each cluster of HTTP requests, a signature that
is an ordered sequence of invariant tokens — substrings present in every
member, in the same order — rendered as the regular expression
``tok1.*tok2.*...``.  Section III-F adapts this to SQLi payloads; the
paper's throw-away example of a too-short signature is ``?id=.*``.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9_]+|[^a-z0-9_\s]", re.IGNORECASE)


def tokenize(payload: str) -> list[str]:
    """Split a payload into word and punctuation tokens."""
    return _TOKEN_RE.findall(payload.lower())


def _lcs(a: list[str], b: list[str]) -> list[str]:
    """Longest common subsequence of two token lists (standard DP)."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return []
    lengths = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        row = lengths[i]
        below = lengths[i + 1]
        for j in range(m - 1, -1, -1):
            if a[i] == b[j]:
                row[j] = below[j + 1] + 1
            else:
                row[j] = max(below[j], row[j + 1])
    out: list[str] = []
    i = j = 0
    while i < n and j < m:
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif lengths[i + 1][j] >= lengths[i][j + 1]:
            i += 1
        else:
            j += 1
    return out


def common_token_subsequence(payloads: list[str]) -> list[str]:
    """Tokens common (in order) to every payload: iterated pairwise LCS."""
    if not payloads:
        return []
    current = tokenize(payloads[0])
    for payload in payloads[1:]:
        if not current:
            break
        current = _lcs(current, tokenize(payload))
    return current


class TokenSignature:
    """A compiled token-subsequence signature.

    Attributes:
        tokens: the invariant token sequence.
        pattern: the rendered ``tok1.*tok2...`` expression.
    """

    def __init__(self, tokens: list[str]) -> None:
        self.tokens = list(tokens)
        self.pattern = ".*".join(re.escape(token) for token in self.tokens)
        self._compiled = re.compile(self.pattern, re.IGNORECASE | re.S)

    def __repr__(self) -> str:
        return f"TokenSignature({self.pattern!r})"

    @property
    def content_length(self) -> int:
        """Total literal characters — the 'too short' filter's measure."""
        return sum(len(token) for token in self.tokens)

    def matches(self, payload: str) -> bool:
        """True when the token subsequence occurs in order in *payload*."""
        if not self.tokens:
            return False
        return self._compiled.search(payload.lower()) is not None

    def similarity(self, other: "TokenSignature") -> float:
        """Jaccard similarity of token multisets (merge criterion input)."""
        mine = set(self.tokens)
        theirs = set(other.tokens)
        if not mine and not theirs:
            return 1.0
        union = mine | theirs
        return len(mine & theirs) / len(union) if union else 0.0
