"""Perdisci signature generation: filter → per-cluster signature → merge.

Section III-F, applied to the SQLi corpus: 145 fine-grained clusters were
"reduced ... to 27 after removing clusters according to the presented
technique, i.e., with a single sample or that produce signatures too short
(such as ?id=.*).  At the end of phase 3, cluster merging, 10 signatures
were produced.  To merge different clusters, we chose a threshold of 0.1 as
this meant that two signatures would only be merged if they were nearly
identical."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perdisci.clustering import (
    FineGrainedResult,
    build_embedding,
    embed,
    fine_grained_clustering,
)
from repro.perdisci.token_subsequence import (
    TokenSignature,
    common_token_subsequence,
)

#: Merge when signature distance (1 - similarity) is below this.
MERGE_THRESHOLD = 0.1

#: Minimum literal content of a viable signature, in characters; filters
#: out the paper's ``?id=.*`` degenerates.
MIN_CONTENT_LENGTH = 8


@dataclass
class PerdisciReport:
    """End-to-end bookkeeping for Experiment 3.

    Attributes:
        fine_grained: the clustering stage result.
        clusters_after_filter: cluster count surviving the filter stage.
        signatures: final signature list.
    """

    fine_grained: FineGrainedResult
    clusters_after_filter: int
    signatures: list[TokenSignature] = field(default_factory=list)


class PerdisciSystem:
    """The adapted Perdisci signature generator and matcher.

    Implements the :class:`~repro.ids.engine.Detector` protocol
    (``inspect``), so the baseline mounts on the same
    :class:`~repro.ids.engine.SignatureEngine` as pSigene for the
    Experiment 3 comparison.

    Args:
        max_training: clustering is O(n²); beyond this many payloads a
            seeded subsample is clustered (the original system clusters
            malware corpora of this order).
        merge_threshold: the 0.1 near-identity merge rule.
        min_content_length: the too-short-signature filter.
        seed: subsampling seed.
    """

    name = "perdisci"

    def __init__(
        self,
        *,
        max_training: int = 700,
        merge_threshold: float = MERGE_THRESHOLD,
        min_content_length: int = MIN_CONTENT_LENGTH,
        seed: int = 0,
    ) -> None:
        self.max_training = max_training
        self.merge_threshold = merge_threshold
        self.min_content_length = min_content_length
        self.seed = seed
        self.signatures: list[TokenSignature] = []
        self._param_names: set[str] = set()

    # -- training --------------------------------------------------------------

    def fit(self, payloads: list[str]) -> PerdisciReport:
        """Run fine-grained clustering, filtering, and merging."""
        if len(payloads) < 4:
            raise ValueError("need at least 4 payloads")
        rng = np.random.default_rng(self.seed)
        if len(payloads) > self.max_training:
            picked = rng.choice(
                len(payloads), self.max_training, replace=False
            )
            training = [payloads[i] for i in sorted(picked)]
        else:
            training = list(payloads)
        # Normalize before embedding and token extraction: encoding
        # variants of one attack must land in one cluster for the common
        # token subsequence to survive.  (Matching normalizes too.)
        from repro.normalize import normalize

        training = [normalize(p) for p in training]

        embedding = build_embedding(training)
        vectors = embed(training, embedding)
        fine = fine_grained_clustering(vectors)
        self._param_names = set(embedding.name_index)

        # Filter: drop singletons and clusters with degenerate signatures.
        survivors: list[tuple[TokenSignature, list[int]]] = []
        for label in np.unique(fine.labels):
            members = np.nonzero(fine.labels == label)[0]
            if members.size < 2:
                continue
            tokens = common_token_subsequence(
                [training[i] for i in members]
            )
            signature = TokenSignature(tokens)
            if self._degenerate(signature):
                continue
            survivors.append((signature, [int(i) for i in members]))

        merged = self._merge([s for s, _ in survivors], training, survivors)
        self.signatures = merged
        return PerdisciReport(
            fine_grained=fine,
            clusters_after_filter=len(survivors),
            signatures=merged,
        )

    def _degenerate(self, signature: TokenSignature) -> bool:
        """The paper's ``?id=.*`` filter: too little content, or nothing
        beyond parameter names and query punctuation.

        A viable token-subsequence signature needs at least two word-like
        tokens that are not parameter names — pure punctuation skeletons
        (``=.*'.*-.*-``) match half the web.
        """
        if signature.content_length < self.min_content_length:
            return True
        substantive = [
            t for t in signature.tokens
            if len(t) >= 3 and t not in self._param_names
        ]
        return len(substantive) < 2

    def _content_tokens(self, signature: TokenSignature) -> set[str]:
        """Tokens that carry attack content (names and '='/'&' excluded) —
        the alphabet the near-identity merge compares on, so that two
        clusters differing only in the injected parameter's name merge."""
        return {
            t for t in signature.tokens
            if t not in self._param_names and t not in {"=", "&"}
        }

    def _merge(
        self,
        signatures: list[TokenSignature],
        training: list[str],
        survivors: list[tuple[TokenSignature, list[int]]],
    ) -> list[TokenSignature]:
        """Iteratively merge nearly identical signatures (distance < 0.1)."""
        groups: list[list[int]] = [list(m) for _, m in survivors]
        sigs = list(signatures)
        changed = True
        while changed and len(sigs) > 1:
            changed = False
            for i in range(len(sigs)):
                for j in range(i + 1, len(sigs)):
                    mine = self._content_tokens(sigs[i])
                    theirs = self._content_tokens(sigs[j])
                    union = mine | theirs
                    similarity = (
                        len(mine & theirs) / len(union) if union else 1.0
                    )
                    if 1.0 - similarity < self.merge_threshold:
                        members = groups[i] + groups[j]
                        tokens = common_token_subsequence(
                            [training[m] for m in members]
                        )
                        candidate = TokenSignature(tokens)
                        if self._degenerate(candidate):
                            continue
                        sigs[i] = candidate
                        groups[i] = members
                        del sigs[j]
                        del groups[j]
                        changed = True
                        break
                if changed:
                    break
        return sigs

    # -- matching ----------------------------------------------------------------

    def inspect(self, payload: str):
        """Detector-protocol verdict on one payload.

        Token signatures are deterministic — matched or not — so the
        score is 0/1 and ``matched_sids`` lists the (1-based) positions
        of the signatures whose subsequence occurred in order.
        """
        from repro.ids.rules import Detection
        from repro.normalize import normalize

        normalized = normalize(payload)
        fired = [
            number
            for number, signature in enumerate(self.signatures, start=1)
            if signature.matches(normalized)
        ]
        return Detection(
            alert=bool(fired),
            score=1.0 if fired else 0.0,
            matched_sids=fired,
        )

    def matches(self, payload: str) -> bool:
        """True when any signature's token subsequence occurs in order
        in the normalized payload."""
        return self.inspect(payload).alert
