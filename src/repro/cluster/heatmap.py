"""Figure 2 substrate: standardized heatmap data and renderings.

The paper's Figure 2 is a heatmap of the reordered 30,000 × 159 matrix with
dendrograms on both axes; values are column z-scores (black ≈ mean, red
high, green low).  This module produces (a) the reordered z-score matrix
with both leaf orders — the exact data behind the figure — and (b) two
renderings: a coarse ANSI/text heatmap for terminals and logs, and a PPM
image writer with the red/black/green colormap for pixel output, neither of
which needs a plotting library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.bicluster import BiclusteringResult
from repro.cluster.dendrogram import Dendrogram
from repro.cluster.linkage import upgma


@dataclass
class HeatmapData:
    """The data behind Figure 2.

    Attributes:
        z: standardized matrix, rows/columns already reordered.
        row_order: original row index of each displayed row.
        column_order: original column index of each displayed column.
        row_cluster_of: bicluster number of each displayed row (0 = none).
    """

    z: np.ndarray
    row_order: np.ndarray
    column_order: np.ndarray
    row_cluster_of: np.ndarray


def standardize_columns(counts: np.ndarray) -> np.ndarray:
    """Column z-scores, constant columns mapping to zero (the mean color)."""
    values = np.asarray(counts, dtype=np.float64)
    mean = values.mean(axis=0)
    std = values.std(axis=0)
    safe = np.where(std == 0, 1.0, std)
    z = (values - mean) / safe
    z[:, std == 0] = 0.0
    return z


def build_heatmap(
    counts: np.ndarray, result: BiclusteringResult
) -> HeatmapData:
    """Reorder the standardized matrix by both dendrograms.

    Row order comes from the sample dendrogram (prototype leaf order
    expanded back to original rows); column order from a fresh UPGMA pass
    over feature profiles, as the two-way method prescribes.
    """
    counts = np.asarray(counts, dtype=np.float64)
    z = standardize_columns(counts)

    proto_order = result.sample_dendrogram.leaf_order()
    rank = {proto: position for position, proto in enumerate(proto_order)}
    row_keys = np.array([rank[p] for p in result.prototype_inverse])
    row_order = np.argsort(row_keys, kind="stable")

    if counts.shape[1] >= 2:
        feature_linkage = upgma(z.T)
        feature_dendrogram = Dendrogram(feature_linkage, counts.shape[1])
        column_order = np.array(feature_dendrogram.leaf_order())
    else:
        column_order = np.arange(counts.shape[1])

    cluster_of = np.zeros(counts.shape[0], dtype=int)
    for bicluster in result.biclusters:
        cluster_of[bicluster.sample_indices] = bicluster.index

    return HeatmapData(
        z=z[np.ix_(row_order, column_order)],
        row_order=row_order,
        column_order=column_order,
        row_cluster_of=cluster_of[row_order],
    )


_TEXT_RAMP = " .:-=+*#%@"


def render_text(
    heatmap: HeatmapData, *, max_rows: int = 40, max_cols: int = 80
) -> str:
    """Coarse text rendering (block-averaged) of the heatmap."""
    z = heatmap.z
    rows = min(max_rows, z.shape[0])
    cols = min(max_cols, z.shape[1])
    if rows == 0 or cols == 0:
        return ""
    row_edges = np.linspace(0, z.shape[0], rows + 1).astype(int)
    col_edges = np.linspace(0, z.shape[1], cols + 1).astype(int)
    lines: list[str] = []
    for r in range(rows):
        block_rows = z[row_edges[r]:max(row_edges[r + 1], row_edges[r] + 1)]
        chars: list[str] = []
        for c in range(cols):
            block = block_rows[
                :, col_edges[c]:max(col_edges[c + 1], col_edges[c] + 1)
            ]
            intensity = np.clip((block.mean() + 2.0) / 4.0, 0.0, 0.999)
            chars.append(_TEXT_RAMP[int(intensity * len(_TEXT_RAMP))])
        cluster = heatmap.row_cluster_of[
            row_edges[r]:max(row_edges[r + 1], row_edges[r] + 1)
        ]
        dominant = int(np.bincount(cluster).argmax()) if cluster.size else 0
        label = f" |{dominant:2d}" if dominant else " | ."
        lines.append("".join(chars) + label)
    return "\n".join(lines)


def render_ppm(heatmap: HeatmapData, path: str) -> None:
    """Write the heatmap as a binary PPM image (red/black/green colormap)."""
    z = np.clip(heatmap.z, -2.5, 2.5) / 2.5
    height, width = z.shape
    red = np.where(z > 0, (z * 255), 0).astype(np.uint8)
    green = np.where(z < 0, (-z * 255), 0).astype(np.uint8)
    blue = np.zeros_like(red)
    pixels = np.stack([red, green, blue], axis=-1)
    header = f"P6\n{width} {height}\n255\n".encode("ascii")
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(pixels.tobytes())
