"""Dendrogram utilities: cutting, leaf ordering, cophenetic validation.

Section II-C: "The UPGMA algorithm produces a hierarchical tree, usually
presented as a dendrogram, from which clusters can be created" and "we also
calculated the cophenetic correlation coefficient for each dendrogram ...
we found the cophenetic correlation coefficient value of 0.92".
"""

from __future__ import annotations

import numpy as np


class Dendrogram:
    """A parsed linkage matrix with query operations.

    Args:
        linkage: ``(n-1, 4)`` UPGMA linkage matrix.
        n_leaves: number of original points.
    """

    def __init__(self, linkage: np.ndarray, n_leaves: int) -> None:
        linkage = np.asarray(linkage, dtype=np.float64)
        if linkage.shape != (n_leaves - 1, 4):
            raise ValueError(
                f"linkage shape {linkage.shape} does not match "
                f"{n_leaves} leaves"
            )
        self.linkage = linkage
        self.n_leaves = n_leaves
        self._members_cache: list[list[int]] | None = None

    # -- structure ---------------------------------------------------------

    def _members(self) -> list[list[int]]:
        """Leaf membership of every internal cluster id ``n..2n-2``."""
        if self._members_cache is not None:
            return self._members_cache
        members: list[list[int]] = []
        for step in range(self.n_leaves - 1):
            merged: list[int] = []
            for side in (0, 1):
                cid = int(self.linkage[step, side])
                if cid < self.n_leaves:
                    merged.append(cid)
                else:
                    merged.extend(members[cid - self.n_leaves])
            members.append(merged)
        self._members_cache = members
        return members

    def members_of(self, cluster_id: int) -> list[int]:
        """Leaf indices under *cluster_id* (a leaf id returns itself)."""
        if cluster_id < self.n_leaves:
            return [cluster_id]
        return list(self._members()[cluster_id - self.n_leaves])

    def leaf_order(self) -> list[int]:
        """Left-to-right leaf ordering — the heatmap row/column order."""
        if self.n_leaves == 1:
            return [0]

        order: list[int] = []
        stack: list[int] = [2 * self.n_leaves - 2]
        while stack:
            cid = stack.pop()
            if cid < self.n_leaves:
                order.append(cid)
                continue
            step = cid - self.n_leaves
            left, right = int(self.linkage[step, 0]), int(self.linkage[step, 1])
            stack.append(right)
            stack.append(left)
        return order

    # -- cutting -----------------------------------------------------------

    def cut_at_height(self, height: float) -> np.ndarray:
        """Flat cluster labels after cutting all merges above *height*.

        Returns an ``(n_leaves,)`` integer label array; labels are dense,
        ordered by first leaf occurrence.
        """
        parent = np.arange(self.n_leaves)

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        members = self._members()
        for step in range(self.n_leaves - 1):
            if self.linkage[step, 2] <= height:
                merged = members[step]
                root = find(merged[0])
                for leaf in merged[1:]:
                    parent[find(leaf)] = root
        return _dense_labels(np.array([find(i) for i in range(self.n_leaves)]))

    def cut_to_k(self, k: int) -> np.ndarray:
        """Flat labels for exactly *k* clusters (undoing the last merges)."""
        if not 1 <= k <= self.n_leaves:
            raise ValueError(f"k must be in [1, {self.n_leaves}]")
        if k == 1:
            return np.zeros(self.n_leaves, dtype=int)
        # Cut below the (k-1)-th highest merge.
        heights = np.sort(self.linkage[:, 2])
        threshold = heights[-(k - 1)]
        labels = self.cut_at_height(np.nextafter(threshold, -np.inf))
        return labels

    # -- cophenetic validation ----------------------------------------------

    def cophenetic_matrix(self) -> np.ndarray:
        """Full ``(n, n)`` matrix of cophenetic distances.

        The cophenetic distance between two leaves is the height of the
        merge that first placed them in one cluster.
        """
        n = self.n_leaves
        coph = np.zeros((n, n), dtype=np.float64)
        component: dict[int, list[int]] = {i: [i] for i in range(n)}
        next_id = n
        for step in range(n - 1):
            left = int(self.linkage[step, 0])
            right = int(self.linkage[step, 1])
            height = self.linkage[step, 2]
            left_members = component.pop(left)
            right_members = component.pop(right)
            rows = np.array(left_members)[:, None]
            cols = np.array(right_members)[None, :]
            coph[rows, cols] = height
            coph[cols.T, rows.T] = height
            component[next_id] = left_members + right_members
            next_id += 1
        return coph

    def cophenetic_correlation(self, original: np.ndarray) -> float:
        """Pearson correlation between cophenetic and original distances.

        Args:
            original: the ``(n, n)`` distance matrix the tree was built from.
        """
        coph = self.cophenetic_matrix()
        index_upper = np.triu_indices(self.n_leaves, k=1)
        x = np.asarray(original)[index_upper]
        y = coph[index_upper]
        x_centered = x - x.mean()
        y_centered = y - y.mean()
        denom = np.sqrt((x_centered ** 2).sum() * (y_centered ** 2).sum())
        if denom == 0:
            return 1.0
        return float((x_centered * y_centered).sum() / denom)


def _dense_labels(raw: np.ndarray) -> np.ndarray:
    """Relabel arbitrary ints to 0..k-1 by first occurrence."""
    mapping: dict[int, int] = {}
    out = np.empty_like(raw)
    for index, value in enumerate(raw):
        if value not in mapping:
            mapping[value] = len(mapping)
        out[index] = mapping[value]
    return out
