"""Biclustering substrate: UPGMA HAC, dendrograms, selection, heatmap."""

from repro.cluster.bicluster import (
    BLACK_HOLE_ROW_FEATURES,
    BLACK_HOLE_ROW_FRACTION,
    BLACK_HOLE_ZERO_FRACTION,
    MIN_SAMPLE_FRACTION,
    Bicluster,
    Biclusterer,
    BiclusteringResult,
    is_black_hole_block,
)
from repro.cluster.dendrogram import Dendrogram
from repro.cluster.distance import (
    euclidean_condensed,
    euclidean_matrix,
    unique_rows_with_weights,
)
from repro.cluster.heatmap import (
    HeatmapData,
    build_heatmap,
    render_ppm,
    render_text,
    standardize_columns,
)
from repro.cluster.linkage import upgma, validate_linkage
from repro.cluster.validity import davies_bouldin, silhouette_mean

__all__ = [
    "euclidean_matrix",
    "euclidean_condensed",
    "unique_rows_with_weights",
    "upgma",
    "validate_linkage",
    "Dendrogram",
    "Bicluster",
    "Biclusterer",
    "BiclusteringResult",
    "MIN_SAMPLE_FRACTION",
    "BLACK_HOLE_ZERO_FRACTION",
    "BLACK_HOLE_ROW_FEATURES",
    "BLACK_HOLE_ROW_FRACTION",
    "is_black_hole_block",
    "HeatmapData",
    "build_heatmap",
    "render_text",
    "render_ppm",
    "standardize_columns",
    "davies_bouldin",
    "silhouette_mean",
]
