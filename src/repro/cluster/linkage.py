"""Hierarchical agglomerative clustering with UPGMA linkage, from scratch.

Section II-C: "We use a simple approach to achieve the biclustering
technique, performing a two-way hierarchical agglomerative clustering (HAC)
algorithm, using the Unweighted Pair Group Method with Arithmetic Mean
(UPGMA). ... At each step, the nearest two clusters are combined into a
higher-level cluster.  The distance between any two clusters A and B is
taken to be the average of all distances between pairs of objects x in A
and y in B."

The implementation supports *weighted points* (a point standing for ``w``
identical samples), which is what lets the pipeline run UPGMA over 30,000
samples: duplicates collapse to prototypes first, and the average-linkage
update — the Lance–Williams recurrence
``d(k, i∪j) = (n_i·d(k,i) + n_j·d(k,j)) / (n_i + n_j)`` — uses the summed
weights, making the result identical to UPGMA over the uncollapsed matrix.

Output is a scipy-compatible ``Z`` linkage matrix, so results can be
cross-checked against :func:`scipy.cluster.hierarchy.linkage` in tests.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import euclidean_matrix


def upgma(
    data: np.ndarray,
    *,
    weights: np.ndarray | None = None,
    distances: np.ndarray | None = None,
) -> np.ndarray:
    """UPGMA linkage of the rows of *data*.

    Args:
        data: ``(n, d)`` points (ignored when *distances* is given, except
            for its row count).
        weights: per-point multiplicities; defaults to all ones.
        distances: optional precomputed ``(n, n)`` distance matrix.

    Returns:
        ``(n-1, 4)`` linkage matrix: columns are the two merged cluster ids
        (original points are ``0..n-1``, the cluster created at step ``t``
        is ``n+t``), the merge distance, and the merged cluster's total
        weight.

    Raises:
        ValueError: on fewer than two points or mismatched shapes.
    """
    if distances is None:
        distances = euclidean_matrix(np.asarray(data, dtype=np.float64))
    else:
        distances = np.array(distances, dtype=np.float64, copy=True)
        if distances.shape[0] != distances.shape[1]:
            raise ValueError("distance matrix must be square")
    n = distances.shape[0]
    if n < 2:
        raise ValueError("need at least two points to cluster")
    if weights is None:
        sizes = np.ones(n, dtype=np.float64)
    else:
        sizes = np.asarray(weights, dtype=np.float64).copy()
        if sizes.shape != (n,):
            raise ValueError("weights must have one entry per point")
        if (sizes <= 0).any():
            raise ValueError("weights must be positive")

    # Working matrix: np.inf marks the diagonal and retired clusters.
    work = distances
    np.fill_diagonal(work, np.inf)
    active = np.ones(n, dtype=bool)
    cluster_ids = np.arange(n)  # current linkage id of each slot
    linkage = np.zeros((n - 1, 4), dtype=np.float64)

    for step in range(n - 1):
        flat_index = int(np.argmin(work))
        i, j = divmod(flat_index, n)
        if not (active[i] and active[j]) or not np.isfinite(work[i, j]):
            raise AssertionError("linkage invariant violated")
        if cluster_ids[i] > cluster_ids[j]:
            i, j = j, i
        merge_distance = work[i, j]
        size_i, size_j = sizes[i], sizes[j]
        merged_size = size_i + size_j

        linkage[step, 0] = cluster_ids[i]
        linkage[step, 1] = cluster_ids[j]
        linkage[step, 2] = merge_distance
        linkage[step, 3] = merged_size

        # Lance–Williams UPGMA update into slot i; retire slot j.
        new_row = (size_i * work[i, :] + size_j * work[j, :]) / merged_size
        work[i, :] = new_row
        work[:, i] = new_row
        work[i, i] = np.inf
        work[j, :] = np.inf
        work[:, j] = np.inf
        active[j] = False
        sizes[i] = merged_size
        cluster_ids[i] = n + step

    return linkage


def validate_linkage(linkage: np.ndarray, n: int) -> None:
    """Sanity-check a linkage matrix; raises ``ValueError`` on violations.

    Checks shape, id ranges, monotone non-negative heights (UPGMA is
    monotone), and that the final cluster contains total weight equal to the
    sum of leaf weights implied by the merges.
    """
    linkage = np.asarray(linkage)
    if linkage.shape != (n - 1, 4):
        raise ValueError(f"expected shape {(n - 1, 4)}, got {linkage.shape}")
    if (linkage[:, 2] < 0).any():
        raise ValueError("negative merge height")
    if (np.diff(linkage[:, 2]) < -1e-9).any():
        raise ValueError("merge heights are not monotone")
    for step in range(n - 1):
        left, right = int(linkage[step, 0]), int(linkage[step, 1])
        limit = n + step
        if not (0 <= left < limit and 0 <= right < limit):
            raise ValueError(f"merge {step} references invalid cluster id")
        if left == right:
            raise ValueError(f"merge {step} merges a cluster with itself")
