"""Two-way biclustering over the sample-by-feature matrix.

Section II-C: "The way biclustering worked is first it did a clustering of
the samples and then within each cluster, it clustered by the features.
Thus, it identified what were the discriminating features for each
cluster."  Selection follows Section III-D: "We visually identified eleven
biclusters from the heatmap using a rule of 5%.  That is, for any bicluster
we selected ... it would have to include at least 5% of all samples in the
training dataset" and black holes — biclusters whose sample rows are >99%
zeros across the features — produce no signature.

The "visual identification" step is necessarily replaced by an algorithmic
equivalent: the sample dendrogram is cut at the finest level at which every
kept cluster still holds ≥5% of the samples (samples falling outside kept
clusters are the uncovered noise the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.dendrogram import Dendrogram
from repro.cluster.distance import euclidean_matrix, unique_rows_with_weights
from repro.cluster.linkage import upgma
from repro.obs import trace
from repro.obs.registry import get_registry

#: Paper constants.  The 5% selection rule is Section III-D verbatim.
#: Black holes are "biclusters composed of vectors of mostly zeroes"; the
#: paper quantifies that as >99% zeros over its 159 hand-curated features.
#: Our active catalog retains generic symbol features (quotes, equals,
#: digits) that even a bare probe like ``id=891'`` matches, so the
#: equivalent test here is row-based: a vector is "mostly zeroes" when it
#: matches at most ``BLACK_HOLE_ROW_FEATURES`` features (bare probes match
#: 3–5; the sparsest real attack rows match 7+), and a bicluster is a black
#: hole when at least ``BLACK_HOLE_ROW_FRACTION`` of its rows are such
#: vectors.
MIN_SAMPLE_FRACTION = 0.05
BLACK_HOLE_ROW_FEATURES = 5
BLACK_HOLE_ROW_FRACTION = 0.60

#: Retained for the ablation benches: the paper's literal all-cells rule.
BLACK_HOLE_ZERO_FRACTION = 0.94


def is_black_hole_block(
    block: np.ndarray,
    *,
    row_features: int = BLACK_HOLE_ROW_FEATURES,
    row_fraction: float = BLACK_HOLE_ROW_FRACTION,
) -> bool:
    """The mostly-zero-vectors test over one bicluster's sample rows."""
    block = np.asarray(block)
    if block.size == 0:
        return True
    mostly_zero = (block > 0).sum(axis=1) <= row_features
    return bool(mostly_zero.mean() >= row_fraction)


@dataclass
class Bicluster:
    """One selected bicluster.

    Attributes:
        index: 1-based bicluster number (paper numbers them 1..11).
        sample_indices: row indices (into the training matrix) it covers.
        feature_indices: the discriminating feature columns.
        is_black_hole: true when the block is >99% zeros (no signature).
    """

    index: int
    sample_indices: np.ndarray
    feature_indices: np.ndarray
    is_black_hole: bool

    @property
    def n_samples(self) -> int:
        """Number of samples in the bicluster (Table VI column 2)."""
        return int(self.sample_indices.size)

    @property
    def n_features(self) -> int:
        """Number of discriminating features (Table VI column 3)."""
        return int(self.feature_indices.size)


@dataclass
class BiclusteringResult:
    """Everything downstream consumers need.

    Attributes:
        biclusters: the selected biclusters, largest first.
        sample_dendrogram: dendrogram over *prototype* rows.
        prototype_inverse: maps each original row to its prototype leaf.
        prototype_weights: multiplicity of each prototype.
        cophenetic_correlation: tree-fidelity measure (paper: 0.92).
        uncovered: original-row indices not in any selected bicluster.
    """

    biclusters: list[Bicluster]
    sample_dendrogram: Dendrogram
    prototype_inverse: np.ndarray
    prototype_weights: np.ndarray
    cophenetic_correlation: float
    uncovered: np.ndarray

    def active(self) -> list[Bicluster]:
        """Biclusters that generate signatures (black holes excluded)."""
        return [b for b in self.biclusters if not b.is_black_hole]


class Biclusterer:
    """Runs the paper's two-way HAC biclustering.

    Args:
        min_fraction: the 5% selection rule.
        black_hole_zero_fraction: the >99% zero rule.
        max_biclusters: upper bound on how many clusters selection may keep
            (the paper kept eleven).
        black_hole_mode: ``rows`` (default) uses the mostly-zero-vectors
            test of :func:`is_black_hole_block`; ``cells`` uses the paper's
            literal all-cells fraction against
            ``black_hole_zero_fraction`` (kept for the ablation bench).
        feature_presence_threshold: a feature is a *candidate* for a
            cluster's feature set when it appears in at least this fraction
            of the cluster's samples.
        feature_groups: number of feature-side HAC groups evaluated per
            sample cluster.
        transform: pre-distance row transform: ``log1p`` (default — damps
            the dominance of high-count symbol features), ``raw``, or
            ``binary``.
        split_gap: optional separation requirement for the adaptive cut:
            a parent merge must exceed ``split_gap`` times its children's
            heights to count as a block boundary.  The default 1.0
            disables the test — subdivision continues while both children
            satisfy the 5% rule, and selection keeps the
            ``max_biclusters`` largest blocks, matching the paper's count
            of eleven.
        row_normalize: L2-normalize rows before the Euclidean distance.
            Euclidean distance between unit vectors is a monotone function
            of cosine similarity, so the linkage is still built on
            "Euclidean pairwise distance" as Section II-C states, but the
            block structure reflects feature *profiles* rather than payload
            length — which is what the paper's heatmap exhibits.
    """

    def __init__(
        self,
        *,
        min_fraction: float = MIN_SAMPLE_FRACTION,
        black_hole_mode: str = "rows",
        black_hole_zero_fraction: float = BLACK_HOLE_ZERO_FRACTION,
        max_biclusters: int = 11,
        feature_presence_threshold: float = 0.30,
        feature_groups: int = 4,
        transform: str = "log1p",
        row_normalize: bool = True,
        split_gap: float = 1.0,
    ) -> None:
        if not 0 < min_fraction < 1:
            raise ValueError("min_fraction must be in (0, 1)")
        if transform not in ("log1p", "raw", "binary"):
            raise ValueError(f"unknown transform {transform!r}")
        if black_hole_mode not in ("rows", "cells"):
            raise ValueError(f"unknown black_hole_mode {black_hole_mode!r}")
        self.min_fraction = min_fraction
        self.black_hole_mode = black_hole_mode
        self.black_hole_zero_fraction = black_hole_zero_fraction
        self.max_biclusters = max_biclusters
        self.feature_presence_threshold = feature_presence_threshold
        self.feature_groups = feature_groups
        self.transform = transform
        self.row_normalize = row_normalize
        if split_gap < 1.0:
            raise ValueError("split_gap must be >= 1.0")
        self.split_gap = split_gap

    def transform_rows(self, counts: np.ndarray) -> np.ndarray:
        """Row transform applied before the pairwise distances (see class docs)."""
        if self.transform == "log1p":
            values = np.log1p(counts)
        elif self.transform == "binary":
            values = (counts > 0).astype(np.float64)
        else:
            values = counts.astype(np.float64)
        if self.row_normalize:
            norms = np.linalg.norm(values, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            values = values / norms
        return values

    def is_black_hole(self, block: np.ndarray) -> bool:
        """Black-hole test under the configured mode."""
        if self.black_hole_mode == "cells":
            return float(np.mean(np.asarray(block) == 0)) >= (
                self.black_hole_zero_fraction
            )
        return is_black_hole_block(block)

    # -- sample-side clustering ---------------------------------------------

    def fit(self, counts: np.ndarray) -> BiclusteringResult:
        """Bicluster a ``(n_samples, n_features)`` count matrix."""
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 2 or counts.shape[0] < 4:
            raise ValueError("need a 2-D matrix with at least 4 samples")
        transformed = self.transform_rows(counts)
        prototypes, weights, inverse = unique_rows_with_weights(transformed)
        if prototypes.shape[0] < 2:
            raise ValueError("all samples identical; nothing to cluster")
        distances = euclidean_matrix(prototypes)
        # UPGMA is the quadratic heart of phase 3 — it gets its own span
        # and a registry histogram so scaling work can watch it directly.
        with trace.span(
            "cluster.linkage", prototypes=int(prototypes.shape[0]),
        ) as linkage_span:
            linkage = upgma(
                prototypes, weights=weights, distances=distances.copy()
            )
        get_registry().histogram(
            "repro_cluster_linkage_seconds",
            "Wall time of one UPGMA linkage build.",
        ).observe(linkage_span.wall_s)
        dendrogram = Dendrogram(linkage, prototypes.shape[0])
        cophenetic = dendrogram.cophenetic_correlation(distances)

        labels = self._select_cut(dendrogram, weights)
        total_weight = weights.sum()
        biclusters: list[Bicluster] = []
        covered = np.zeros(counts.shape[0], dtype=bool)
        cluster_order = self._clusters_by_size(labels, weights)
        for number, cluster_label in enumerate(cluster_order, start=1):
            if len(biclusters) >= self.max_biclusters:
                break
            proto_mask = labels == cluster_label
            weight = weights[proto_mask].sum()
            if weight / total_weight < self.min_fraction:
                continue
            sample_mask = proto_mask[inverse]
            sample_indices = np.nonzero(sample_mask)[0]
            sub = counts[sample_indices, :]
            feature_indices = self._feature_side(sub)
            biclusters.append(
                Bicluster(
                    index=number,
                    sample_indices=sample_indices,
                    feature_indices=feature_indices,
                    is_black_hole=self.is_black_hole(sub),
                )
            )
            covered[sample_indices] = True

        return BiclusteringResult(
            biclusters=biclusters,
            sample_dendrogram=dendrogram,
            prototype_inverse=inverse,
            prototype_weights=weights,
            cophenetic_correlation=cophenetic,
            uncovered=np.nonzero(~covered)[0],
        )

    def _select_cut(
        self, dendrogram: Dendrogram, weights: np.ndarray
    ) -> np.ndarray:
        """Per-branch adaptive cut: the stand-in for visual identification.

        A single global cut height cannot reproduce what a human reading
        the heatmap does — blocks sit at different dendrogram depths.  The
        tree is walked top-down instead:

        * a node splits when both children hold ≥``min_fraction`` of the
          weight *and* the merge is a real boundary — its height clearly
          exceeds the children's own internal heights (``split_gap``);
        * a thin fringe child (<5%) is dropped as uncovered noise and the
          walk continues into the heavy child — thin stripes never stop
          the subdivision of a large block;
        * otherwise the node is a final bicluster.

        Every final cluster satisfies the 5% rule; homogeneous blocks stay
        whole because no internal merge clears the gap test.
        """
        n = dendrogram.n_leaves
        total = weights.sum()
        min_weight = self.min_fraction * total
        split_gap = self.split_gap

        def subtree_weight(cid: int) -> float:
            return float(weights[dendrogram.members_of(cid)].sum())

        def height(cid: int) -> float:
            if cid < n:
                return 0.0
            return float(dendrogram.linkage[cid - n, 2])

        final: list[int] = []
        stack = [2 * n - 2]
        while stack:
            cid = stack.pop()
            if cid < n:
                final.append(cid)
                continue
            step = cid - n
            left = int(dendrogram.linkage[step, 0])
            right = int(dendrogram.linkage[step, 1])
            weight_left = subtree_weight(left)
            weight_right = subtree_weight(right)
            child_height = max(height(left), height(right))
            separated = height(cid) > split_gap * child_height
            if separated and weight_left >= min_weight and (
                weight_right >= min_weight
            ):
                stack.append(left)
                stack.append(right)
            elif weight_left >= min_weight > weight_right:
                stack.append(left)  # drop the thin right fringe
            elif weight_right >= min_weight > weight_left:
                stack.append(right)
            else:
                final.append(cid)

        labels = np.full(n, -1, dtype=int)
        for cluster_number, cid in enumerate(final):
            labels[dendrogram.members_of(cid)] = cluster_number
        # Uncovered fringes get their own throwaway labels so downstream
        # bincounts stay valid; they never reach the 5% bar.
        fringe = np.nonzero(labels < 0)[0]
        labels[fringe] = len(final) + np.arange(fringe.size)
        return labels

    @staticmethod
    def _clusters_by_size(
        labels: np.ndarray, weights: np.ndarray
    ) -> list[int]:
        sizes = np.bincount(labels, weights=weights)
        return list(np.argsort(-sizes))

    # -- feature-side clustering ---------------------------------------------

    def _feature_side(self, sub: np.ndarray) -> np.ndarray:
        """Discriminating features of one sample cluster.

        Columns active in at least ``feature_presence_threshold`` of the
        cluster's rows are candidates; HAC over the candidates' column
        profiles groups correlated features, and groups whose mean presence
        is high are kept.  This is the "within each cluster, it clustered by
        the features" step.
        """
        presence = (sub > 0).mean(axis=0)
        candidates = np.nonzero(presence >= self.feature_presence_threshold)[0]
        if candidates.size == 0:
            # Black-hole-like cluster: fall back to the most present columns.
            candidates = np.argsort(-presence)[: min(8, sub.shape[1])]
            candidates = candidates[presence[candidates] > 0]
            return np.sort(candidates)
        if candidates.size <= 3:
            return np.sort(candidates)

        profiles = sub[:, candidates].T.astype(np.float64)
        # Standardize profiles so grouping reflects co-occurrence shape,
        # not raw magnitude.
        mean = profiles.mean(axis=1, keepdims=True)
        std = profiles.std(axis=1, keepdims=True)
        std[std == 0] = 1.0
        profiles = (profiles - mean) / std
        linkage = upgma(profiles)
        dendrogram = Dendrogram(linkage, candidates.size)
        groups = min(self.feature_groups, candidates.size)
        group_labels = dendrogram.cut_to_k(groups)

        kept: list[int] = []
        for group in np.unique(group_labels):
            group_columns = candidates[group_labels == group]
            group_presence = (sub[:, group_columns] > 0).mean()
            if group_presence >= self.feature_presence_threshold:
                kept.extend(int(c) for c in group_columns)
        if not kept:
            kept = [int(c) for c in candidates]
        return np.array(sorted(kept), dtype=int)
