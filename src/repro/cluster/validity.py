"""Cluster validity indices.

Two consumers: the pSigene pipeline validates its dendrograms with the
cophenetic correlation coefficient (implemented on
:class:`~repro.cluster.dendrogram.Dendrogram`), and the Perdisci baseline
(Experiment 3) controls its fine-grained clustering with the Davies–Bouldin
validity index — "Controlling the clustering process by using the DB
validity index (Section 3 of [29])".
"""

from __future__ import annotations

import numpy as np


def davies_bouldin(data: np.ndarray, labels: np.ndarray) -> float:
    """Davies–Bouldin index of a flat clustering (lower is better).

    ``DB = (1/k) Σ_i max_{j≠i} (σ_i + σ_j) / d(c_i, c_j)`` where ``σ`` is
    the mean within-cluster distance to the centroid and ``d`` the distance
    between centroids.  Singleton-only clusterings return 0 (perfectly
    compact); a clustering with one cluster returns ``inf`` conventionally,
    since the index is undefined there and the Perdisci search must not
    stop on it.
    """
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    k = unique.size
    if k < 2:
        return float("inf")
    centroids = np.vstack([data[labels == u].mean(axis=0) for u in unique])
    scatter = np.array([
        np.linalg.norm(data[labels == u] - centroids[i], axis=1).mean()
        if (labels == u).sum() > 1 else 0.0
        for i, u in enumerate(unique)
    ])
    separation = np.linalg.norm(
        centroids[:, None, :] - centroids[None, :, :], axis=2
    )
    ratios = np.full((k, k), -np.inf)
    for i in range(k):
        for j in range(k):
            if i == j:
                continue
            if separation[i, j] == 0:
                ratios[i, j] = np.inf
            else:
                ratios[i, j] = (scatter[i] + scatter[j]) / separation[i, j]
    return float(ratios.max(axis=1).mean())


def silhouette_mean(data: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient (used in ablation benches).

    Returns 0 for degenerate clusterings (k < 2 or all-singleton).
    """
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if unique.size < 2 or unique.size == data.shape[0]:
        return 0.0
    from repro.cluster.distance import euclidean_matrix

    distances = euclidean_matrix(data)
    scores: list[float] = []
    for index in range(data.shape[0]):
        own = labels[index]
        own_mask = labels == own
        if own_mask.sum() <= 1:
            scores.append(0.0)
            continue
        a = distances[index, own_mask & (np.arange(len(labels)) != index)].mean()
        b = min(
            distances[index, labels == other].mean()
            for other in unique
            if other != own
        )
        denom = max(a, b)
        scores.append(0.0 if denom == 0 else (b - a) / denom)
    return float(np.mean(scores))
