"""Pairwise distance computation for the clustering substrate."""

from __future__ import annotations

import numpy as np


def euclidean_matrix(data: np.ndarray) -> np.ndarray:
    """Full symmetric Euclidean distance matrix of the rows of *data*.

    Computed via the expanded form ``|x|² + |y|² - 2x·y`` (one matmul rather
    than an O(n²·d) Python loop); tiny negative values from cancellation are
    clamped before the square root.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be 2-D (rows are points)")
    squared_norms = np.einsum("ij,ij->i", data, data)
    gram = data @ data.T
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * gram
    np.maximum(squared, 0.0, out=squared)
    # Cancellation leaves identical rows with squared distances of order
    # eps·|x|² instead of exactly zero; snap those to zero so duplicate
    # rows merge at height 0 (the weighted-UPGMA equivalence depends on
    # it).
    scale = float(squared_norms.max(initial=0.0))
    if scale > 0:
        squared[squared < 1e-12 * scale] = 0.0
    matrix = np.sqrt(squared)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def euclidean_condensed(data: np.ndarray) -> np.ndarray:
    """Condensed (upper-triangle, row-major) form, scipy-compatible."""
    matrix = euclidean_matrix(data)
    index_upper = np.triu_indices(matrix.shape[0], k=1)
    return matrix[index_upper]


def unique_rows_with_weights(
    data: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse duplicate rows into weighted prototypes.

    Returns ``(prototypes, weights, inverse)`` where ``prototypes`` holds the
    unique rows, ``weights[i]`` counts how many original rows collapsed into
    prototype ``i``, and ``inverse[j]`` maps original row ``j`` to its
    prototype.  Weighted UPGMA over the prototypes yields exactly the same
    dendrogram (above height 0) as unweighted UPGMA over the raw matrix,
    because identical rows always merge first at distance zero.
    """
    data = np.asarray(data)
    prototypes, inverse, counts = np.unique(
        data, axis=0, return_inverse=True, return_counts=True
    )
    return prototypes, counts.astype(np.float64), inverse
