"""Feature extraction: normalized sample text → count vector / matrix.

Section II-B: "All features included in the set were of numeric type, each
one measuring the number of times a feature was found in an attack sample."
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.features.definitions import FeatureCatalog, build_catalog
from repro.features.matrix import FeatureMatrix
from repro.match import fused_enabled, matcher_for_patterns
from repro.normalize import Normalizer
from repro.obs import trace
from repro.obs.registry import get_registry
from repro.regexlib import compile_pattern

# Cached when the catalog defeats the fused compiler; the reference loop
# then answers every extraction without retrying the build.
_UNFUSABLE = object()


class FeatureExtractor:
    """Counts every catalog feature in (normalized) payload strings.

    Patterns are compiled once at construction; extraction is then a pure
    function of the input string, making the extractor safe to share.
    """

    def __init__(
        self,
        catalog: FeatureCatalog | None = None,
        normalizer: Normalizer | None = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else build_catalog()
        self.normalizer = normalizer if normalizer is not None else Normalizer()
        self._compiled = [compile_pattern(d.pattern) for d in self.catalog]
        self._fused = None

    def _fused_matcher(self):
        """The catalog's fused matcher, built lazily; ``_UNFUSABLE``
        when the catalog cannot be fused (the reference loop runs)."""
        if self._fused is None:
            try:
                self._fused = matcher_for_patterns(
                    tuple(d.pattern for d in self.catalog)
                )
            except Exception:
                self._fused = _UNFUSABLE
        return self._fused

    def __getstate__(self) -> dict:
        """Pickle without the fused matcher; worker processes rebuild it
        lazily from their own matcher memo."""
        state = dict(self.__dict__)
        state["_fused"] = None
        return state

    def extract(self, payload: str) -> np.ndarray:
        """Count vector for one payload (normalization included).

        Runs the fused single-pass engine (:mod:`repro.match`) when
        enabled, falling back to the per-feature reference loop; the two
        produce identical counts (the conformance extraction oracle
        checks this).
        """
        normalized = self.normalizer(payload)
        if fused_enabled():
            matcher = self._fused_matcher()
            if matcher is not _UNFUSABLE:
                return matcher.count_vector(normalized).astype(np.int32)
        counts = np.zeros(len(self.catalog), dtype=np.int32)
        for column, compiled in enumerate(self._compiled):
            counts[column] = sum(1 for _ in compiled.finditer(normalized))
        return counts

    def extract_many(
        self,
        payloads: Iterable[str],
        *,
        sample_ids: Sequence[str] | None = None,
        workers: int = 1,
        chunk_size: int | None = None,
    ) -> FeatureMatrix:
        """Count matrix for a collection of payloads.

        Args:
            payloads: raw payload strings (query strings / form bodies).
            sample_ids: optional row identifiers; defaults to ``s<i>``.
                Must be one per payload — a mismatched length would silently
                mislabel every row after the shorter sequence ends.
            workers: fan extraction over this many worker processes
                (see :mod:`repro.parallel.extract`); 1 stays serial.
            chunk_size: payloads per parallel task (``None`` = auto).

        Raises:
            ValueError: when ``sample_ids`` is given with a length different
                from the payload count.
        """
        items = list(payloads)
        if sample_ids is not None and len(sample_ids) != len(items):
            raise ValueError(
                f"{len(sample_ids)} sample ids for {len(items)} payloads"
            )
        with trace.span(
            "features.extract_many", payloads=len(items), workers=workers,
        ) as extract_span:
            if workers > 1:
                from repro.parallel.extract import ParallelFeatureExtractor

                matrix = ParallelFeatureExtractor(
                    self, workers=workers, chunk_size=chunk_size
                ).extract_many(items, sample_ids=sample_ids)
            else:
                rows = [self.extract(p) for p in items]
                counts = (
                    np.vstack(rows)
                    if rows
                    else np.zeros((0, len(self.catalog)), np.int32)
                )
                if sample_ids is None:
                    ids = [f"s{i}" for i in range(counts.shape[0])]
                else:
                    ids = list(sample_ids)
                matrix = FeatureMatrix(
                    counts=counts, catalog=self.catalog, sample_ids=ids
                )
            self._record_metrics(matrix, extract_span)
        return matrix

    def _record_metrics(self, matrix: FeatureMatrix, extract_span) -> None:
        """Feed the extraction counters: payload volume plus per-feature
        match totals (one labeled series per catalog feature).

        Totals are computed once per batch from the finished matrix —
        per-payload counter updates would put a few hundred lock
        acquisitions in the middle of the extraction loop.
        """
        registry = get_registry()
        registry.counter(
            "repro_features_payloads_total",
            "Payloads run through feature extraction.",
        ).inc(matrix.counts.shape[0])
        totals = matrix.counts.sum(axis=0)
        if len(totals) != len(matrix.catalog):
            # zip() over mismatched lengths would silently truncate the
            # per-feature series instead of surfacing the bad matrix.
            raise ValueError(
                f"count matrix is {len(totals)} columns wide but its "
                f"catalog defines {len(matrix.catalog)} features"
            )
        total_matches = int(totals.sum())
        registry.counter(
            "repro_features_matches_total",
            "Feature pattern matches counted, over all features.",
        ).inc(total_matches)
        for definition, column_total in zip(matrix.catalog, totals):
            if column_total:
                registry.counter(
                    "repro_feature_matches_total",
                    "Feature pattern matches counted, per feature.",
                    labels={"feature": definition.label},
                ).inc(int(column_total))
        extract_span.set(matches=total_matches)

    def with_catalog(self, catalog: FeatureCatalog) -> "FeatureExtractor":
        """A new extractor over a (typically pruned) catalog."""
        return FeatureExtractor(catalog=catalog, normalizer=self.normalizer)
