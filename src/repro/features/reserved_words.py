"""Feature source 1: MySQL reserved words (Table II, row 1).

Section II-B: "we limited the feature set to only include the reserved words
for the MySQL database management system".  The list below is the reserved
word list of the MySQL 5.5 reference manual (the revision the paper cites),
plus the small set of non-reserved keywords the paper names explicitly as
features (e.g. ``CURRENT_USER`` is reserved; ``VARCHAR`` is reserved;
``DATABASE``/``VERSION``/``USER`` appear as function tokens in SQLi payloads
and are kept in the catalog — pruning removes whatever never occurs).
"""

from __future__ import annotations

#: MySQL 5.5 reserved words.
MYSQL_RESERVED_WORDS: tuple[str, ...] = (
    "accessible", "add", "all", "alter", "analyze", "and", "as", "asc",
    "asensitive", "before", "between", "bigint", "binary", "blob", "both",
    "by", "call", "cascade", "case", "change", "char", "character", "check",
    "collate", "column", "condition", "constraint", "continue", "convert",
    "create", "cross", "current_date", "current_time", "current_timestamp",
    "current_user", "cursor", "database", "databases", "day_hour",
    "day_microsecond", "day_minute", "day_second", "dec", "decimal",
    "declare", "default", "delayed", "delete", "desc", "describe",
    "deterministic", "distinct", "distinctrow", "div", "double", "drop",
    "dual", "each", "else", "elseif", "enclosed", "escaped", "exists",
    "exit", "explain", "false", "fetch", "float", "float4", "float8",
    "for", "force", "foreign", "from", "fulltext", "grant", "group",
    "having", "high_priority", "hour_microsecond", "hour_minute",
    "hour_second", "if", "ignore", "in", "index", "infile", "inner",
    "inout", "insensitive", "insert", "int", "int1", "int2", "int3",
    "int4", "int8", "integer", "interval", "into", "is", "iterate",
    "join", "key", "keys", "kill", "leading", "leave", "left", "like",
    "limit", "linear", "lines", "load", "localtime", "localtimestamp",
    "lock", "long", "longblob", "longtext", "loop", "low_priority",
    "master_ssl_verify_server_cert", "match", "maxvalue", "mediumblob",
    "mediumint", "mediumtext", "middleint", "minute_microsecond",
    "minute_second", "mod", "modifies", "natural", "not",
    "no_write_to_binlog", "null", "numeric", "on", "optimize", "option",
    "optionally", "or", "order", "out", "outer", "outfile", "precision",
    "primary", "procedure", "purge", "range", "read", "reads",
    "read_write", "real", "references", "regexp", "release", "rename",
    "repeat", "replace", "require", "resignal", "restrict", "return",
    "revoke", "right", "rlike", "schema", "schemas", "second_microsecond",
    "select", "sensitive", "separator", "set", "show", "signal", "smallint",
    "spatial", "specific", "sql", "sqlexception", "sqlstate", "sqlwarning",
    "sql_big_result", "sql_calc_found_rows", "sql_small_result", "ssl",
    "starting", "straight_join", "table", "terminated", "then", "tinyblob",
    "tinyint", "tinytext", "to", "trailing", "trigger", "true", "undo",
    "union", "unique", "unlock", "unsigned", "update", "usage", "use",
    "using", "utc_date", "utc_time", "utc_timestamp", "values", "varbinary",
    "varchar", "varcharacter", "varying", "when", "where", "while", "with",
    "write", "xor", "year_month", "zerofill",
)

#: Function-style tokens that dominate real SQLi payloads; they are not all
#: reserved words but the paper's examples (``database()``, ``version()``,
#: ``user()``, ``concat(...)``) show they were in the catalog.
MYSQL_FUNCTION_TOKENS: tuple[str, ...] = (
    "ascii", "benchmark", "concat", "concat_ws", "count", "extractvalue",
    "find_in_set", "floor", "group_concat", "hex", "information_schema",
    "instr", "last_insert_id", "length", "load_file", "locate", "lower",
    "ltrim", "make_set", "md5", "mid", "now", "rand", "row_count", "rpad",
    "rtrim", "session_user", "sha1", "sleep", "substr", "substring",
    "sysdate", "system_user", "unhex", "updatexml", "upper", "user",
    "version", "waitfor",
)

#: Keywords specific to non-MySQL engines (Microsoft SQL Server, Oracle,
#: PostgreSQL, SQLite).  Section II-B: the features removed by pruning
#: "corresponded to cases for attacks to non-MySQL databases (not considered
#: in our experiments)" — so the *initial* 477-entry catalog contained them.
#: They are included here and are expected to be pruned away, reproducing
#: that part of the 477 → 159 reduction.
NON_MYSQL_KEYWORDS: tuple[str, ...] = (
    # Microsoft SQL Server
    "xp_cmdshell", "xp_regread", "xp_dirtree", "xp_availablemedia",
    "xp_servicecontrol", "sp_executesql", "sp_password", "sp_makewebtask",
    "sp_oacreate", "sp_oamethod", "sp_addextendedproc", "sp_msforeachtable",
    "sysobjects", "syscolumns", "sysusers", "sysdatabases", "sysprocesses",
    "syslogins", "openrowset", "opendatasource", "openquery", "openxml",
    "charindex", "datalength", "nvarchar", "ntext", "getdate", "db_name",
    "host_name", "suser_sname", "is_srvrolemember", "has_dbaccess",
    "serverproperty", "raiserror", "readtext", "writetext", "updatetext",
    "holdlock", "nolock", "rowcount", "identitycol", "rowguidcol",
    "freetext", "freetexttable", "containstable", "dbcc", "bulk_insert",
    "fn_xe_file_target_read_file", "fn_virtualfilestats", "patindex",
    "sqlvariant", "smalldatetime", "uniqueidentifier", "newid", "fn_get_sql",
    # Oracle
    "utl_http", "utl_inaddr", "utl_smtp", "utl_file", "dbms_pipe",
    "dbms_lock", "dbms_java", "dbms_scheduler", "dbms_export_extension",
    "all_tables", "all_tab_columns", "all_users", "user_tables",
    "user_tab_columns", "v\\$version", "v\\$database", "v\\$session",
    "rownum", "nvl", "to_char", "to_number", "to_date", "rawtohex",
    "hextoraw", "bitand", "ctxsys", "ordsys", "mdsys", "xmltype",
    "sys_context", "dba_users", "wm_concat", "listagg",
    # PostgreSQL
    "pg_sleep", "pg_user", "pg_database", "pg_shadow", "pg_tables",
    "pg_catalog", "pg_read_file", "pg_ls_dir", "current_schema",
    "quote_literal", "quote_ident", "generate_series", "lo_import",
    "lo_export", "string_agg", "array_to_string", "regexp_replace",
    # SQLite / Access
    "sqlite_master", "sqlite_version", "sqlite_temp_master", "randomblob",
    "zeroblob", "msysobjects", "msysaces", "msysqueries", "iif",
)

#: Words so common in benign English/URLs that a bare word-boundary match
#: would be pure noise; they only ever appear as parts of composite
#: fragments, never as standalone reserved-word features.
NOISE_WORDS: frozenset[str] = frozenset(
    {"as", "by", "if", "in", "is", "on", "or", "to", "and", "all", "add",
     "use", "not", "key", "set", "for", "from", "left", "right", "read",
     "group", "order", "change", "option", "range", "lines", "long",
     "match", "out", "show", "sql", "table", "then", "when", "where",
     "with", "write", "true", "false", "default", "check", "column",
     "index", "join", "like", "limit", "load", "lock", "loop", "mod",
     "release", "rename", "repeat", "replace", "require", "return",
     "values", "each", "else", "exit", "keys", "kill", "leave", "call",
     "case", "both", "dual", "desc", "asc"}
)


def reserved_word_patterns() -> list[tuple[str, str]]:
    """``(pattern, label)`` pairs for the reserved-word feature source.

    Each word becomes a word-boundary regex.  Words in :data:`NOISE_WORDS`
    are excluded here (they re-enter the catalog inside composite fragments
    from the other two sources).
    """
    patterns: list[tuple[str, str]] = []
    for word in MYSQL_RESERVED_WORDS + MYSQL_FUNCTION_TOKENS:
        if word in NOISE_WORDS:
            continue
        pattern = rf"\b{word}\b"
        patterns.append((pattern, f"kw:{word}"))
    for word in NON_MYSQL_KEYWORDS:
        # Some entries (v$version) embed regex syntax already.
        body = word if "\\" in word else word.replace("$", r"\$")
        patterns.append((rf"\b{body}\b", f"kw:{word}"))
    return patterns
