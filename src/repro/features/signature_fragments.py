"""Feature source 2: deconstructed NIDS/WAF signatures (Table II, row 2).

Section II-B: existing signatures "are the result of a usually long
optimization process, so it could be assumed that these signatures have
components (strings inside a signature) that can be used as features".
Donor signatures below are representative SQLi rules in the style of the
ModSecurity CRS 2.2.4, Snort 2920 / Emerging Threats, and Bro 2.0 rulesets
the paper harvested; each is deconstructed into its logical components with
:func:`repro.regexlib.deconstruct`, and each component becomes one feature.

The fragments the paper prints verbatim (Table III and the Section IV
discussion of signature 4) are all present: ``=``, ``=[-0-9\\%]*``,
``<=>|r?like|sounds\\s+like|regex``, ``([^a-zA-Z&]+)?&|exists``,
``[\\?&][^\\s\\x00-\\x37\\|]+?``, ``\\)?;``, ``in\\s*?\\(+\\s*?select``,
``char``, ``@``, ``information_schema``, ``ch(a)?r\\s*?\\(\\s*?\\d``.
"""

from __future__ import annotations

from repro.regexlib import deconstruct, validate

#: Donor signatures: (origin ruleset, full signature pattern).  Groups and
#: top-level alternations delimit the logical components.
DONOR_SIGNATURES: tuple[tuple[str, str], ...] = (
    # ModSecurity CRS style: wide alternations of operator abuse.
    ("modsec", r"(?:is\s+null)|(?:like\s+null)|(?:<=>|r?like|sounds\s+like|regex)|"
               r"(?:union([^a-z]|select))|(?:having\s+[0-9=])"),
    ("modsec", r"(?:in\s*?\(+\s*?select)|(?:\)?;)|(?:--[\s-])|(?:#.*$)|(?:/\*!?)"),
    ("modsec", r"(?:\'\s*?(?:and|or|xor|&&|\|\|)\s*?[\(\'0-9a-z])|(?:\'\s*?=\s*?\')|"
               r"(?:\d\s*?=\s*?\d)"),
    ("modsec", r"(?:select\s+?[\w\*\)\(\,\s]+?from)|(?:insert\s+?into)|"
               r"(?:delete\s+?from)|(?:update\s+?\w+\s+?set)|(?:drop\s+?table)"),
    ("modsec", r"(?:@@(?:version|datadir|hostname|basedir))|(?:@[\w\.]+)|"
               r"(?:information_schema)|(?:table_name)|(?:column_name)"),
    ("modsec", r"(?:ch(a)?r\s*?\(\s*?\d)|(?:0x[0-9a-f]{4,})|(?:unhex\s*?\()|"
               r"(?:convert\s*?\()|(?:cast\s*?\()"),
    ("modsec", r"(?:benchmark\s*?\(\s*?\d)|(?:sleep\s*?\(\s*?\d)|"
               r"(?:waitfor\s+delay)|(?:pg_sleep)"),
    ("modsec", r"(?:group_concat\s*?\()|(?:concat(?:_ws)?\s*?\()|"
               r"(?:extractvalue\s*?\()|(?:updatexml\s*?\()|(?:make_set\s*?\()"),
    # Snort / Emerging Threats style: short, specific strings.
    ("snort", r"(?:union\s+(?:all\s+)?select)|(?:select\s+user\s*?\()"),
    ("snort", r"(?:order\s+by\s+[0-9]{1,3})|(?:group\s+by\s+[0-9])"),
    ("snort", r"(?:=[-0-9\%]*)|(?:=)"),
    ("snort", r"(?:([^a-zA-Z&]+)?&|exists)|(?:[^a-zA-Z&]+=)"),
    ("snort", r"(?:\'(?:\s|\+|%20)*?or)|(?:\'(?:\s|\+|%20)*?and)"),
    ("snort", r"(?:load_file\s*?\()|(?:into\s+(?:out|dump)file)"),
    ("snort", r"(?:;\s*?(?:drop|shutdown|exec))|(?:exec\s+?(?:xp|sp)_)"),
    # Bro 2.0 style: long composite payload matchers.
    ("bro", r"(?:[\?&][^\s\x00-\x37\|]+?=)|(?:[\?&][^\s\x00-\x37\|]+?)|"
            r"(?:\'|\")|(?:%27|%22)"),
    ("bro", r"(?:select.{0,40}(?:from|limit|count))|"
            r"(?:union.{0,40}select)|(?:insert.{0,40}into)"),
    ("bro", r"(?:null(?:\s|,)+null)|(?:,\s*?null)|(?:\bchar\b)|(?:@)"),
    ("bro", r"(?:sleep\(\s*?\d+\s*?\))|(?:benchmark\(.+?,.+?\))|"
            r"(?:and\s+\d{1,10}\s*?[=<>])"),
    ("bro", r"(?:--\s*?$)|(?:;--)|(?:;\s*?#)|(?:\'--)"),
)

#: Curated fragments quoted verbatim in the paper that the deconstruction of
#: the donors must surface; kept as an explicit list so a refactor of the
#: donor set cannot silently lose them.
PAPER_FRAGMENTS: tuple[str, ...] = (
    r"=",
    r"=[-0-9\%]*",
    r"<=>|r?like|sounds\s+like|regex",
    r"([^a-zA-Z&]+)?&|exists",
    r"[\?&][^\s\x00-\x37\|]+?",
    r"\)?;",
    r"in\s*?\(+\s*?select",
    r"\bchar\b",
    r"@",
    r"information_schema",
    r"ch(a)?r\s*?\(\s*?\d",
)


def fragment_patterns() -> list[tuple[str, str, str]]:
    """Deconstruct the donor signatures into feature fragments.

    Returns ``(pattern, label, origin)`` triples, de-duplicated in first-seen
    order.  Fragments that fail to compile or can match the empty string are
    dropped (they cannot serve as count features).
    """
    seen: set[str] = set()
    out: list[tuple[str, str, str]] = []
    for origin, signature in DONOR_SIGNATURES:
        for index, fragment in enumerate(deconstruct(signature)):
            if fragment in seen or not validate(fragment):
                continue
            seen.add(fragment)
            out.append((fragment, f"sig:{origin}:{index}", origin))
    for fragment in PAPER_FRAGMENTS:
        if fragment in seen or not validate(fragment):
            continue
        seen.add(fragment)
        out.append((fragment, "sig:paper", "paper"))
    return out
