"""Feature system: catalog from three sources, extraction, and pruning."""

from repro.features.definitions import (
    SOURCE_REFERENCE,
    SOURCE_RESERVED,
    SOURCE_SIGNATURE,
    SOURCES,
    FeatureCatalog,
    FeatureDefinition,
    build_catalog,
)
from repro.features.extractor import FeatureExtractor
from repro.features.matrix import FeatureMatrix
from repro.features.pruning import PruningReport, prune

__all__ = [
    "FeatureDefinition",
    "FeatureCatalog",
    "build_catalog",
    "FeatureExtractor",
    "FeatureMatrix",
    "prune",
    "PruningReport",
    "SOURCES",
    "SOURCE_RESERVED",
    "SOURCE_SIGNATURE",
    "SOURCE_REFERENCE",
]
