"""Feature source 3: SQLi reference documents (Table II, row 3).

Section II-B cites the Websec SQL injection pocket reference (Salgado, 2011)
and *SQL Injection Attacks and Defense* (Clarke, 2009) as the third feature
source: "Common strings found in SQLi attacks, shared by subject matter
experts."  The table's own examples — ``' ORDER BY [0-9]-- -``, ``/*/``,
``\\"`` — are included below alongside the standard cheat-sheet idioms those
documents enumerate (tautologies, comment terminators, enumeration probes,
time-based and error-based extraction helpers, and common evasions).
"""

from __future__ import annotations

#: ``(pattern, label)`` pairs.  Patterns are regular expressions applied to
#: the *normalized* (lower-cased, decoded) sample text.
REFERENCE_PATTERNS: tuple[tuple[str, str], ...] = (
    # Tautologies and quote breaking.
    (r"\'\s*or\s*\'?\d", "ref:quote-or-digit"),
    (r"\d\s*=\s*\d", "ref:digit-eq-digit"),
    (r"\'\s*=\s*\'", "ref:quote-eq-quote"),
    (r"or\s+1\s*=\s*1", "ref:or-1-eq-1"),
    (r"and\s+1\s*=\s*[01]", "ref:and-1-eq"),
    (r"\'\s*(?:or|and)\s*\'[^\']*\'\s*(?:=|like)", "ref:quoted-tautology"),
    (r"(?:^|[?&=])\'", "ref:leading-quote"),
    (r"\\\"", "ref:escaped-double-quote"),
    (r"\'\'", "ref:doubled-quote"),
    # Comment terminators.
    (r"--\s*-?\s*$", "ref:dash-dash-eol"),
    (r"--\s", "ref:dash-dash-space"),
    (r"#\s*$", "ref:hash-eol"),
    (r"/\*/", "ref:slash-star-slash"),
    (r"/\*.*?\*/", "ref:inline-comment"),
    (r";\s*--", "ref:semicolon-comment"),
    (r"\'\s*--", "ref:quote-comment"),
    # Column/row enumeration.
    (r"order\s+by\s+[0-9]+\s*--\s*-?", "ref:order-by-comment"),
    (r"order\s+by\s+[0-9]+", "ref:order-by-n"),
    (r"union\s+(?:all\s+)?select", "ref:union-select"),
    (r"select\s+(?:null\s*,\s*)+null", "ref:select-nulls"),
    (r"(?:\d+\s*,\s*){3,}\d+", "ref:column-count-probe"),
    (r"limit\s+\d+\s*,\s*\d+", "ref:limit-offset"),
    (r"group\s+by\s+.+having", "ref:group-by-having"),
    # Schema and data extraction.
    (r"information_schema\.(?:tables|columns|schemata)", "ref:infoschema-table"),
    (r"table_schema\s*=", "ref:table-schema-eq"),
    (r"from\s+information_schema", "ref:from-infoschema"),
    (r"select.+from\s+mysql\.user", "ref:mysql-user-table"),
    (r"@@(?:version|datadir|hostname)", "ref:at-at-variable"),
    (r"(?:current_)?user\s*\(\s*\)", "ref:user-call"),
    (r"database\s*\(\s*\)", "ref:database-call"),
    (r"version\s*\(\s*\)", "ref:version-call"),
    # Error-based extraction helpers.
    (r"extractvalue\s*\(", "ref:extractvalue"),
    (r"updatexml\s*\(", "ref:updatexml"),
    (r"floor\s*\(\s*rand\s*\(", "ref:floor-rand"),
    (r"count\s*\(\s*\*\s*\)", "ref:count-star"),
    (r"row\s*\(\s*\d", "ref:row-constructor"),
    (r"procedure\s+analyse", "ref:procedure-analyse"),
    # Time-based probes.
    (r"sleep\s*\(\s*\d+", "ref:sleep-n"),
    (r"benchmark\s*\(\s*\d+", "ref:benchmark-n"),
    (r"waitfor\s+delay", "ref:waitfor-delay"),
    (r"if\s*\(.+sleep", "ref:if-sleep"),
    # String building / evasion.
    (r"concat\s*\(", "ref:concat-call"),
    (r"concat_ws\s*\(", "ref:concat-ws-call"),
    (r"group_concat\s*\(", "ref:group-concat-call"),
    (r"char\s*\(\s*\d+(?:\s*,\s*\d+)*\s*\)", "ref:char-list"),
    (r"0x[0-9a-f]{4,}", "ref:hex-literal"),
    (r"unhex\s*\(", "ref:unhex-call"),
    (r"cast\s*\(.+as\s+(?:char|binary)", "ref:cast-as-char"),
    (r"convert\s*\(.+using", "ref:convert-using"),
    (r"%2[27]", "ref:encoded-quote"),
    (r"%u00[0-9a-f]{2}", "ref:unicode-escape"),
    # Stacked queries and writes.
    (r";\s*(?:select|insert|update|delete|drop)", "ref:stacked-query"),
    (r"into\s+(?:out|dump)file", "ref:into-outfile"),
    (r"load_file\s*\(", "ref:load-file"),
    (r"drop\s+table", "ref:drop-table"),
    (r"insert\s+into", "ref:insert-into"),
    (r"delete\s+from", "ref:delete-from"),
    (r"update\s+\w+\s+set", "ref:update-set"),
    # Boolean-blind scaffolding.
    (r"and\s+\d+\s*[<>]\s*\d+", "ref:and-compare"),
    (r"and\s+(?:ascii|ord)\s*\(", "ref:and-ascii"),
    (r"substring?\s*\(", "ref:substring-call"),
    (r"mid\s*\(", "ref:mid-call"),
    (r"length\s*\(", "ref:length-call"),
    (r"ascii\s*\(", "ref:ascii-call"),
    (r"\(\s*select\s", "ref:paren-select"),
    (r"exists\s*\(\s*select", "ref:exists-select"),
    (r"is\s+(?:not\s+)?null", "ref:is-null"),
    (r"between\s+\d+\s+and", "ref:between-and"),
    (r"like\s+\'%", "ref:like-percent"),
    (r"rlike\s+", "ref:rlike"),
    (r"regexp\s+", "ref:regexp"),
    (r"xor\s+", "ref:xor"),
    (r"\|\|", "ref:double-pipe"),
    (r"&&", "ref:double-amp"),
    (r"!\s*=", "ref:bang-eq"),
    (r"<>", "ref:angle-neq"),
    (r"null\s*,\s*null", "ref:null-null"),
    (r"\*\s*from", "ref:star-from"),
    (r"\bselect\b.{0,60}\bfrom\b", "ref:select-from-window"),
    # Symbol-level features ("various keywords, symbols and their relative
    # placements", Section I).
    (r"\(", "ref:open-paren"),
    (r"\)", "ref:close-paren"),
    (r",", "ref:comma"),
    (r";", "ref:semicolon"),
    (r"\'", "ref:single-quote"),
    (r"\"", "ref:double-quote"),
    (r"`", "ref:backtick"),
    (r"=\s*\'", "ref:eq-quote"),
    (r"=\s*-?\d", "ref:eq-digit"),
    (r"-\d", "ref:negative-number"),
    (r"%", "ref:percent"),
    (r"\breturn\b", "ref:return-kw"),
    (r"@\w+", "ref:user-variable"),
    (r"@@\w+", "ref:system-variable"),
    (r"\$\{", "ref:dollar-brace"),
    (r"\[\s*\d+\s*\]", "ref:bracket-index"),
    (r"0x[0-9a-f]{2}", "ref:hex-prefix"),
    (r"\bnull\b", "ref:null-kw"),
    (r"\+{2,}", "ref:plus-run"),
)
