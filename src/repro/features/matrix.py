"""The sample-by-feature count matrix.

Section II-B: "The resulting data is organized in a matrix where the samples
are the rows of the matrix and the features are the columns.  The size of
the matrix was then 30,000 by 159 and can be classified as sparse because
85% of its cells were populated with zeroes."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.definitions import FeatureCatalog


@dataclass
class FeatureMatrix:
    """A dense numpy count matrix plus its column metadata.

    At the paper's scale (30,000 × 159, int32) the dense representation is
    ~18 MB, well under the point where a sparse format pays off, and it keeps
    the downstream linear algebra simple.

    Attributes:
        counts: ``(n_samples, n_features)`` non-negative integer counts.
        catalog: column definitions, aligned with ``counts`` columns.
        sample_ids: opaque per-row identifiers (corpus sample ids).
    """

    counts: np.ndarray
    catalog: FeatureCatalog
    sample_ids: list[str]

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts)
        if self.counts.ndim != 2:
            raise ValueError("counts must be a 2-D array")
        if self.counts.shape[1] != len(self.catalog):
            raise ValueError(
                f"{self.counts.shape[1]} columns but catalog has "
                f"{len(self.catalog)} features"
            )
        if len(self.sample_ids) != self.counts.shape[0]:
            raise ValueError("one sample id required per row")
        if (self.counts < 0).any():
            raise ValueError("counts must be non-negative")

    @property
    def n_samples(self) -> int:
        """Number of rows (samples)."""
        return self.counts.shape[0]

    @property
    def n_features(self) -> int:
        """Number of columns (features)."""
        return self.counts.shape[1]

    def sparsity(self) -> float:
        """Fraction of zero cells (paper: ~0.85)."""
        if self.counts.size == 0:
            return 0.0
        return float(np.mean(self.counts == 0))

    def fraction_ones(self) -> float:
        """Fraction of cells equal to one (paper: ~0.06)."""
        if self.counts.size == 0:
            return 0.0
        return float(np.mean(self.counts == 1))

    def binary_feature_mask(self) -> np.ndarray:
        """Columns whose observed values never exceed one.

        The paper found 70 of the 159 active features "performed as binary
        features".
        """
        return np.asarray(self.counts.max(axis=0) <= 1)

    def column_support(self) -> np.ndarray:
        """Per-column count of rows with a non-zero value."""
        return np.asarray((self.counts > 0).sum(axis=0))

    def select_columns(self, indices: list[int]) -> "FeatureMatrix":
        """Project onto a column subset (used by pruning and biclusters)."""
        return FeatureMatrix(
            counts=self.counts[:, indices],
            catalog=self.catalog.subset(list(indices)),
            sample_ids=list(self.sample_ids),
        )

    def select_rows(self, indices: list[int]) -> "FeatureMatrix":
        """Project onto a row subset (used by bicluster sample sets)."""
        index_list = list(indices)
        return FeatureMatrix(
            counts=self.counts[index_list, :],
            catalog=self.catalog,
            sample_ids=[self.sample_ids[i] for i in index_list],
        )

    def as_binary(self) -> "FeatureMatrix":
        """Presence/absence version of the matrix (the paper's rejected
        alternative, kept for the ablation bench)."""
        return FeatureMatrix(
            counts=(self.counts > 0).astype(self.counts.dtype),
            catalog=self.catalog,
            sample_ids=list(self.sample_ids),
        )

    def standardized(self) -> np.ndarray:
        """Column z-scores as used for the Figure 2 heatmap.

        "Each column in the matrix is standardized as follows: the
        statistical mean and standard deviation of the values is computed.
        The mean is then subtracted from each value and the result divided
        by the standard deviation."  Constant columns standardize to zero.
        """
        values = self.counts.astype(np.float64)
        mean = values.mean(axis=0)
        std = values.std(axis=0)
        safe_std = np.where(std == 0, 1.0, std)
        z = (values - mean) / safe_std
        z[:, std == 0] = 0.0
        return z
