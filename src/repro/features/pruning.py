"""Feature pruning: the paper's 477 → 159 reduction.

Section II-B: "The resulting feature set used in the experiments had 159
entries (from an initial set of 477), after removing those features that
were not found in any of the samples used in the training phase of the
system.  The removed features also corresponded to cases for attacks to
non-MySQL databases ... or because of multiple features looking for similar
SQLi strings (overlapping features)."

Two pruning passes are implemented: zero-support removal (exact paper rule)
and duplicate-column collapse (the "overlapping features" rule — columns
whose value is identical on every training sample carry the same
information; the first is kept).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.matrix import FeatureMatrix


@dataclass(frozen=True)
class PruningReport:
    """What pruning did, for the record.

    Attributes:
        initial_features: catalog size before pruning.
        zero_support: indices removed because no training sample matched.
        duplicates: indices removed because an earlier column was identical.
        kept: surviving indices, in original order.
    """

    initial_features: int
    zero_support: tuple[int, ...]
    duplicates: tuple[int, ...]
    kept: tuple[int, ...]

    @property
    def final_features(self) -> int:
        """Surviving feature count (paper: 159)."""
        return len(self.kept)


def prune(
    matrix: FeatureMatrix,
    *,
    min_support: int = 1,
    collapse_duplicates: bool = True,
) -> tuple[FeatureMatrix, PruningReport]:
    """Remove inactive and duplicate feature columns.

    Args:
        matrix: training feature matrix over the full catalog.
        min_support: minimum number of samples a feature must appear in to
            survive (paper rule: 1).
        collapse_duplicates: also drop columns identical to an earlier one.

    Returns:
        The pruned matrix (columns re-indexed) and a :class:`PruningReport`.
    """
    support = matrix.column_support()
    zero_support = [int(i) for i in np.nonzero(support < min_support)[0]]
    removed = set(zero_support)

    duplicates: list[int] = []
    if collapse_duplicates:
        seen: dict[bytes, int] = {}
        for column in range(matrix.n_features):
            if column in removed:
                continue
            key = matrix.counts[:, column].tobytes()
            if key in seen:
                duplicates.append(column)
                removed.add(column)
            else:
                seen[key] = column

    kept = [i for i in range(matrix.n_features) if i not in removed]
    report = PruningReport(
        initial_features=matrix.n_features,
        zero_support=tuple(zero_support),
        duplicates=tuple(duplicates),
        kept=tuple(kept),
    )
    return matrix.select_columns(kept), report
