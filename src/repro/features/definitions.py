"""Feature catalog: the union of the three feature sources.

The paper "first started with 477 features for SQL injection attacks,
corresponding to various keywords, symbols and their relative placements"
(Section I) and, after pruning features absent from every training sample,
kept 159 (Section II-B).  This module builds the *initial* catalog; pruning
to the active set happens in :mod:`repro.features.pruning` once a training
matrix exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.reference_strings import REFERENCE_PATTERNS
from repro.features.reserved_words import reserved_word_patterns
from repro.features.signature_fragments import fragment_patterns
from repro.regexlib import validate

SOURCE_RESERVED = "mysql-reserved"
SOURCE_SIGNATURE = "nids-signature"
SOURCE_REFERENCE = "reference-doc"

#: Stable ordering of sources for reporting (mirrors Table II's rows).
SOURCES: tuple[str, ...] = (SOURCE_RESERVED, SOURCE_SIGNATURE, SOURCE_REFERENCE)


@dataclass(frozen=True)
class FeatureDefinition:
    """One feature: a regex counted against the normalized sample.

    Attributes:
        index: position in the catalog; column index in the feature matrix.
        pattern: the regular expression.
        label: short human-readable name (``kw:select``, ``ref:union-select``).
        source: one of :data:`SOURCES`.
    """

    index: int
    pattern: str
    label: str
    source: str


class FeatureCatalog:
    """An ordered, immutable collection of feature definitions."""

    def __init__(self, definitions: list[FeatureDefinition]):
        self._definitions = tuple(definitions)
        self._by_label = {d.label: d for d in self._definitions}

    def __len__(self) -> int:
        return len(self._definitions)

    def __iter__(self):
        return iter(self._definitions)

    def __getitem__(self, index: int) -> FeatureDefinition:
        return self._definitions[index]

    @property
    def patterns(self) -> list[str]:
        """All regex patterns, in column order."""
        return [d.pattern for d in self._definitions]

    @property
    def labels(self) -> list[str]:
        """All human-readable labels, in column order."""
        return [d.label for d in self._definitions]

    def by_label(self, label: str) -> FeatureDefinition:
        """Look up a definition by its label (raises KeyError)."""
        return self._by_label[label]

    def by_source(self, source: str) -> list[FeatureDefinition]:
        """All definitions contributed by one of the three sources."""
        return [d for d in self._definitions if d.source == source]

    def source_counts(self) -> dict[str, int]:
        """Feature counts per source — the quantitative half of Table II."""
        counts = {source: 0 for source in SOURCES}
        for definition in self._definitions:
            counts[definition.source] = counts.get(definition.source, 0) + 1
        return counts

    def subset(self, indices: list[int]) -> "FeatureCatalog":
        """A new catalog of the selected columns, re-indexed from 0.

        Used by pruning (477 → 159) and by per-bicluster signature models.
        """
        picked = [self._definitions[i] for i in indices]
        return FeatureCatalog(
            [
                FeatureDefinition(
                    index=new_index,
                    pattern=d.pattern,
                    label=d.label,
                    source=d.source,
                )
                for new_index, d in enumerate(picked)
            ]
        )


def build_catalog() -> FeatureCatalog:
    """Build the initial feature catalog from the three sources.

    Duplicate patterns across sources keep their first occurrence (the paper
    notes "overlapping features" were among what pruning later removed; exact
    duplicates are removed eagerly since they carry no information).
    """
    definitions: list[FeatureDefinition] = []
    seen_patterns: set[str] = set()

    def add(pattern: str, label: str, source: str) -> None:
        if pattern in seen_patterns or not validate(pattern):
            return
        seen_patterns.add(pattern)
        definitions.append(
            FeatureDefinition(
                index=len(definitions), pattern=pattern, label=label, source=source
            )
        )

    for pattern, label in reserved_word_patterns():
        add(pattern, label, SOURCE_RESERVED)
    for pattern, label, _origin in fragment_patterns():
        add(pattern, label, SOURCE_SIGNATURE)
    for pattern, label in REFERENCE_PATTERNS:
        add(pattern, label, SOURCE_REFERENCE)
    return FeatureCatalog(definitions)
