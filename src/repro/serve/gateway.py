"""The detection gateway: an asyncio server mounting any ``Detector``.

Structure (one listening port, both dialects of ``protocol.py``):

- A reader per connection admits each payload line through the
  :class:`~repro.serve.admission.AdmissionController`, capturing the
  current :class:`~repro.serve.store.StoreVersion` **at admission time**
  — a concurrent hot-swap never changes which signature generation
  answers an already-admitted request.
- A fixed pool of worker coroutines drains the queue and runs
  ``detector.inspect`` (pure CPU, microseconds per payload — see
  Experiment 4 — so coroutine workers suffice; process fan-out stays in
  ``repro.parallel`` for offline batches).
- A writer per connection emits responses strictly in request order, so
  clients correlate by position exactly like the offline engine's
  per-index ``EngineRun`` vectors.

Per-connection pipelining is bounded: once ``max_inflight_per_connection``
responses are outstanding the reader stops reading, the socket buffer
fills, and the client blocks — backpressure reaches the edge without
any protocol support.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from dataclasses import dataclass
from typing import Callable

from repro.serve.admission import (
    DEFAULT_COST_THRESHOLD,
    DEFAULT_HIGH_WATER,
    AdmissionController,
    BackpressurePolicy,
    QueueClosed,
    Shed,
)
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_framed_request,
    encode_detection,
    encode_error,
    encode_framed_request,
    encode_shed,
    encode_surface_detection,
    frame_header_size,
    http_response,
    is_http_request_line,
    read_http_message,
)
from repro.obs.prometheus import CONTENT_TYPE, render_exposition
from repro.serve.store import SignatureStore, StoreError, StoreVersion
from repro.serve.telemetry import Telemetry, surfaces_section
from repro.surfaces import (
    InjectionSurface,
    LEGACY_SURFACES,
    ScoreRequest,
    score_request,
)

__all__ = ["DetectionGateway", "GatewayConfig"]


@dataclass
class GatewayConfig:
    """Tunables of one gateway instance.

    Attributes:
        host: bind address.
        port: bind port (0 picks an ephemeral port, reported by ``start``).
        queue_bound: admission queue capacity.
        policy: full-queue behaviour (``block`` or ``shed``).
        workers: detector worker coroutines.
        max_inflight_per_connection: pipelining window per connection.
        drain_timeout: seconds to wait for queued work at shutdown.
        cost_fn: prices a payload for the ``cost`` admission policy
            (default: UTF-8 byte length — matching time scales with
            payload size; a family-aware deployment can price attack
            shapes higher).
        cost_threshold: ``cost`` policy shed threshold.
        high_water: queue-depth fraction where cost shedding begins.
        allow_reload: accept ``POST /reload`` on this gateway's own
            control plane.  Fleet shards set this False — their reloads
            arrive only through the supervisor's two-phase protocol, so
            a client reaching one shard's data port can never split the
            fleet across generations.
        surfaces: default injection-surface selection for framed
            requests that do not name one (``repro serve --surfaces``);
            frames carrying an explicit ``surfaces`` field always win.
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_bound: int = 1024
    policy: BackpressurePolicy | str = BackpressurePolicy.BLOCK
    workers: int = 4
    max_inflight_per_connection: int = 64
    drain_timeout: float = 10.0
    cost_fn: Callable[[str], float] | None = None
    cost_threshold: float = DEFAULT_COST_THRESHOLD
    high_water: float = DEFAULT_HIGH_WATER
    allow_reload: bool = True
    surfaces: tuple[InjectionSurface, ...] = LEGACY_SURFACES


@dataclass
class _Job:
    """One admitted inspection: work + the generation that answers it.

    ``work`` is the raw payload string (line protocol) or a
    :class:`~repro.surfaces.ScoreRequest` (framed full-request mode);
    the worker loop branches on the type.
    """

    work: str | ScoreRequest
    snapshot: StoreVersion
    future: asyncio.Future
    admitted_at: float


class DetectionGateway:
    """Serves a :class:`SignatureStore` over TCP/HTTP with admission
    control and telemetry.

    Args:
        store: versioned detector holder (hot-swapped via ``POST /reload``).
        config: server tunables.
        telemetry: metrics sink; created (and shared with the store, if
            the store has none) when omitted.
    """

    def __init__(
        self,
        store: SignatureStore,
        config: GatewayConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.store = store
        self.config = config or GatewayConfig()
        self.telemetry = telemetry or Telemetry()
        if store.telemetry is None:
            store.telemetry = self.telemetry
        self.admission = AdmissionController(
            queue_bound=self.config.queue_bound,
            policy=self.config.policy,
            telemetry=self.telemetry,
            cost_threshold=self.config.cost_threshold,
            high_water=self.config.high_water,
        )
        self._cost_fn = self.config.cost_fn or _default_cost
        # Live-state gauges: evaluated at scrape time, so /metrics shows
        # the instantaneous queue depth and deployed signature generation
        # without the data plane pushing updates anywhere.
        registry = self.telemetry.registry
        registry.gauge(
            "repro_queue_depth",
            "Admission queue depth at scrape time.",
            function=lambda: float(self.admission.depth),
        )
        registry.gauge(
            "repro_store_version",
            "Deployed signature store generation.",
            function=lambda: float(self.store.version),
        )
        self._server: asyncio.base_events.Server | None = None
        self._workers: list[asyncio.Task] = []
        self._connections: set[asyncio.StreamWriter] = set()
        self._stopped = asyncio.Event()

    # -- lifecycle -----------------------------------------------------

    async def start(
        self, *, sock: socket.socket | None = None
    ) -> tuple[str, int]:
        """Bind, spawn workers, and return the bound ``(host, port)``.

        Args:
            sock: an already-bound listening socket to serve on instead
                of binding ``config.host:port`` — how fleet shards share
                one port (their own ``SO_REUSEPORT`` socket, or a
                fork-inherited listener).
        """
        if self._server is not None:
            raise RuntimeError("gateway already started")
        loop = asyncio.get_running_loop()
        self._workers = [
            loop.create_task(self._worker_loop())
            for _ in range(max(1, self.config.workers))
        ]
        # Stream limit above MAX_LINE_BYTES so our own oversized-line
        # handling (answer an error, keep the connection) gets to run
        # before asyncio's reader gives up.
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock,
                limit=4 * MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port,
                limit=4 * MAX_LINE_BYTES,
            )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def stop(self) -> None:
        """Graceful drain: stop accepting, service the queue, then close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.admission.drain(self.config.drain_timeout)
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        for writer in list(self._connections):
            writer.close()
        self._stopped.set()

    async def serve_forever(self) -> None:
        """Start and run until cancelled; drains on the way out."""
        host, port = await self.start()
        detector = self.store.current().detector.name
        print(
            f"repro.serve: detector={detector} on {host}:{port} "
            f"(queue={self.config.queue_bound}, "
            f"policy={BackpressurePolicy(self.config.policy).value}, "
            f"workers={self.config.workers})"
        )
        try:
            await self._stopped.wait()
        except asyncio.CancelledError:
            await self.stop()
            raise

    # -- data plane ----------------------------------------------------

    async def _admit(
        self, work: str | ScoreRequest, *, cost: float | None = None
    ) -> asyncio.Future:
        """Admit one unit of work; the returned future resolves to the
        response bytes (detection, shed notice, or error)."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        job = _Job(
            work=work,
            snapshot=self.store.current(),
            future=future,
            admitted_at=time.perf_counter(),
        )
        if cost is None:
            cost = self._cost_fn(work if isinstance(work, str) else "")
        try:
            await self.admission.submit(job, cost=cost)
        except Shed as exc:
            future.set_result(encode_shed(str(exc)))
        except QueueClosed as exc:
            future.set_result(encode_error(str(exc)))
        return future

    async def inspect(self, payload: str) -> dict:
        """In-process client: run ``payload`` through the full admission
        path and return the decoded response object."""
        future = await self._admit(payload)
        return json.loads(await future)

    async def inspect_request(
        self,
        request,
        surfaces: tuple[InjectionSurface, ...] = LEGACY_SURFACES,
    ) -> dict:
        """In-process framed-mode client: full admission path, decoded
        surface-attributed response."""
        frame = encode_framed_request(request, surfaces)
        body_len = len(frame) - frame.index(b"\n") - 2
        future = await self._admit(
            ScoreRequest(request=request, surfaces=surfaces),
            cost=float(body_len),
        )
        return json.loads(await future)

    async def _worker_loop(self) -> None:
        while True:
            job = await self.admission.get()
            started = time.perf_counter()
            try:
                if isinstance(job.work, ScoreRequest):
                    detection = score_request(
                        job.snapshot.detector.inspect,
                        job.work.request,
                        job.work.surfaces,
                    )
                else:
                    detection = job.snapshot.detector.inspect(job.work)
            except Exception as exc:  # detector bug: answer, don't die
                self.telemetry.increment("errors")
                if not job.future.done():
                    job.future.set_result(
                        encode_error(f"detector error: {exc}")
                    )
            else:
                finished = time.perf_counter()
                self.telemetry.record_inspection(
                    detection.alert, finished - started
                )
                self.telemetry.observe(
                    "latency", finished - job.admitted_at
                )
                if not job.future.done():
                    if isinstance(job.work, ScoreRequest):
                        self.telemetry.record_surfaces(detection)
                        job.future.set_result(encode_surface_detection(
                            detection, job.snapshot.version
                        ))
                    else:
                        job.future.set_result(encode_detection(
                            detection, job.snapshot.version
                        ))
            finally:
                self.admission.task_done()

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.telemetry.increment("connections")
        self._connections.add(writer)
        try:
            try:
                first = await reader.readline()
            except ValueError:  # line exceeded even the stream limit
                self.telemetry.increment("protocol_errors")
                writer.write(encode_error("line too long"))
                await writer.drain()
                return
            if not first:
                return
            if is_http_request_line(first):
                await self._handle_http(reader, writer, first)
            else:
                await self._serve_lines(reader, writer, first)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_lines(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first: bytes,
    ) -> None:
        """The line protocol: one payload per line, responses in order."""
        pending: asyncio.Queue = asyncio.Queue(
            maxsize=max(1, self.config.max_inflight_per_connection)
        )
        flusher = asyncio.get_running_loop().create_task(
            self._flush_responses(pending, writer)
        )
        line = first
        try:
            while line:
                frame_size = None
                bad_header = None
                try:
                    frame_size = frame_header_size(line)
                except ProtocolError as exc:
                    # A malformed frame header: the client meant to
                    # frame, so treating the line as a payload would be
                    # wrong; answer the error and resync at next line.
                    bad_header = exc
                if bad_header is not None:
                    self.telemetry.increment("protocol_errors")
                    await pending.put(_done(encode_error(str(bad_header))))
                elif frame_size is not None:
                    await self._serve_frame(reader, pending, frame_size)
                elif len(line) > MAX_LINE_BYTES:
                    self.telemetry.increment("protocol_errors")
                    await pending.put(_done(encode_error("line too long")))
                else:
                    # Every line is one payload — including the empty
                    # line: a request with no query string is still a
                    # request the offline engine would score, and
                    # skipping it would desync response ordering.
                    payload = line.rstrip(b"\r\n").decode(
                        "utf-8", errors="replace"
                    )
                    await pending.put(await self._admit(payload))
                try:
                    line = await reader.readline()
                except ValueError:
                    # asyncio discarded an oversized line; answer the
                    # error in order and keep reading.
                    self.telemetry.increment("protocol_errors")
                    await pending.put(_done(encode_error("line too long")))
                    line = b"\n"
        finally:
            await pending.put(None)
            await flusher

    async def _serve_frame(
        self,
        reader: asyncio.StreamReader,
        pending: asyncio.Queue,
        frame_size: int,
    ) -> None:
        """Read and admit one framed full-request message.

        The header line is already consumed; this reads exactly the
        declared body bytes plus the line-aligning newline, decodes the
        request, and admits a surface-aware job priced by body size.
        """
        body = await reader.readexactly(frame_size)
        # The frame body is followed by a newline that keeps the
        # connection line-aligned; absorb it (tolerating EOF).
        trailer = await reader.readline()
        if trailer not in (b"\n", b"\r\n", b""):
            self.telemetry.increment("protocol_errors")
            await pending.put(_done(encode_error(
                "frame body not newline-terminated"
            )))
            return
        try:
            request, surfaces = decode_framed_request(
                body, default_surfaces=self.config.surfaces
            )
        except ProtocolError as exc:
            self.telemetry.increment("protocol_errors")
            await pending.put(_done(encode_error(str(exc))))
            return
        self.telemetry.increment("framed")
        await pending.put(await self._admit(
            ScoreRequest(request=request, surfaces=surfaces),
            cost=float(frame_size),
        ))

    @staticmethod
    async def _flush_responses(
        pending: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            future = await pending.get()
            if future is None:
                return
            data = await future
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                return

    # -- control plane -------------------------------------------------

    async def _handle_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first: bytes,
    ) -> None:
        try:
            message = await read_http_message(reader, first)
        except (ProtocolError, asyncio.IncompleteReadError) as exc:
            self.telemetry.increment("protocol_errors")
            writer.write(http_response(400, {"error": str(exc)}))
            await writer.drain()
            return
        status, payload = await self._route(message)
        # Only /metrics answers with a string body (Prometheus text
        # format); every JSON route returns a dict.
        content_type = CONTENT_TYPE if isinstance(payload, str) else None
        writer.write(http_response(status, payload, content_type=content_type))
        await writer.drain()

    async def _route(self, message) -> tuple[int, dict | str]:
        method, path = message.method, message.path
        if path == "/healthz" and method == "GET":
            current = self.store.current()
            return 200, {
                "status": "draining" if self.admission.closed else "ok",
                "detector": current.detector.name,
                "version": current.version,
                "queue_depth": self.admission.depth,
            }
        if path == "/stats" and method == "GET":
            current = self.store.current()
            return 200, {
                "store": {
                    "detector": current.detector.name,
                    "version": current.version,
                    "source": current.source,
                },
                "queue_depth": self.admission.depth,
                "surfaces": surfaces_section(
                    self.telemetry.raw_state()["counters"]
                ),
                **self.telemetry.snapshot(),
            }
        if path == "/reload" and method == "POST":
            if not self.config.allow_reload:
                return 403, {
                    "error": "reload is fleet-managed on this shard; "
                             "POST /reload to the supervisor control "
                             "plane instead",
                    "version": self.store.version,
                }
            try:
                if message.body.strip():
                    published = self.store.swap_json(message.body)
                else:
                    published = self.store.reload_from_path()
            except StoreError as exc:
                return 400, {
                    "error": str(exc),
                    "reason": exc.reason,
                    "rejected": True,
                    "version": self.store.version,
                }
            return 200, {
                "version": published.version,
                "source": published.source,
                "detector": published.detector.name,
            }
        if path == "/metrics" and method == "GET":
            return 200, render_exposition(self.telemetry.registry)
        if path == "/inspect" and method == "POST":
            result = await self.inspect(message.body)
            if result.get("shed") or "error" in result:
                return 503, result
            return 200, result
        if path in ("/healthz", "/stats", "/metrics", "/reload", "/inspect"):
            return 405, {"error": f"{method} not allowed on {path}"}
        return 404, {"error": f"no route {path}"}


def _default_cost(payload: str) -> float:
    """Default request price: the payload's UTF-8 byte length."""
    return float(len(payload.encode("utf-8", errors="replace")))


def _done(data: bytes) -> asyncio.Future:
    """A future already resolved to ``data``."""
    future = asyncio.get_running_loop().create_future()
    future.set_result(data)
    return future
