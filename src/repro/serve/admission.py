"""Admission control: bounded queues, backpressure policy, graceful drain.

A gateway in front of "heavy traffic from millions of users" (ROADMAP)
must decide what happens when offered load exceeds detector throughput.
Three policies are supported:

- ``block``: the submitting coroutine waits for queue space.  Combined
  with per-connection in-flight limits this propagates backpressure all
  the way to the TCP socket (the gateway stops reading, the kernel
  window fills, the client slows down).
- ``shed``: a full queue rejects the request immediately; the caller
  answers 503/``"shed": true`` and the ``shed`` counter increments.
  Latency of admitted requests stays bounded at the cost of refusing
  some — the classic load-shedding trade.
- ``cost``: cost-aware shedding.  FIFO shedding refuses whichever
  request happened to arrive at a full queue; under a mixed workload
  that throws away cheap benign lookups and expensive injection probes
  with equal probability.  The cost policy sheds by *price* instead:
  once queue depth crosses the ``high_water`` fraction, requests whose
  declared cost (by default the payload's byte length — matching time
  scales with payload size) exceeds ``cost_threshold`` are refused
  (``shed_cost`` + ``shed`` counters) while cheap requests keep being
  admitted until the queue is actually full.  Callers can price by
  family instead of size by passing a custom cost function to the
  gateway.

Each fleet shard owns its own controller, so the bounds above are
*per-shard*: a fleet of N shards at queue bound B admits up to N×B
requests before any shard sheds, and one slow shard cannot stall its
siblings' queues.

Shutdown is a drain, not an abort: the controller stops admitting,
workers finish what was queued, then the gateway closes.
"""

from __future__ import annotations

import asyncio
import enum
from typing import Any

from repro.serve.telemetry import Telemetry

__all__ = [
    "AdmissionController",
    "BackpressurePolicy",
    "DEFAULT_COST_THRESHOLD",
    "DEFAULT_HIGH_WATER",
    "QueueClosed",
    "Shed",
]

#: Payload cost (bytes, under the default length pricing) above which a
#: congested ``cost``-policy queue sheds the request.
DEFAULT_COST_THRESHOLD = 256.0

#: Queue-depth fraction at which the ``cost`` policy starts pricing.
DEFAULT_HIGH_WATER = 0.5


class BackpressurePolicy(str, enum.Enum):
    """What a full queue does to the next request."""

    BLOCK = "block"
    SHED = "shed"
    COST = "cost"


class Shed(Exception):
    """Raised by :meth:`AdmissionController.submit` under ``shed`` or
    ``cost`` policy when the request was refused (not admitted)."""


class QueueClosed(Exception):
    """Raised on submit after drain has begun; no new work is admitted."""


class AdmissionController:
    """Bounded request queue with a configurable full-queue policy.

    Args:
        queue_bound: maximum queued (admitted but unserviced) requests.
        policy: full-queue behaviour.
        telemetry: counter sink (``shed`` increments happen here so every
            admission path — TCP, HTTP, load generator — counts alike).
        cost_threshold: ``cost`` policy only — cost above which a
            congested queue sheds the request.
        high_water: ``cost`` policy only — queue-depth fraction at which
            cost-based shedding begins.
    """

    def __init__(
        self,
        *,
        queue_bound: int = 1024,
        policy: BackpressurePolicy | str = BackpressurePolicy.BLOCK,
        telemetry: Telemetry | None = None,
        cost_threshold: float = DEFAULT_COST_THRESHOLD,
        high_water: float = DEFAULT_HIGH_WATER,
    ) -> None:
        if queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {queue_bound}")
        if not 0.0 < high_water <= 1.0:
            raise ValueError(f"high_water must be in (0, 1], got {high_water}")
        self.policy = BackpressurePolicy(policy)
        self.telemetry = telemetry
        self.cost_threshold = float(cost_threshold)
        self._high_water_depth = max(1, int(high_water * queue_bound))
        self._queue: asyncio.Queue[Any] = asyncio.Queue(maxsize=queue_bound)
        self._closed = False

    @property
    def depth(self) -> int:
        """Requests currently admitted and waiting for a worker."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        """True once drain has begun."""
        return self._closed

    def _shed(self, reason: str, *, costed: bool = False) -> Shed:
        if self.telemetry is not None:
            self.telemetry.increment("shed")
            if costed:
                self.telemetry.increment("shed_cost")
        return Shed(reason)

    async def submit(self, item: Any, *, cost: float | None = None) -> None:
        """Admit ``item`` or refuse it according to policy.

        Args:
            item: the work unit to enqueue.
            cost: the request's price under the ``cost`` policy
                (ignored by ``block``/``shed``; ``None`` means unpriced
                and is never cost-shed).

        Raises:
            QueueClosed: drain already started.
            Shed: ``shed``/``cost`` policy refused the request.
        """
        if self._closed:
            raise QueueClosed("gateway is draining")
        if self.policy is BackpressurePolicy.BLOCK:
            await self._queue.put(item)
            return
        if (
            self.policy is BackpressurePolicy.COST
            and cost is not None
            and cost > self.cost_threshold
            and self._queue.qsize() >= self._high_water_depth
        ):
            raise self._shed(
                f"queue congested ({self._queue.qsize()}/"
                f"{self._queue.maxsize} waiting), payload cost "
                f"{cost:.0f} > {self.cost_threshold:.0f}",
                costed=True,
            )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            raise self._shed(
                f"queue full ({self._queue.maxsize} waiting)"
            ) from None

    async def get(self) -> Any:
        """Worker side: next admitted item (waits while the queue is empty)."""
        return await self._queue.get()

    def task_done(self) -> None:
        """Worker side: mark the most recently fetched item serviced."""
        self._queue.task_done()

    def close(self) -> None:
        """Stop admitting; already-queued items will still be serviced."""
        self._closed = True

    async def drain(self, timeout: float | None = None) -> bool:
        """Close and wait for queued items to be serviced.

        Returns True when the queue emptied, False on timeout (items may
        still be in flight).
        """
        self.close()
        try:
            await asyncio.wait_for(self._queue.join(), timeout)
        except asyncio.TimeoutError:
            return False
        return True
