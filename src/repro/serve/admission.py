"""Admission control: bounded queues, backpressure policy, graceful drain.

A gateway in front of "heavy traffic from millions of users" (ROADMAP)
must decide what happens when offered load exceeds detector throughput.
Two policies are supported:

- ``block``: the submitting coroutine waits for queue space.  Combined
  with per-connection in-flight limits this propagates backpressure all
  the way to the TCP socket (the gateway stops reading, the kernel
  window fills, the client slows down).
- ``shed``: a full queue rejects the request immediately; the caller
  answers 503/``"shed": true`` and the ``shed`` counter increments.
  Latency of admitted requests stays bounded at the cost of refusing
  some — the classic load-shedding trade.

Shutdown is a drain, not an abort: the controller stops admitting,
workers finish what was queued, then the gateway closes.
"""

from __future__ import annotations

import asyncio
import enum
from typing import Any

from repro.serve.telemetry import Telemetry

__all__ = ["AdmissionController", "BackpressurePolicy", "QueueClosed", "Shed"]


class BackpressurePolicy(str, enum.Enum):
    """What a full queue does to the next request."""

    BLOCK = "block"
    SHED = "shed"


class Shed(Exception):
    """Raised by :meth:`AdmissionController.submit` under ``shed`` policy
    when the queue is full; the request was not admitted."""


class QueueClosed(Exception):
    """Raised on submit after drain has begun; no new work is admitted."""


class AdmissionController:
    """Bounded request queue with a configurable full-queue policy.

    Args:
        queue_bound: maximum queued (admitted but unserviced) requests.
        policy: full-queue behaviour.
        telemetry: counter sink (``shed`` increments happen here so every
            admission path — TCP, HTTP, load generator — counts alike).
    """

    def __init__(
        self,
        *,
        queue_bound: int = 1024,
        policy: BackpressurePolicy | str = BackpressurePolicy.BLOCK,
        telemetry: Telemetry | None = None,
    ) -> None:
        if queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {queue_bound}")
        self.policy = BackpressurePolicy(policy)
        self.telemetry = telemetry
        self._queue: asyncio.Queue[Any] = asyncio.Queue(maxsize=queue_bound)
        self._closed = False

    @property
    def depth(self) -> int:
        """Requests currently admitted and waiting for a worker."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        """True once drain has begun."""
        return self._closed

    async def submit(self, item: Any) -> None:
        """Admit ``item`` or refuse it according to policy.

        Raises:
            QueueClosed: drain already started.
            Shed: ``shed`` policy and the queue is full.
        """
        if self._closed:
            raise QueueClosed("gateway is draining")
        if self.policy is BackpressurePolicy.SHED:
            try:
                self._queue.put_nowait(item)
            except asyncio.QueueFull:
                if self.telemetry is not None:
                    self.telemetry.increment("shed")
                raise Shed(
                    f"queue full ({self._queue.maxsize} waiting)"
                ) from None
        else:
            await self._queue.put(item)

    async def get(self) -> Any:
        """Worker side: next admitted item (waits while the queue is empty)."""
        return await self._queue.get()

    def task_done(self) -> None:
        """Worker side: mark the most recently fetched item serviced."""
        self._queue.task_done()

    def close(self) -> None:
        """Stop admitting; already-queued items will still be serviced."""
        self._closed = True

    async def drain(self, timeout: float | None = None) -> bool:
        """Close and wait for queued items to be serviced.

        Returns True when the queue emptied, False on timeout (items may
        still be in flight).
        """
        self.close()
        try:
            await asyncio.wait_for(self._queue.join(), timeout)
        except asyncio.TimeoutError:
            return False
        return True
