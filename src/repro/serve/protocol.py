"""Wire protocol of the detection gateway: line-delimited TCP plus HTTP.

One listening port speaks both dialects, disambiguated by the first
line of a connection:

- **Line protocol** (the data plane): every line the client sends is one
  detector-visible payload (exactly what
  :meth:`~repro.http.request.HttpRequest.payload` yields — query string
  plus form body, which never contains a newline).  The gateway answers
  each line with one JSON object: ``{"alert": bool, "score": float,
  "matched": [sids], "version": n}``, or ``{"shed": true, ...}`` when
  admission control refused the request.
- **HTTP/1.x** (the control plane): a first line shaped like
  ``METHOD /path HTTP/1.x`` switches the connection to one-shot HTTP.
  Routes: ``GET /healthz``, ``GET /stats``, ``GET /metrics``
  (Prometheus text format), ``POST /reload``, ``POST /inspect``.

Keeping framing in one module means the gateway, the load generator,
and the tests all parse and emit identical bytes.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass, field

from repro.ids.rules import Detection

__all__ = [
    "HttpMessage",
    "ProtocolError",
    "decode_response",
    "encode_detection",
    "encode_error",
    "encode_shed",
    "http_response",
    "is_http_request_line",
    "read_http_message",
]

_HTTP_REQUEST_LINE = re.compile(
    rb"^[A-Z]+ \S+ HTTP/1\.[01]\r?\n?$"
)

MAX_LINE_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """Malformed input on either dialect."""


def is_http_request_line(line: bytes) -> bool:
    """True when ``line`` opens an HTTP/1.x exchange rather than the
    line protocol."""
    return _HTTP_REQUEST_LINE.match(line) is not None


def encode_detection(detection: Detection, version: int) -> bytes:
    """One data-plane response line for a serviced inspection."""
    return (
        json.dumps(
            {
                "alert": bool(detection.alert),
                "score": float(detection.score),
                "matched": [int(s) for s in detection.matched_sids],
                "version": version,
            },
            separators=(",", ":"),
        ).encode()
        + b"\n"
    )


def encode_shed(reason: str) -> bytes:
    """Response line for a request refused by admission control."""
    return (
        json.dumps(
            {"shed": True, "error": reason}, separators=(",", ":")
        ).encode()
        + b"\n"
    )


def encode_error(reason: str) -> bytes:
    """Response line for a request the gateway could not process."""
    return (
        json.dumps(
            {"error": reason}, separators=(",", ":")
        ).encode()
        + b"\n"
    )


def decode_response(line: bytes) -> dict:
    """Client side: parse one data-plane response line.

    Raises:
        ProtocolError: when the line is not a JSON object.
    """
    try:
        decoded = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad response line: {exc}") from exc
    if not isinstance(decoded, dict):
        raise ProtocolError(f"bad response line: {line!r}")
    return decoded


@dataclass
class HttpMessage:
    """A parsed one-shot HTTP request.

    Attributes:
        method: upper-cased verb.
        path: request target (no host).
        headers: lower-cased header names.
        body: decoded body text.
    """

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: str = ""


async def read_http_message(
    reader: asyncio.StreamReader, first_line: bytes
) -> HttpMessage:
    """Read the remainder of an HTTP request whose request line was
    already consumed.

    Raises:
        ProtocolError: malformed head or oversized body.
    """
    parts = first_line.decode("latin-1").split()
    method, path = parts[0], parts[1]
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        text = line.decode("latin-1").rstrip("\r\n")
        if ":" not in text:
            raise ProtocolError(f"malformed header line: {text!r}")
        name, value = text.split(":", 1)
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ProtocolError(
            f"bad content-length: {length_text!r}"
        ) from exc
    if length > MAX_BODY_BYTES:
        raise ProtocolError(f"body too large: {length} bytes")
    body = b""
    if length > 0:
        body = await reader.readexactly(length)
    return HttpMessage(
        method=method, path=path, headers=headers,
        body=body.decode("utf-8", errors="replace"),
    )


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


def http_response(
    status: int, payload: dict | str, *, content_type: str | None = None
) -> bytes:
    """Serialize a one-shot HTTP response (connection closes after).

    A dict payload renders as JSON; a string payload is sent verbatim
    as ``text/plain`` (the ``/metrics`` exposition route) unless
    ``content_type`` says otherwise.
    """
    if isinstance(payload, str):
        body = payload.encode()
        media = content_type or "text/plain; charset=utf-8"
    else:
        body = json.dumps(payload, indent=1).encode()
        media = content_type or "application/json"
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {media}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body
