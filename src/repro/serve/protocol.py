"""Wire protocol of the detection gateway: line-delimited TCP plus HTTP.

One listening port speaks both dialects, disambiguated by the first
line of a connection:

- **Line protocol** (the data plane): every line the client sends is one
  detector-visible payload (exactly what
  :meth:`~repro.http.request.HttpRequest.payload` yields — query string
  plus form body, which never contains a newline).  The gateway answers
  each line with one JSON object: ``{"alert": bool, "score": float,
  "matched": [sids], "version": n}``, or ``{"shed": true, ...}`` when
  admission control refused the request.
- **Framed full-request mode** (wire format v2, same data plane): a line
  shaped like ``REPRO-FRAME/2 <nbytes>`` announces one whole HTTP
  request as an ``nbytes``-long JSON document (method, path, query,
  headers, body, optional ``stored`` pairs and ``surfaces`` selection)
  followed by a newline.  The gateway extracts the selected injection
  surfaces, scores each one, and answers with one JSON line carrying the
  legacy fields **plus** surface attribution.  Frames and plain lines
  may be interleaved on one connection; responses stay in request order.
- **HTTP/1.x** (the control plane): a first line shaped like
  ``METHOD /path HTTP/1.x`` switches the connection to one-shot HTTP.
  Routes: ``GET /healthz``, ``GET /stats``, ``GET /metrics``
  (Prometheus text format), ``POST /reload``, ``POST /inspect``.

Keeping framing in one module means the gateway, the load generator,
and the tests all parse and emit identical bytes.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass, field

from repro.http.request import HttpRequest
from repro.ids.rules import Detection
from repro.surfaces import (
    InjectionSurface,
    LEGACY_SURFACES,
    format_surfaces,
    parse_surfaces,
)

__all__ = [
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "HttpMessage",
    "ProtocolError",
    "decode_framed_request",
    "decode_response",
    "encode_detection",
    "encode_error",
    "encode_framed_request",
    "encode_shed",
    "encode_surface_detection",
    "frame_header_size",
    "http_response",
    "is_http_request_line",
    "read_http_message",
]

_HTTP_REQUEST_LINE = re.compile(
    rb"^[A-Z]+ \S+ HTTP/1\.[01]\r?\n?$"
)

MAX_LINE_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Wire format v2: the frame header magic.  The version is part of the
#: magic so a v3 framing can coexist on the same port; a header the
#: gateway does not recognize falls through to the line protocol, where
#: it scores as an (inert) payload — old gateways never crash on new
#: clients, they just answer ``alert: false``.
FRAME_MAGIC = b"REPRO-FRAME/2"
FRAME_VERSION = 2
MAX_FRAME_BYTES = MAX_BODY_BYTES


class ProtocolError(ValueError):
    """Malformed input on either dialect."""


def is_http_request_line(line: bytes) -> bool:
    """True when ``line`` opens an HTTP/1.x exchange rather than the
    line protocol."""
    return _HTTP_REQUEST_LINE.match(line) is not None


def encode_detection(detection: Detection, version: int) -> bytes:
    """One data-plane response line for a serviced inspection."""
    return (
        json.dumps(
            {
                "alert": bool(detection.alert),
                "score": float(detection.score),
                "matched": [int(s) for s in detection.matched_sids],
                "version": version,
            },
            separators=(",", ":"),
        ).encode()
        + b"\n"
    )


def encode_shed(reason: str) -> bytes:
    """Response line for a request refused by admission control."""
    return (
        json.dumps(
            {"shed": True, "error": reason}, separators=(",", ":")
        ).encode()
        + b"\n"
    )


def encode_error(reason: str) -> bytes:
    """Response line for a request the gateway could not process."""
    return (
        json.dumps(
            {"error": reason}, separators=(",", ":")
        ).encode()
        + b"\n"
    )


def frame_header_size(line: bytes) -> int | None:
    """Declared frame-body size when ``line`` is a v2 frame header.

    Returns ``None`` for anything that is not a frame header (the line
    then belongs to the plain line protocol).

    Raises:
        ProtocolError: a recognized header with a malformed or
            out-of-bounds size — the client *meant* to frame, so
            treating the line as a payload would desync the stream.
    """
    if not line.startswith(FRAME_MAGIC + b" "):
        return None
    rest = line[len(FRAME_MAGIC) + 1:].strip()
    try:
        size = int(rest)
    except ValueError as exc:
        raise ProtocolError(f"bad frame header: {line!r}") from exc
    if size < 0 or size > MAX_FRAME_BYTES:
        raise ProtocolError(f"bad frame size: {size}")
    return size


def encode_framed_request(
    request: HttpRequest,
    surfaces: tuple[InjectionSurface, ...] | None = None,
) -> bytes:
    """One framed (wire format v2) full-request message.

    The frame body is compact JSON; a trailing newline keeps the
    connection line-aligned for whatever message follows.
    """
    document: dict = {
        "v": FRAME_VERSION,
        "method": request.method,
        "path": request.path,
        "query": request.query,
        "headers": dict(request.headers),
        "body": request.body,
    }
    if getattr(request, "stored", ()):
        document["stored"] = [list(pair) for pair in request.stored]
    if surfaces is not None:
        document["surfaces"] = format_surfaces(surfaces)
    body = json.dumps(document, separators=(",", ":")).encode()
    return FRAME_MAGIC + b" " + str(len(body)).encode() + b"\n" + body + b"\n"


def decode_framed_request(
    data: bytes,
    *,
    default_surfaces: tuple[InjectionSurface, ...] = LEGACY_SURFACES,
) -> tuple[HttpRequest, tuple[InjectionSurface, ...]]:
    """Parse one frame body into a request plus its surface selection.

    A frame without an explicit ``surfaces`` list gets
    ``default_surfaces`` — the legacy query+form selection unless the
    server was configured otherwise (``repro serve --surfaces``), so a
    framed client that only upgraded its framing sees exactly the
    verdicts the line protocol gave it.

    Raises:
        ProtocolError: undecodable JSON, wrong version, wrong field
            types, or an unknown surface name.
    """
    try:
        document = json.loads(data)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad frame body: {exc}") from exc
    if not isinstance(document, dict):
        raise ProtocolError("frame body must be a JSON object")
    if document.get("v") != FRAME_VERSION:
        raise ProtocolError(
            f"unsupported frame version: {document.get('v')!r}"
        )
    headers = document.get("headers", {})
    stored_raw = document.get("stored", [])
    if not isinstance(headers, dict) or not isinstance(stored_raw, list):
        raise ProtocolError("bad frame field types")
    try:
        stored = tuple(
            (str(pair[0]), str(pair[1])) for pair in stored_raw
        )
    except (IndexError, TypeError) as exc:
        raise ProtocolError(f"bad stored pairs: {exc}") from exc
    request = HttpRequest(
        method=str(document.get("method", "GET")).upper(),
        host=str(document.get("host", "localhost")),
        path=str(document.get("path", "/")),
        query=str(document.get("query", "")),
        headers={
            str(k).lower(): str(v) for k, v in headers.items()
        },
        body=str(document.get("body", "")),
        stored=stored,
    )
    selection = document.get("surfaces")
    if selection is None:
        return request, default_surfaces
    try:
        return request, parse_surfaces(str(selection))
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def encode_surface_detection(detection, version: int) -> bytes:
    """Response line for a framed request: legacy fields + attribution.

    *detection* is a :class:`repro.surfaces.SurfaceDetection`; the first
    four keys are exactly :func:`encode_detection`'s, so a client that
    only reads the legacy shape can ignore the rest.
    """
    attribution = detection.attribution()
    return (
        json.dumps(
            {
                "alert": bool(detection.alert),
                "score": float(detection.score),
                "matched": [int(s) for s in detection.matched_sids],
                "version": version,
                "surfaces": attribution["surfaces"],
                "verdicts": attribution["verdicts"],
            },
            separators=(",", ":"),
        ).encode()
        + b"\n"
    )


def decode_response(line: bytes) -> dict:
    """Client side: parse one data-plane response line.

    Raises:
        ProtocolError: when the line is not a JSON object.
    """
    try:
        decoded = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad response line: {exc}") from exc
    if not isinstance(decoded, dict):
        raise ProtocolError(f"bad response line: {line!r}")
    return decoded


@dataclass
class HttpMessage:
    """A parsed one-shot HTTP request.

    Attributes:
        method: upper-cased verb.
        path: request target (no host).
        headers: lower-cased header names.
        body: decoded body text.
    """

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: str = ""


async def read_http_message(
    reader: asyncio.StreamReader, first_line: bytes
) -> HttpMessage:
    """Read the remainder of an HTTP request whose request line was
    already consumed.

    Raises:
        ProtocolError: malformed head or oversized body.
    """
    parts = first_line.decode("latin-1").split()
    method, path = parts[0], parts[1]
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        text = line.decode("latin-1").rstrip("\r\n")
        if ":" not in text:
            raise ProtocolError(f"malformed header line: {text!r}")
        name, value = text.split(":", 1)
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ProtocolError(
            f"bad content-length: {length_text!r}"
        ) from exc
    if length > MAX_BODY_BYTES:
        raise ProtocolError(f"body too large: {length} bytes")
    body = b""
    if length > 0:
        body = await reader.readexactly(length)
    return HttpMessage(
        method=method, path=path, headers=headers,
        body=body.decode("utf-8", errors="replace"),
    )


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


def http_response(
    status: int, payload: dict | str, *, content_type: str | None = None
) -> bytes:
    """Serialize a one-shot HTTP response (connection closes after).

    A dict payload renders as JSON; a string payload is sent verbatim
    as ``text/plain`` (the ``/metrics`` exposition route) unless
    ``content_type`` says otherwise.
    """
    if isinstance(payload, str):
        body = payload.encode()
        media = content_type or "text/plain; charset=utf-8"
    else:
        body = json.dumps(payload, indent=1).encode()
        media = content_type or "application/json"
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {media}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body
