"""Fleet control plane: spawn, supervise, reload, and aggregate N shards.

The supervisor owns everything the shards must agree on:

- **The shared data port.**  Under ``SO_REUSEPORT`` it binds a
  placeholder socket (bound, *not* listening — a non-listening socket
  never joins the kernel's accept group) so the port stays reserved for
  the fleet even while every shard is down; each shard then binds its
  own listening socket to the same port.  Without ``SO_REUSEPORT`` it
  binds one listening socket before forking and the shards accept on
  the inherited descriptor.
- **The signature generation.**  Reloads use a two-phase protocol over
  the shards' control pipes: ``stage`` (parse + build + warm, off the
  data path) on the supervisor's own reference store first — a bad
  candidate dies before any shard sees it — then on every shard;
  only unanimous success commits, supervisor first, then fan-out.  A
  failure anywhere aborts everywhere, so no shard ever serves a
  generation a sibling rejected and the fleet never answers with a
  mixed generation.
- **The telemetry.**  ``/stats`` and ``/metrics`` pull each shard's raw
  counter/histogram state over its pipe, merge them
  (:func:`~repro.serve.telemetry.merge_raw_states`), and expose both
  per-shard series (labelled ``shard="0"``...) and fleet aggregates —
  including merged latency histograms, not just sums of percentiles.
- **The lifecycle.**  A monitor task detects a dead shard (pipe EOF or
  process exit), reaps the zombie, respawns the slot with the *current*
  generation, and spot-checks the replacement against the supervisor's
  reference detector (:data:`~repro.serve.fleet.PROBE_PAYLOADS`) before
  letting it join the accept group.  ``stop()`` — and SIGTERM under
  :meth:`FleetSupervisor.serve_forever` — drains every shard within a
  deadline, then escalates terminate → kill, and reaps everything.

The control plane itself is a small HTTP server on its own port
(``/healthz``, ``/stats``, ``/metrics``, ``/reload``, ``/shards``),
speaking the same one-shot dialect as the single-process gateway.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.signature import SignatureSet
from repro.ids.engine import Detector
from repro.obs.prometheus import CONTENT_TYPE, render_exposition
from repro.obs.registry import MetricsRegistry
from repro.serve.fleet import (
    PROBE_PAYLOADS,
    ShardBoot,
    fleet_context,
    make_reuseport_listener,
    reuseport_available,
    shard_entry,
)
from repro.serve.protocol import (
    ProtocolError,
    http_response,
    is_http_request_line,
    read_http_message,
)
from repro.serve.store import SignatureStore, StoreError
from repro.serve.telemetry import (
    Telemetry,
    merge_raw_states,
    surfaces_section,
)

__all__ = ["FleetConfig", "FleetError", "FleetSupervisor"]


class FleetError(RuntimeError):
    """A fleet-level operation failed (bring-up, reload, shard loss)."""


@dataclass
class FleetConfig:
    """Tunables of one fleet.

    Attributes:
        shards: worker process count.
        host: bind address for both planes.
        port: shared data port (0 picks an ephemeral one).
        control_port: control-plane HTTP port (0 picks one).
        queue_bound: per-shard admission queue capacity.
        policy: per-shard backpressure policy.
        workers: detector coroutines per shard.
        max_inflight_per_connection: pipelining window per connection.
        drain_timeout: per-shard drain deadline at shutdown (seconds).
        cost_threshold: ``cost`` policy shed threshold.
        high_water: ``cost`` policy congestion fraction.
        respawn: revive dead shards.
        max_respawns: per-slot revival budget; a slot that keeps dying
            is left down (the rest of the fleet keeps serving).
        signature_path: default signature JSON for body-less
            ``POST /reload``.
        surfaces: default injection-surface selection spec for framed
            requests that do not name one (``repro serve --surfaces``).
    """

    shards: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    control_port: int = 0
    queue_bound: int = 1024
    policy: str = "block"
    workers: int = 4
    max_inflight_per_connection: int = 64
    drain_timeout: float = 10.0
    cost_threshold: float = 256.0
    high_water: float = 0.5
    respawn: bool = True
    max_respawns: int = 3
    signature_path: str | None = None
    surfaces: str = "query,form"


@dataclass
class _ShardHandle:
    """Supervisor-side state of one shard slot."""

    shard_id: int
    process: Any = None
    conn: Any = None
    pid: int = 0
    alive: bool = False
    serving: bool = False
    respawns: int = 0
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    pending: dict[int, asyncio.Future] = field(default_factory=dict)

    def fail_pending(self, error: Exception) -> None:
        """Resolve every outstanding request with ``error``."""
        for future in self.pending.values():
            if not future.done():
                future.set_exception(error)
        self.pending.clear()


class FleetSupervisor:
    """Runs ``config.shards`` gateway processes behind one data port.

    Args:
        detector: the detector every shard mounts as generation 1; must
            be fork-inheritable (it is never pickled under the default
            fork start method).
        config: fleet tunables.
        detector_factory: builds reload candidates from a parsed
            :class:`~repro.core.signature.SignatureSet` (defaults to the
            store's ``PSigeneDetector`` construction).
        source: provenance of the initial generation.
    """

    #: Request deadlines per control command (seconds).
    _TIMEOUTS = {
        "ping": 15.0, "selfcheck": 30.0, "open": 15.0,
        "stage": 120.0, "commit": 15.0, "abort": 15.0, "stats": 10.0,
    }

    def __init__(
        self,
        detector: Detector,
        config: FleetConfig | None = None,
        *,
        detector_factory: Callable[[SignatureSet], Detector] | None = None,
        source: str = "static",
    ) -> None:
        self.config = config or FleetConfig()
        if self.config.shards < 1:
            raise ValueError(
                f"need at least one shard, got {self.config.shards}"
            )
        self.telemetry = Telemetry()
        # The reference store: stages/commits in lockstep with the
        # shards, answers selfcheck comparisons, and seeds respawns.
        self.store = SignatureStore(
            detector,
            path=self.config.signature_path,
            detector_factory=detector_factory,
            telemetry=self.telemetry,
            source=source,
        )
        self.handles: list[_ShardHandle] = [
            _ShardHandle(shard_id=index)
            for index in range(self.config.shards)
        ]
        self._ctx = fleet_context()
        self._use_reuseport = reuseport_available()
        self._placeholder: socket.socket | None = None
        self._shared_listener: socket.socket | None = None
        self._data_host = self.config.host
        self._data_port = self.config.port
        self._control_server: asyncio.base_events.Server | None = None
        self._monitor_task: asyncio.Task | None = None
        self._reload_lock: asyncio.Lock | None = None
        self._message_ids = 0
        self._started = False
        self._stopping = False
        self._stopped = asyncio.Event()
        self._started_at = 0.0

    # -- addresses -----------------------------------------------------

    @property
    def data_address(self) -> tuple[str, int]:
        """Where clients send payload lines (shared across shards)."""
        return self._data_host, self._data_port

    @property
    def control_address(self) -> tuple[str, int]:
        """Where the control-plane HTTP endpoints answer."""
        if self._control_server is None:
            raise RuntimeError("fleet not started")
        sockname = self._control_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    @property
    def version(self) -> int:
        """The fleet's committed signature generation."""
        return self.store.version

    def live_handles(self) -> list[_ShardHandle]:
        """Shard slots currently running."""
        return [handle for handle in self.handles if handle.alive]

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Reserve the port, spawn and verify every shard, open the
        control plane; returns the data-plane address."""
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        self._started_at = time.monotonic()
        self._reload_lock = asyncio.Lock()
        if self._use_reuseport:
            self._placeholder = make_reuseport_listener(
                self.config.host, self.config.port, listen=False
            )
            sockname = self._placeholder.getsockname()
        else:
            self._shared_listener = socket.socket(
                socket.AF_INET, socket.SOCK_STREAM
            )
            self._shared_listener.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            self._shared_listener.bind(
                (self.config.host, self.config.port)
            )
            self._shared_listener.listen(128)
            sockname = self._shared_listener.getsockname()
        self._data_host, self._data_port = sockname[0], sockname[1]
        try:
            for handle in self.handles:
                self._spawn(handle)
                await self._bring_up(handle)
        except BaseException:
            await self.stop()
            raise
        self._control_server = await asyncio.start_server(
            self._handle_control, self.config.host, self.config.control_port
        )
        self._monitor_task = asyncio.get_running_loop().create_task(
            self._monitor()
        )
        return self.data_address

    def _spawn(self, handle: _ShardHandle) -> None:
        """Fork one shard process into ``handle``'s slot."""
        parent_conn, child_conn = self._ctx.Pipe()
        close_fds: tuple[int, ...] = ()
        if self._ctx.get_start_method() == "fork":
            fds = [parent_conn.fileno()]
            for other in self.handles:
                if other is not handle and other.conn is not None:
                    fds.append(other.conn.fileno())
            if self._placeholder is not None:
                fds.append(self._placeholder.fileno())
            if self._control_server is not None:
                fds.extend(
                    sock.fileno() for sock in self._control_server.sockets
                )
            close_fds = tuple(fds)
        current = self.store.current()
        boot = ShardBoot(
            shard_id=handle.shard_id,
            detector=current.detector,
            generation=current.version,
            source=current.source,
            host=self.config.host,
            port=self._data_port,
            reuseport=self._shared_listener is None,
            listen_socket=self._shared_listener,
            queue_bound=self.config.queue_bound,
            policy=self.config.policy,
            workers=self.config.workers,
            max_inflight_per_connection=(
                self.config.max_inflight_per_connection
            ),
            drain_timeout=self.config.drain_timeout,
            cost_threshold=self.config.cost_threshold,
            high_water=self.config.high_water,
            surfaces=self.config.surfaces,
            close_fds=close_fds,
        )
        process = self._ctx.Process(
            target=shard_entry,
            args=(boot, child_conn),
            name=f"repro-shard-{handle.shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.pid = process.pid or 0
        handle.alive = True
        handle.serving = False
        asyncio.get_running_loop().add_reader(
            parent_conn.fileno(), self._on_shard_message, handle
        )

    async def _bring_up(self, handle: _ShardHandle) -> None:
        """ping → conformance spot-check → open.  A shard that answers
        the probes differently from the reference detector never joins
        the accept group."""
        await self._request(handle, "ping")
        reply = await self._request(
            handle, "selfcheck", payloads=list(PROBE_PAYLOADS)
        )
        divergences = self._diff_probes(reply["verdicts"])
        if divergences:
            self._destroy(handle)
            raise FleetError(
                f"shard {handle.shard_id} failed conformance spot-check "
                f"before joining the fleet: {divergences[0]}"
            )
        await self._request(handle, "open")
        handle.serving = True

    def _diff_probes(self, verdicts: list[dict]) -> list[str]:
        """Compare shard probe verdicts against the reference detector."""
        detector = self.store.current().detector
        divergences: list[str] = []
        for payload, shard_verdict in zip(PROBE_PAYLOADS, verdicts):
            reference = detector.inspect(payload)
            if (
                bool(reference.alert) != shard_verdict["alert"]
                or [int(s) for s in reference.matched_sids]
                != shard_verdict["matched"]
                or abs(float(reference.score) - shard_verdict["score"])
                > 1e-9
            ):
                divergences.append(
                    f"probe {payload!r}: shard said "
                    f"{shard_verdict}, reference said "
                    f"alert={reference.alert} "
                    f"matched={list(reference.matched_sids)} "
                    f"score={reference.score}"
                )
        return divergences

    async def stop(self) -> None:
        """Drain every shard within the deadline, then escalate
        terminate → kill, reap all children, and close both planes."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
        live = self.live_handles()
        if live:
            await asyncio.gather(
                *(
                    self._request(
                        handle, "drain",
                        timeout=self.config.drain_timeout + 7.0,
                        command_timeout=self.config.drain_timeout,
                    )
                    for handle in live
                ),
                return_exceptions=True,
            )
        loop = asyncio.get_running_loop()
        for handle in self.handles:
            process = handle.process
            if process is None:
                continue
            await loop.run_in_executor(None, process.join, 2.0)
            if process.is_alive():
                process.terminate()
                await loop.run_in_executor(None, process.join, 1.0)
            if process.is_alive():
                process.kill()
                await loop.run_in_executor(None, process.join, 1.0)
            self._destroy(handle)
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        if self._shared_listener is not None:
            self._shared_listener.close()
            self._shared_listener = None
        self._stopped.set()

    async def serve_forever(self) -> None:
        """Start and run until SIGTERM/SIGINT; drains on the way out."""
        await self.start()
        control_host, control_port = self.control_address
        print(
            f"repro.serve.fleet: {len(self.live_handles())} shards on "
            f"{self._data_host}:{self._data_port} "
            f"(control {control_host}:{control_port}, "
            f"queue={self.config.queue_bound}/shard, "
            f"policy={self.config.policy})"
        )
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop_requested.set)
        try:
            await stop_requested.wait()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)
            await self.stop()

    def _destroy(self, handle: _ShardHandle) -> None:
        """Tear down a slot's supervisor-side resources (reap happened
        or is about to)."""
        if handle.conn is not None:
            try:
                asyncio.get_running_loop().remove_reader(
                    handle.conn.fileno()
                )
            except (RuntimeError, OSError):
                pass
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None
        handle.alive = False
        handle.serving = False
        handle.fail_pending(FleetError(f"shard {handle.shard_id} is down"))

    # -- control channel -----------------------------------------------

    def _on_shard_message(self, handle: _ShardHandle) -> None:
        try:
            while handle.conn is not None and handle.conn.poll():
                reply = handle.conn.recv()
                future = handle.pending.pop(reply.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (EOFError, OSError):
            # Shard process died; the monitor reaps and respawns.
            self._destroy(handle)

    async def _request(
        self,
        handle: _ShardHandle,
        command: str,
        *,
        timeout: float | None = None,
        command_timeout: float | None = None,
        **fields: Any,
    ) -> dict:
        """Send one command to ``handle`` and await its reply.

        Raises:
            FleetError: the shard is down, answered ``ok=False``, or
                missed the deadline.
        """
        if handle.conn is None or not handle.alive:
            raise FleetError(f"shard {handle.shard_id} is down")
        self._message_ids += 1
        message: dict[str, Any] = {
            "id": self._message_ids, "cmd": command, **fields,
        }
        if command_timeout is not None:
            message["timeout"] = command_timeout
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        handle.pending[message["id"]] = future
        conn, lock = handle.conn, handle.send_lock

        def _send() -> None:
            # Connection.send is not safe for interleaved writers; the
            # per-handle lock serializes the executor threads.
            with lock:
                conn.send(message)

        try:
            await loop.run_in_executor(None, _send)
            reply = await asyncio.wait_for(
                future, timeout or self._TIMEOUTS.get(command, 30.0)
            )
        except asyncio.TimeoutError:
            handle.pending.pop(message["id"], None)
            raise FleetError(
                f"shard {handle.shard_id} did not answer {command!r} "
                "in time"
            ) from None
        except (BrokenPipeError, OSError) as exc:
            handle.pending.pop(message["id"], None)
            raise FleetError(
                f"shard {handle.shard_id} pipe failed: {exc}"
            ) from exc
        if not reply.get("ok"):
            raise FleetError(
                f"shard {handle.shard_id} rejected {command!r}: "
                f"{reply.get('error', 'unknown error')}"
            )
        return reply

    # -- two-phase reload ----------------------------------------------

    async def reload_json(
        self, text: str, *, source: str = "inline"
    ) -> dict:
        """Atomically deploy a new signature generation fleet-wide.

        Stage order: reference store first (a candidate that cannot
        parse or warm dies here, before any shard spends cycles), then
        every live shard concurrently.  Any failure aborts the staged
        candidate everywhere and raises; only unanimous staging commits
        — reference first, then fan-out — so the fleet generation flips
        once and completely.

        Raises:
            StoreError: the candidate was rejected (parse/warm/stage).
            FleetError: a shard failed to stage or commit.
        """
        async with self._reload_lock:
            generation = self.store.version + 1
            loop = asyncio.get_running_loop()
            # Local stage runs in an executor: warming compiles the
            # fused plan, and the control plane should keep answering.
            await loop.run_in_executor(
                None,
                lambda: self.store.stage_json(
                    text, generation=generation, source=source
                ),
            )
            live = self.live_handles()
            outcomes = await asyncio.gather(
                *(
                    self._request(
                        handle, "stage",
                        text=text, generation=generation, source=source,
                    )
                    for handle in live
                ),
                return_exceptions=True,
            )
            failures = [
                (handle, outcome)
                for handle, outcome in zip(live, outcomes)
                if isinstance(outcome, BaseException)
            ]
            if failures:
                self.store.abort_staged(generation)
                await asyncio.gather(
                    *(
                        self._request(
                            handle, "abort", generation=generation
                        )
                        for handle in live
                        if handle.alive
                    ),
                    return_exceptions=True,
                )
                self.telemetry.increment("reload_failures")
                self.telemetry.increment("reload_rejected")
                first_failure = failures[0][1]
                raise FleetError(
                    f"reload aborted: {len(failures)}/{len(live)} shards "
                    f"failed to stage generation {generation} "
                    f"(first: {first_failure})"
                )
            self.store.commit_staged(generation)
            commit_outcomes = await asyncio.gather(
                *(
                    self._request(
                        handle, "commit", generation=generation
                    )
                    for handle in live
                ),
                return_exceptions=True,
            )
            for handle, outcome in zip(live, commit_outcomes):
                if isinstance(outcome, BaseException):
                    # The shard staged successfully but could not commit
                    # — it is wedged or dead.  Take it out; the monitor
                    # respawns it straight into the new generation.
                    self._kill_shard(handle)
            return {
                "version": generation,
                "source": source,
                "detector": self.store.current().detector.name,
                "shards": len(self.live_handles()),
            }

    def _kill_shard(self, handle: _ShardHandle) -> None:
        """Forcibly remove a misbehaving shard; the monitor reaps it."""
        if handle.process is not None and handle.process.is_alive():
            handle.process.terminate()
        self._destroy(handle)

    # -- monitor / respawn ---------------------------------------------

    async def _monitor(self) -> None:
        """Detect dead shards, reap them, and revive their slots."""
        while True:
            await asyncio.sleep(0.2)
            for handle in self.handles:
                process = handle.process
                if process is None:
                    continue
                if handle.alive and process.is_alive():
                    continue
                # Reap the zombie and release its resources.
                process.join(timeout=0)
                self._destroy(handle)
                if not self.config.respawn:
                    continue
                if handle.respawns >= self.config.max_respawns:
                    self.telemetry.increment("respawn_exhausted")
                    handle.process = None
                    continue
                handle.respawns += 1
                self.telemetry.increment("respawns")
                try:
                    self._spawn(handle)
                    await self._bring_up(handle)
                except (FleetError, OSError):
                    self.telemetry.increment("respawn_failures")
                    self._kill_shard(handle)

    # -- aggregation ---------------------------------------------------

    async def _collect_states(self) -> list[tuple[_ShardHandle, dict]]:
        """Pull ``stats`` from every live shard (dead ones are skipped,
        freshly-dead ones tolerated)."""
        live = self.live_handles()
        replies = await asyncio.gather(
            *(self._request(handle, "stats") for handle in live),
            return_exceptions=True,
        )
        return [
            (handle, reply)
            for handle, reply in zip(live, replies)
            if not isinstance(reply, BaseException)
        ]

    async def stats(self) -> dict:
        """Fleet ``/stats`` document: per-shard and merged telemetry."""
        collected = await self._collect_states()
        merged = merge_raw_states(
            [reply["state"] for _, reply in collected]
        )
        per_shard = {
            str(handle.shard_id): {
                "pid": reply["pid"],
                "version": reply["version"],
                "queue_depth": reply["queue_depth"],
                "serving": reply["serving"],
                "respawns": handle.respawns,
                "counters": reply["state"]["counters"],
            }
            for handle, reply in collected
        }
        current = self.store.current()
        return {
            "fleet": {
                "shards": len(self.handles),
                "live": len(self.live_handles()),
                "uptime_s": time.monotonic() - self._started_at,
                "counters": merged["counters"],
                "surfaces": surfaces_section(merged["counters"]),
                "latency": {
                    name: {
                        "count": histogram.count,
                        **histogram.percentiles_ms(),
                    }
                    for name, histogram in merged["histograms"].items()
                },
            },
            "store": {
                "detector": current.detector.name,
                "version": current.version,
                "source": current.source,
            },
            "supervisor": self.telemetry.snapshot(),
            "shards": per_shard,
        }

    async def metrics(self) -> str:
        """Prometheus exposition for the whole fleet.

        Built into one transient registry per scrape — per-shard counter
        series carry a ``shard`` label, fleet totals use
        ``shard="fleet"``, and latency histograms are merged across
        shards bucket-by-bucket (concatenating per-shard expositions
        would emit duplicate families, which strict parsers reject).
        """
        collected = await self._collect_states()
        states = [reply["state"] for _, reply in collected]
        merged = merge_raw_states(states)
        registry = MetricsRegistry()
        for (handle, reply), state in zip(collected, states):
            label = {"shard": str(handle.shard_id)}
            for name, value in state["counters"].items():
                registry.counter(
                    f"repro_{name}_total",
                    f"Serving counter {name!r}.",
                    labels=label,
                ).inc(value)
            registry.gauge(
                "repro_queue_depth",
                "Admission queue depth at scrape time.",
                labels=label,
            ).set(float(reply["queue_depth"]))
        for name, value in merged["counters"].items():
            registry.counter(
                f"repro_{name}_total",
                f"Serving counter {name!r}.",
                labels={"shard": "fleet"},
            ).inc(value)
        for name, histogram in merged["histograms"].items():
            target = registry.histogram(
                f"repro_{name}_seconds",
                f"Latency histogram {name!r} (seconds), fleet-merged.",
            )
            target.merge_state(histogram.state())
        for name, value in self.telemetry.raw_state()["counters"].items():
            registry.counter(
                f"repro_{name}_total",
                f"Supervisor counter {name!r}.",
                labels={"shard": "supervisor"},
            ).inc(value)
        registry.gauge(
            "repro_fleet_shards", "Configured shard slots.",
        ).set(float(len(self.handles)))
        registry.gauge(
            "repro_fleet_live_shards", "Shards currently serving.",
        ).set(float(len(self.live_handles())))
        registry.gauge(
            "repro_store_version", "Deployed signature store generation.",
        ).set(float(self.store.version))
        return render_exposition(registry)

    # -- control-plane HTTP --------------------------------------------

    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if not is_http_request_line(first):
                writer.write(
                    http_response(
                        400,
                        {"error": "control plane speaks HTTP only; "
                                  "payload lines go to the data port"},
                    )
                )
                await writer.drain()
                return
            try:
                message = await read_http_message(reader, first)
            except (ProtocolError, asyncio.IncompleteReadError) as exc:
                writer.write(http_response(400, {"error": str(exc)}))
                await writer.drain()
                return
            status, payload = await self._route(message)
            content_type = (
                CONTENT_TYPE if isinstance(payload, str) else None
            )
            writer.write(
                http_response(status, payload, content_type=content_type)
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, message) -> tuple[int, dict | str]:
        method, path = message.method, message.path
        if path == "/healthz" and method == "GET":
            live = len(self.live_handles())
            current = self.store.current()
            return (200 if live else 503), {
                "status": "ok" if live == len(self.handles) else (
                    "degraded" if live else "down"
                ),
                "detector": current.detector.name,
                "version": current.version,
                "shards": len(self.handles),
                "live": live,
            }
        if path == "/stats" and method == "GET":
            return 200, await self.stats()
        if path == "/metrics" and method == "GET":
            return 200, await self.metrics()
        if path == "/shards" and method == "GET":
            return 200, {
                "data_port": self._data_port,
                "reuseport": self._shared_listener is None,
                "shards": [
                    {
                        "shard_id": handle.shard_id,
                        "pid": handle.pid,
                        "alive": handle.alive,
                        "serving": handle.serving,
                        "respawns": handle.respawns,
                    }
                    for handle in self.handles
                ],
            }
        if path == "/reload" and method == "POST":
            return await self._route_reload(message.body)
        if path in ("/healthz", "/stats", "/metrics", "/shards", "/reload"):
            return 405, {"error": f"{method} not allowed on {path}"}
        return 404, {"error": f"no route {path}"}

    async def _route_reload(self, body: str) -> tuple[int, dict]:
        text = body.strip()
        source = "inline"
        if not text:
            target = self.config.signature_path
            if target is None:
                self.telemetry.increment("reload_failures")
                self.telemetry.increment("reload_rejected")
                return 400, {
                    "error": "no signature path configured; POST a "
                             "signature JSON body",
                    "reason": "config",
                    "rejected": True,
                    "version": self.store.version,
                }
            try:
                with open(target) as handle:
                    text = handle.read()
            except OSError as exc:
                self.telemetry.increment("reload_failures")
                self.telemetry.increment("reload_rejected")
                return 400, {
                    "error": f"cannot read {target}: {exc}",
                    "reason": "io",
                    "rejected": True,
                    "version": self.store.version,
                }
            source = f"file:{target}"
        try:
            result = await self.reload_json(text, source=source)
        except StoreError as exc:
            return 400, {
                "error": str(exc),
                "reason": exc.reason,
                "rejected": True,
                "version": self.store.version,
            }
        except FleetError as exc:
            return 502, {
                "error": str(exc),
                "reason": "fleet",
                "rejected": True,
                "version": self.store.version,
            }
        return 200, result

    # -- convenience ---------------------------------------------------

    async def inspect(self, payload: str) -> dict:
        """One round-trip through the shared data port (test helper)."""
        reader, writer = await asyncio.open_connection(
            self._data_host, self._data_port
        )
        try:
            writer.write(payload.encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        return json.loads(line)
