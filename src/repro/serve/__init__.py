"""Online detection gateway: serve any detector behind TCP/HTTP.

The paper deploys pSigene signatures inside a live Bro IDS watching
production traffic (Section III-C); this package is that deployment
surface for the reproduction.  ``repro serve`` mounts a detector behind
a line-delimited TCP data plane plus an HTTP control plane
(``/healthz``, ``/stats``, ``/metrics``, ``/reload``, ``/inspect``),
with a versioned
hot-swappable signature store, bounded admission queues with block/shed
backpressure, and live telemetry.  ``repro loadgen`` replays
scanner/benign traffic against it and checks alert parity with the
offline engine.  See DESIGN.md §11.
"""

from repro.serve.admission import (
    AdmissionController,
    BackpressurePolicy,
    QueueClosed,
    Shed,
)
from repro.serve.gateway import DetectionGateway, GatewayConfig
from repro.serve.loadgen import (
    LoadReport,
    build_load_trace,
    format_report,
    replay,
    run_loadgen,
)
from repro.serve.store import SignatureStore, StoreError, StoreVersion
from repro.serve.telemetry import LatencyHistogram, Telemetry

__all__ = [
    "AdmissionController",
    "BackpressurePolicy",
    "DetectionGateway",
    "GatewayConfig",
    "LatencyHistogram",
    "LoadReport",
    "QueueClosed",
    "Shed",
    "SignatureStore",
    "StoreError",
    "StoreVersion",
    "Telemetry",
    "build_load_trace",
    "format_report",
    "replay",
    "run_loadgen",
]
