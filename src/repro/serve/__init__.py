"""Online detection gateway: serve any detector behind TCP/HTTP.

The paper deploys pSigene signatures inside a live Bro IDS watching
production traffic (Section III-C); this package is that deployment
surface for the reproduction.  ``repro serve`` mounts a detector behind
a line-delimited TCP data plane plus an HTTP control plane
(``/healthz``, ``/stats``, ``/metrics``, ``/reload``, ``/inspect``),
with a versioned
hot-swappable signature store, bounded admission queues with
block/shed/cost backpressure, and live telemetry.  ``repro serve
--shards N`` scales the same data plane across N worker processes on
one shared port under a supervising control plane
(:mod:`repro.serve.supervisor`) with atomic two-phase fleet reloads.
``repro loadgen`` replays scanner/benign traffic against either —
closed-loop for capacity, open-loop at a fixed offered rate for
overload behaviour — and checks alert parity with the offline engine.
See DESIGN.md §11 and §15.
"""

from repro.serve.admission import (
    AdmissionController,
    BackpressurePolicy,
    QueueClosed,
    Shed,
)
from repro.serve.fleet import (
    PROBE_PAYLOADS,
    ShardBoot,
    reuseport_available,
)
from repro.serve.gateway import DetectionGateway, GatewayConfig
from repro.serve.loadgen import (
    FleetLoadReport,
    LoadReport,
    build_load_trace,
    format_fleet_report,
    format_report,
    open_loop_replay,
    replay,
    run_fleet_loadgen,
    run_loadgen,
)
from repro.serve.store import SignatureStore, StoreError, StoreVersion
from repro.serve.supervisor import FleetConfig, FleetError, FleetSupervisor
from repro.serve.telemetry import (
    LatencyHistogram,
    Telemetry,
    merge_raw_states,
)

__all__ = [
    "AdmissionController",
    "BackpressurePolicy",
    "DetectionGateway",
    "FleetConfig",
    "FleetError",
    "FleetLoadReport",
    "FleetSupervisor",
    "GatewayConfig",
    "LatencyHistogram",
    "LoadReport",
    "PROBE_PAYLOADS",
    "QueueClosed",
    "Shed",
    "ShardBoot",
    "SignatureStore",
    "StoreError",
    "StoreVersion",
    "Telemetry",
    "build_load_trace",
    "format_fleet_report",
    "format_report",
    "merge_raw_states",
    "open_loop_replay",
    "replay",
    "reuseport_available",
    "run_fleet_loadgen",
    "run_loadgen",
]
