"""Load-generator harness: replay scanner + benign traffic at a gateway.

The paper's deployment argument is empirical — signatures must hold up
under a production request stream (Section III-C).  The harness builds a
deterministic mixed trace (SQLmap and Vega scans of the vulnerable
webapp interleaved with benign portal traffic), replays it over many
concurrent pipelined connections, and reports sustained throughput,
shed rate, client-observed latency percentiles, and — via
:mod:`repro.eval.serving` — alert parity with the offline engine.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.eval.serving import (
    ParityReport,
    offline_detections,
    parity_of_responses,
)
from repro.http.request import HttpRequest
from repro.http.traffic import Trace
from repro.serve.gateway import DetectionGateway, GatewayConfig
from repro.serve.protocol import decode_response, encode_framed_request
from repro.serve.store import SignatureStore
from repro.surfaces import InjectionSurface, LEGACY_SURFACES, score_request

__all__ = [
    "FleetLoadReport",
    "LoadReport",
    "build_load_trace",
    "format_fleet_report",
    "format_report",
    "open_loop_replay",
    "replay",
    "replay_framed",
    "run_fleet_loadgen",
    "run_framed_loadgen",
    "run_loadgen",
]


def build_load_trace(
    *,
    seed: int = 7,
    n_benign: int = 800,
    n_vulnerabilities: int = 12,
    name: str = "loadgen-mix",
) -> Trace:
    """A deterministic attack/benign mix for replay.

    SQLmap and Vega scans of a small vulnerable webapp shuffled together
    with benign portal traffic — the arrival order a perimeter IDS sees,
    not a tidy attacks-then-benign block.
    """
    from repro.corpus.benign import BenignTrafficGenerator
    from repro.corpus.webapp import VulnerableWebApp
    from repro.scanners import SqlmapSimulator, VegaSimulator

    app = VulnerableWebApp(seed=seed, n_vulnerabilities=n_vulnerabilities)
    requests = (
        SqlmapSimulator(app, seed=seed + 1).scan().requests
        + VegaSimulator(app, seed=seed + 2).scan().requests
        + BenignTrafficGenerator(seed=seed + 3).trace(n_benign).requests
    )
    order = np.random.default_rng(seed).permutation(len(requests))
    return Trace(name=name, requests=[requests[i] for i in order])


@dataclass
class LoadReport:
    """Everything one replay measured.

    Attributes:
        detector: detector name on the serving side.
        queue_bound: admission queue capacity during the run.
        policy: backpressure policy during the run.
        requests: payloads offered.
        completed: payloads answered with a verdict.
        shed: payloads refused by admission control.
        errors: undecodable or error responses.
        alerts: verdicts that alerted.
        duration_s: wall-clock of the replay.
        throughput_rps: completed-plus-shed responses per second.
        serviced_rps: completed (verdict-carrying) responses per second —
            the honest "sustained" number when shedding is active.
        latency_ms: client-observed percentiles (p50/p95/p99/mean/max).
        parity: diff against the offline engine (None when skipped).
    """

    detector: str
    queue_bound: int
    policy: str
    requests: int
    completed: int
    shed: int
    errors: int
    alerts: int
    duration_s: float
    throughput_rps: float
    latency_ms: dict[str, float] = field(default_factory=dict)
    parity: ParityReport | None = None

    @property
    def shed_rate(self) -> float:
        """Fraction of offered payloads refused."""
        return self.shed / self.requests if self.requests else 0.0

    @property
    def serviced_rps(self) -> float:
        """Verdict-carrying responses per second."""
        return self.completed / self.duration_s if self.duration_s else 0.0


async def replay(
    host: str,
    port: int,
    payloads: list[str],
    *,
    connections: int = 8,
    window: int = 32,
) -> tuple[list[dict | None], np.ndarray, float]:
    """Replay ``payloads`` and return (responses, latencies_s, duration_s).

    Payloads are dealt round-robin over ``connections`` pipelined
    connections, each keeping up to ``window`` requests in flight.
    ``responses[i]`` stays None if the connection died before answering.
    """
    wires = [
        payload.encode("utf-8", errors="replace") + b"\n"
        for payload in payloads
    ]
    return await _replay_wires(
        host, port, wires, connections=connections, window=window
    )


async def replay_framed(
    host: str,
    port: int,
    requests: list[HttpRequest],
    *,
    surfaces: tuple[InjectionSurface, ...] = LEGACY_SURFACES,
    connections: int = 8,
    window: int = 32,
) -> tuple[list[dict | None], np.ndarray, float]:
    """Framed-mode :func:`replay`: whole requests over wire format v2.

    Each request ships as one ``REPRO-FRAME/2`` message carrying the
    surface selection; responses decode to surface-attributed verdict
    objects, shaped like :func:`replay`'s return.
    """
    wires = [
        encode_framed_request(request, surfaces) for request in requests
    ]
    return await _replay_wires(
        host, port, wires, connections=connections, window=window
    )


async def _replay_wires(
    host: str,
    port: int,
    wires: list[bytes],
    *,
    connections: int,
    window: int,
) -> tuple[list[dict | None], np.ndarray, float]:
    responses: list[dict | None] = [None] * len(wires)
    latencies = np.zeros(len(wires), dtype=np.float64)
    shards: list[list[tuple[int, bytes]]] = [
        [] for _ in range(max(1, connections))
    ]
    for index, wire in enumerate(wires):
        shards[index % len(shards)].append((index, wire))
    started = time.perf_counter()
    await asyncio.gather(*(
        _drive_connection(host, port, shard, responses, latencies, window)
        for shard in shards if shard
    ))
    return responses, latencies, time.perf_counter() - started


async def _drive_connection(
    host: str,
    port: int,
    jobs: list[tuple[int, bytes]],
    responses: list[dict | None],
    latencies: np.ndarray,
    window: int,
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    inflight = asyncio.Semaphore(max(1, window))
    sent_at: dict[int, float] = {}

    async def collect() -> None:
        try:
            for index, _ in jobs:
                line = await reader.readline()
                if not line:
                    return
                latencies[index] = time.perf_counter() - sent_at[index]
                try:
                    responses[index] = decode_response(line)
                except ValueError:
                    responses[index] = {"error": "undecodable response"}
                inflight.release()
        finally:
            # Unblock the sender even if the server hung up early; its
            # writes will then fail fast instead of deadlocking.
            for _ in jobs:
                inflight.release()

    collector = asyncio.get_running_loop().create_task(collect())
    try:
        for index, wire in jobs:
            await inflight.acquire()
            if collector.done():
                break
            sent_at[index] = time.perf_counter()
            writer.write(wire)
            await writer.drain()
        await collector
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        collector.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _percentiles_ms(latencies: np.ndarray) -> dict[str, float]:
    answered = latencies[latencies > 0]
    if answered.size == 0:
        return {k: 0.0 for k in
                ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms")}
    return {
        "p50_ms": float(np.percentile(answered, 50) * 1e3),
        "p95_ms": float(np.percentile(answered, 95) * 1e3),
        "p99_ms": float(np.percentile(answered, 99) * 1e3),
        "mean_ms": float(answered.mean() * 1e3),
        "max_ms": float(answered.max() * 1e3),
    }


async def run_loadgen(
    store: SignatureStore,
    payloads: list[str],
    *,
    queue_bound: int = 1024,
    policy: str = "block",
    workers: int = 4,
    connections: int = 8,
    window: int = 32,
    check_parity: bool = True,
) -> LoadReport:
    """Spawn an in-process gateway, replay, and summarize.

    With ``check_parity`` the serviced responses are diffed against the
    offline detector (shed responses are excluded — there is nothing to
    compare).
    """
    gateway = DetectionGateway(store, GatewayConfig(
        queue_bound=queue_bound,
        policy=policy,
        workers=workers,
    ))
    host, port = await gateway.start()
    try:
        responses, latencies, duration = await replay(
            host, port, payloads,
            connections=connections, window=window,
        )
    finally:
        await gateway.stop()
    parity = None
    if check_parity:
        parity = parity_of_responses(
            offline_detections(store.current().detector, payloads),
            responses,
        )
    shed = sum(1 for r in responses if r and r.get("shed"))
    errors = sum(
        1 for r in responses
        if r is not None and "error" in r and not r.get("shed")
    )
    completed = sum(
        1 for r in responses
        if r is not None and not r.get("shed") and "error" not in r
    )
    answered = sum(1 for r in responses if r is not None)
    return LoadReport(
        detector=store.current().detector.name,
        queue_bound=queue_bound,
        policy=policy,
        requests=len(payloads),
        completed=completed,
        shed=shed,
        errors=errors,
        alerts=sum(
            1 for r in responses if r is not None and r.get("alert")
        ),
        duration_s=duration,
        throughput_rps=answered / duration if duration > 0 else 0.0,
        latency_ms=_percentiles_ms(latencies),
        parity=parity,
    )


async def run_framed_loadgen(
    store: SignatureStore,
    requests: list[HttpRequest],
    *,
    surfaces: tuple[InjectionSurface, ...] = LEGACY_SURFACES,
    queue_bound: int = 1024,
    policy: str = "block",
    workers: int = 4,
    connections: int = 8,
    window: int = 32,
    check_parity: bool = True,
) -> LoadReport:
    """Framed-mode :func:`run_loadgen`: replay whole requests.

    Parity is judged against the offline surface-aware fold
    (:func:`repro.surfaces.score_request` with the same selection), so a
    wire/extraction divergence between gateway and library fails the
    check even when both "look alerted".
    """
    gateway = DetectionGateway(store, GatewayConfig(
        queue_bound=queue_bound,
        policy=policy,
        workers=workers,
    ))
    host, port = await gateway.start()
    try:
        responses, latencies, duration = await replay_framed(
            host, port, requests,
            surfaces=surfaces, connections=connections, window=window,
        )
    finally:
        await gateway.stop()
    parity = None
    if check_parity:
        detector = store.current().detector
        parity = parity_of_responses(
            [
                score_request(detector.inspect, request, surfaces)
                for request in requests
            ],
            responses,
        )
    shed = sum(1 for r in responses if r and r.get("shed"))
    errors = sum(
        1 for r in responses
        if r is not None and "error" in r and not r.get("shed")
    )
    completed = sum(
        1 for r in responses
        if r is not None and not r.get("shed") and "error" not in r
    )
    answered = sum(1 for r in responses if r is not None)
    return LoadReport(
        detector=store.current().detector.name,
        queue_bound=queue_bound,
        policy=policy,
        requests=len(requests),
        completed=completed,
        shed=shed,
        errors=errors,
        alerts=sum(
            1 for r in responses if r is not None and r.get("alert")
        ),
        duration_s=duration,
        throughput_rps=answered / duration if duration > 0 else 0.0,
        latency_ms=_percentiles_ms(latencies),
        parity=parity,
    )


async def open_loop_replay(
    host: str,
    port: int,
    payloads: list[str],
    *,
    rate: float,
    connections: int = 8,
) -> tuple[list[dict | None], np.ndarray, float]:
    """Offer ``payloads`` at a fixed ``rate`` regardless of responses.

    The closed-loop :func:`replay` slows down when the server does —
    it can never overload anything, so it measures *capacity*.  The
    open-loop generator models independent clients: payload ``i`` is
    sent at ``t0 + i/rate`` (dealt round-robin over ``connections``)
    whether or not earlier responses arrived, which is how real traffic
    behaves and the only way to observe shedding and queueing delay at
    offered loads above capacity.

    Response lines are stored raw and decoded after the run so client
    CPU spent on JSON never distorts the offered schedule.

    Returns ``(responses, latencies_s, duration_s)`` shaped exactly
    like :func:`replay`.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    responses: list[dict | None] = [None] * len(payloads)
    latencies = np.zeros(len(payloads), dtype=np.float64)
    lanes: list[list[int]] = [[] for _ in range(max(1, connections))]
    for index in range(len(payloads)):
        lanes[index % len(lanes)].append(index)
    raw: list[bytes | None] = [None] * len(payloads)
    started = time.perf_counter()
    finished_at = started

    async def _drive(lane: list[int]) -> None:
        nonlocal finished_at
        reader, writer = await asyncio.open_connection(host, port)
        sent_at = np.zeros(len(lane), dtype=np.float64)

        async def collect() -> None:
            nonlocal finished_at
            for position, index in enumerate(lane):
                line = await reader.readline()
                if not line:
                    return
                now = time.perf_counter()
                latencies[index] = now - sent_at[position]
                raw[index] = line
                if now > finished_at:
                    finished_at = now

        collector = asyncio.get_running_loop().create_task(collect())
        try:
            for position, index in enumerate(lane):
                delay = started + index / rate - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                sent_at[position] = time.perf_counter()
                writer.write(
                    payloads[index].encode("utf-8", errors="replace")
                    + b"\n"
                )
                await writer.drain()
            await collector
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            collector.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    await asyncio.gather(*(_drive(lane) for lane in lanes if lane))
    for index, line in enumerate(raw):
        if line is None:
            continue
        try:
            responses[index] = decode_response(line)
        except ValueError:
            responses[index] = {"error": "undecodable response"}
    return responses, latencies, max(finished_at - started, 1e-9)


@dataclass
class FleetLoadReport:
    """One replay against a sharded fleet, with per-shard attribution.

    Attributes:
        detector: detector name on the serving side.
        shards: shard process count.
        queue_bound: per-shard admission queue capacity.
        policy: per-shard backpressure policy.
        offered_rps: open-loop offered rate (None for closed-loop runs).
        requests: payloads offered.
        completed: payloads answered with a verdict.
        shed: payloads refused by admission control.
        errors: undecodable or error responses.
        alerts: verdicts that alerted.
        duration_s: wall-clock of the replay.
        throughput_rps: answered (verdict or shed) responses per second.
        slo_ms: the latency objective judged against.
        slo_attainment: fraction of *offered* payloads answered with a
            verdict within ``slo_ms`` — a shed or missing response is an
            SLO miss, so attainment cannot be gamed by shedding.
        latency_ms: client-observed percentiles over serviced requests.
        per_shard: ``{shard_id: {"inspected": n, "shed": n, ...}}``
            pulled from the supervisor after the replay — the kernel's
            connection balancing made visible.
        parity: diff against the offline engine (None when skipped).
    """

    detector: str
    shards: int
    queue_bound: int
    policy: str
    offered_rps: float | None
    requests: int
    completed: int
    shed: int
    errors: int
    alerts: int
    duration_s: float
    throughput_rps: float
    slo_ms: float
    slo_attainment: float
    latency_ms: dict[str, float] = field(default_factory=dict)
    per_shard: dict[str, dict] = field(default_factory=dict)
    parity: ParityReport | None = None

    @property
    def shed_rate(self) -> float:
        """Fraction of offered payloads refused."""
        return self.shed / self.requests if self.requests else 0.0

    @property
    def serviced_rps(self) -> float:
        """Verdict-carrying responses per second."""
        return self.completed / self.duration_s if self.duration_s else 0.0


def _slo_attainment(
    responses: list[dict | None],
    latencies: np.ndarray,
    slo_ms: float,
) -> float:
    """Fraction of offered payloads serviced within the objective."""
    if not responses:
        return 0.0
    within = 0
    for index, response in enumerate(responses):
        if response is None or response.get("shed") or "error" in response:
            continue
        if latencies[index] * 1e3 <= slo_ms:
            within += 1
    return within / len(responses)


async def run_fleet_loadgen(
    detector,
    payloads: list[str],
    *,
    shards: int = 2,
    queue_bound: int = 1024,
    policy: str = "block",
    workers: int = 4,
    connections: int = 8,
    window: int = 32,
    rate: float | None = None,
    slo_ms: float = 50.0,
    check_parity: bool = True,
) -> FleetLoadReport:
    """Spawn a fleet, replay (closed- or open-loop), and summarize.

    With ``rate`` set the open-loop generator offers that many requests
    per second fleet-wide; without it the closed-loop :func:`replay`
    measures capacity.  Per-shard counters come from the supervisor's
    merged telemetry, pulled *before* shutdown.
    """
    from repro.serve.supervisor import FleetConfig, FleetSupervisor

    supervisor = FleetSupervisor(detector, FleetConfig(
        shards=shards,
        queue_bound=queue_bound,
        policy=policy,
        workers=workers,
    ))
    host, port = await supervisor.start()
    try:
        if rate is None:
            responses, latencies, duration = await replay(
                host, port, payloads,
                connections=connections, window=window,
            )
        else:
            responses, latencies, duration = await open_loop_replay(
                host, port, payloads, rate=rate, connections=connections,
            )
        stats = await supervisor.stats()
    finally:
        await supervisor.stop()
    parity = None
    if check_parity:
        parity = parity_of_responses(
            offline_detections(detector, payloads), responses,
        )
    shed = sum(1 for r in responses if r and r.get("shed"))
    errors = sum(
        1 for r in responses
        if r is not None and "error" in r and not r.get("shed")
    )
    completed = sum(
        1 for r in responses
        if r is not None and not r.get("shed") and "error" not in r
    )
    answered = sum(1 for r in responses if r is not None)
    serviced_latencies = np.array([
        latencies[i] for i, r in enumerate(responses)
        if r is not None and not r.get("shed") and "error" not in r
    ])
    return FleetLoadReport(
        detector=stats["store"]["detector"],
        shards=shards,
        queue_bound=queue_bound,
        policy=policy,
        offered_rps=rate,
        requests=len(payloads),
        completed=completed,
        shed=shed,
        errors=errors,
        alerts=sum(
            1 for r in responses if r is not None and r.get("alert")
        ),
        duration_s=duration,
        throughput_rps=answered / duration if duration > 0 else 0.0,
        slo_ms=slo_ms,
        slo_attainment=_slo_attainment(responses, latencies, slo_ms),
        latency_ms=_percentiles_ms(serviced_latencies),
        per_shard={
            shard_id: dict(info["counters"])
            for shard_id, info in stats["shards"].items()
        },
        parity=parity,
    )


def format_fleet_report(report: FleetLoadReport) -> str:
    """Multi-line human-readable rendering of one fleet replay."""
    offered = (
        f"offered={report.offered_rps:,.0f} req/s (open loop)"
        if report.offered_rps is not None
        else "closed loop"
    )
    lines = [
        f"detector={report.detector} shards={report.shards} "
        f"queue={report.queue_bound}/shard policy={report.policy} "
        f"{offered}",
        f"  requests={report.requests} completed={report.completed} "
        f"shed={report.shed} ({report.shed_rate:.1%}) "
        f"errors={report.errors} alerts={report.alerts}",
        f"  duration={report.duration_s:.3f}s "
        f"throughput={report.throughput_rps:,.0f} req/s "
        f"(serviced {report.serviced_rps:,.0f}/s)",
        f"  slo<= {report.slo_ms:g}ms attainment="
        f"{report.slo_attainment:.1%}",
        "  latency p50={p50_ms:.3f}ms p95={p95_ms:.3f}ms "
        "p99={p99_ms:.3f}ms mean={mean_ms:.3f}ms max={max_ms:.3f}ms"
        .format(**report.latency_ms),
    ]
    for shard_id in sorted(report.per_shard):
        counters = report.per_shard[shard_id]
        lines.append(
            f"  shard {shard_id}: inspected={counters.get('inspected', 0)} "
            f"alerted={counters.get('alerted', 0)} "
            f"shed={counters.get('shed', 0)} "
            f"connections={counters.get('connections', 0)}"
        )
    if report.parity is not None:
        lines.append(f"  {report.parity.summary()}")
    return "\n".join(lines)


def format_report(report: LoadReport) -> str:
    """Multi-line human-readable rendering of one replay."""
    lines = [
        f"detector={report.detector} queue={report.queue_bound} "
        f"policy={report.policy}",
        f"  requests={report.requests} completed={report.completed} "
        f"shed={report.shed} ({report.shed_rate:.1%}) "
        f"errors={report.errors} alerts={report.alerts}",
        f"  duration={report.duration_s:.3f}s "
        f"throughput={report.throughput_rps:,.0f} req/s "
        f"(serviced {report.serviced_rps:,.0f}/s)",
        "  latency p50={p50_ms:.3f}ms p95={p95_ms:.3f}ms "
        "p99={p99_ms:.3f}ms mean={mean_ms:.3f}ms max={max_ms:.3f}ms"
        .format(**report.latency_ms),
    ]
    if report.parity is not None:
        lines.append(f"  {report.parity.summary()}")
    return "\n".join(lines)
