"""Serving telemetry: a named-counter view over the metrics registry.

The paper's Bro deployment watched production traffic for weeks
(Section III-C); judging such a deployment requires knowing what the
detector actually did — how many requests it inspected, how many alerts
it raised, how long inspection took at the tail.  :class:`Telemetry`
collects exactly that.

Since the observability layer landed, telemetry is a *consumer* of
:class:`~repro.obs.registry.MetricsRegistry`, not an owner of its own
counter dicts: ``increment("inspected")`` feeds the registry counter
``repro_inspected_total``, ``observe("service", s)`` feeds the histogram
``repro_service_seconds``, and the gateway's ``/stats`` JSON and
``/metrics`` Prometheus exposition are two renderings of the same
instruments — they cannot disagree.

The short-name API (``inspected``, ``alerted``, ``shed``...) is kept
because the serving stack and its tests speak it; the mapping to
canonical metric names is mechanical (``repro_<name>_total`` /
``repro_<name>_seconds``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping

from repro.obs.registry import Counter, Histogram, MetricsRegistry
from repro.surfaces import InjectionSurface

__all__ = [
    "LatencyHistogram",
    "Telemetry",
    "merge_raw_states",
    "surfaces_section",
]


class LatencyHistogram(Histogram):
    """A log-bucketed latency histogram (seconds).

    Kept as a named subclass of :class:`repro.obs.registry.Histogram`
    for the serving stack's vocabulary and backward compatibility; all
    behaviour — bucket math, quantiles, ``percentiles_ms`` — lives in
    the base class.
    """

    def __init__(
        self,
        *,
        low: float = 1e-6,
        high: float = 60.0,
        growth: float = 1.25,
    ) -> None:
        super().__init__(
            "repro_latency_seconds", low=low, high=high, growth=growth
        )


class Telemetry:
    """Thread-safe counters plus named latency histograms.

    Counter names used by the serving stack (the set is open — any name
    works):

    - ``inspected``: payloads that reached a detector.
    - ``alerted``: inspections whose verdict was an alert.
    - ``shed``: requests rejected by admission control.
    - ``reloads``: successful signature hot-swaps.
    - ``reload_failures``: rejected swaps (old version retained).
    - ``connections``: TCP/HTTP connections accepted.
    - ``protocol_errors``: undecodable input lines.

    Histograms are created on first use; the gateway records ``service``
    (detector time alone) and ``latency`` (queue wait + service).

    Args:
        registry: the metrics registry to report through.  A private
            one is created when omitted; pass
            :class:`~repro.obs.registry.NullRegistry` to disable all
            bookkeeping.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._started = time.monotonic()
        # Hot-path instruments, resolved once.
        self._inspected = self._counter("inspected")
        self._alerted = self._counter("alerted")
        self._service = self._histogram("service")

    def _counter(self, name: str) -> Counter:
        """Registry counter for short name ``name`` (cached)."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self.registry.counter(
                    f"repro_{name}_total",
                    f"Serving counter {name!r}.",
                )
                self._counters[name] = counter
            return counter

    def _histogram(self, name: str) -> Histogram:
        """Registry histogram for short name ``name`` (cached)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self.registry.histogram(
                    f"repro_{name}_seconds",
                    f"Latency histogram {name!r} (seconds).",
                )
                self._histograms[name] = histogram
            return histogram

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._counter(name).inc(amount)

    def observe(self, name: str, seconds: float) -> None:
        """Record a latency sample into histogram ``name``."""
        self._histogram(name).observe(seconds)

    def record_inspection(self, alerted: bool, seconds: float) -> None:
        """One-call hot-path helper: counters + the ``service`` histogram."""
        self._inspected.inc()
        if alerted:
            self._alerted.inc()
        self._service.observe(seconds)

    def record_surfaces(self, detection) -> None:
        """Per-surface counters for one surface-aware verdict.

        *detection* is a :class:`repro.surfaces.SurfaceDetection` (duck
        typed — anything with ``verdicts`` carrying ``surface`` and
        ``detection.alert`` works).  Each scored unit feeds
        ``surface_<name>_inspected`` and, on alert,
        ``surface_<name>_alerted`` — plain name-keyed counters
        (``repro_surface_query_inspected_total``...), so fleet
        ``merge_raw_states`` aggregation works on them unchanged.
        """
        for verdict in getattr(detection, "verdicts", ()):
            name = verdict.surface.metric_name
            self._counter(f"surface_{name}_inspected").inc()
            if verdict.detection.alert:
                self._counter(f"surface_{name}_alerted").inc()

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return int(self._counter(name).value)

    def raw_state(self) -> dict[str, Any]:
        """Portable dump for cross-process aggregation.

        Counters ship as plain ints and histograms as
        :meth:`~repro.obs.registry.Histogram.state` dicts, so a fleet
        shard can pipe its whole telemetry to the supervisor as one
        picklable object and the supervisor can rebuild merged
        percentiles without sharing any memory.
        """
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: int(counter.value)
                for name, counter in counters.items()
            },
            "histograms": {
                name: histogram.state()
                for name, histogram in histograms.items()
            },
        }

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time copy of every counter and histogram summary."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "uptime_s": time.monotonic() - self._started,
            "counters": {
                name: int(counter.value)
                for name, counter in counters.items()
                if counter.value or name in ("inspected", "alerted")
            },
            "latency": {
                name: {
                    "count": histogram.count,
                    **histogram.percentiles_ms(),
                }
                for name, histogram in histograms.items()
                if histogram.count or name == "service"
            },
        }


def surfaces_section(counters: Mapping[str, int]) -> dict[str, Any]:
    """The ``/stats`` ``"surfaces"`` block from plain counter values.

    Works on any name→value counter mapping — one gateway's live
    telemetry or a fleet's :func:`merge_raw_states` sum — so the
    single-shard and fleet-merged stats documents expose the identical
    per-surface shape.
    """
    return {
        surface.value: {
            "inspected": int(counters.get(
                f"surface_{surface.metric_name}_inspected", 0
            )),
            "alerted": int(counters.get(
                f"surface_{surface.metric_name}_alerted", 0
            )),
        }
        for surface in InjectionSurface
    }


def merge_raw_states(states: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold per-shard :meth:`Telemetry.raw_state` dumps into fleet totals.

    Returns ``{"counters": {name: sum}, "histograms": {name: Histogram}}``
    — counters summed across shards, histograms rebuilt (default serving
    geometry) with every shard's buckets merged, ready for percentile
    queries or exposition.
    """
    counters: dict[str, int] = {}
    histograms: dict[str, Histogram] = {}
    for state in states:
        for name, value in state.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, hist_state in state.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                merged = Histogram(f"repro_{name}_seconds")
                histograms[name] = merged
            merged.merge_state(hist_state)
    return {"counters": counters, "histograms": histograms}
