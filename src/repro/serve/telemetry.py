"""Live telemetry: monotonic counters and streaming latency histograms.

The paper's Bro deployment watched production traffic for weeks
(Section III-C); judging such a deployment requires knowing what the
detector actually did — how many requests it inspected, how many alerts
it raised, how long inspection took at the tail.  :class:`Telemetry`
collects exactly that, cheaply enough to stay on in the hot path: each
observation is one lock acquisition, one bucket increment, and a handful
of scalar updates.

The same object serves the online gateway and the offline
:class:`~repro.ids.engine.SignatureEngine`, so a trace scored in batch
and a trace replayed through ``repro serve`` report through one schema.
"""

from __future__ import annotations

import math
import threading
import time
from collections import defaultdict
from typing import Any

__all__ = ["LatencyHistogram", "Telemetry"]


class LatencyHistogram:
    """Streaming latency histogram with log-spaced buckets.

    Exact storage of per-request latencies is unbounded on a long-running
    gateway; a fixed set of geometrically-spaced buckets bounds memory at
    a few hundred integers while keeping quantile error under the bucket
    growth factor (~12% worst case with the default 1.25).

    Args:
        low: lower edge of the first finite bucket, in seconds.
        high: upper edge of the last finite bucket, in seconds.
        growth: ratio between consecutive bucket edges.
    """

    def __init__(
        self,
        *,
        low: float = 1e-6,
        high: float = 60.0,
        growth: float = 1.25,
    ) -> None:
        if not (0 < low < high):
            raise ValueError(f"need 0 < low < high, got {low}, {high}")
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1, got {growth}")
        edges = [low]
        while edges[-1] < high:
            edges.append(edges[-1] * growth)
        self._edges = edges
        self._log_low = math.log(low)
        self._log_growth = math.log(growth)
        # One underflow bucket below ``low`` and one overflow above ``high``.
        self._counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        if seconds < 0:
            seconds = 0.0
        if seconds < self._edges[0]:
            index = 0
        else:
            index = 1 + int(
                (math.log(seconds) - self._log_low) / self._log_growth
            )
            index = min(index, len(self._counts) - 1)
        self._counts[index] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        """Mean observed latency in seconds (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Latency at quantile ``q`` in (0, 1], as the covering bucket edge.

        Returns the upper edge of the bucket holding the q-th observation,
        clamped to the largest observed value, so the estimate never
        exceeds reality by more than one bucket's width.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = math.ceil(q * self.count)
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                edge = self._edges[min(index, len(self._edges) - 1)]
                return min(edge, self.max)
        return self.max

    def percentiles_ms(self) -> dict[str, float]:
        """The standard p50/p95/p99 triple plus mean/max, in milliseconds."""
        return {
            "p50_ms": self.quantile(0.50) * 1e3,
            "p95_ms": self.quantile(0.95) * 1e3,
            "p99_ms": self.quantile(0.99) * 1e3,
            "mean_ms": self.mean * 1e3,
            "max_ms": self.max * 1e3,
        }


class Telemetry:
    """Thread-safe counters plus named latency histograms.

    Counter names used by the serving stack (the set is open — any name
    works):

    - ``inspected``: payloads that reached a detector.
    - ``alerted``: inspections whose verdict was an alert.
    - ``shed``: requests rejected by admission control.
    - ``reloads``: successful signature hot-swaps.
    - ``reload_failures``: rejected swaps (old version retained).
    - ``connections``: TCP/HTTP connections accepted.
    - ``protocol_errors``: undecodable input lines.

    Histograms are created on first use; the gateway records ``service``
    (detector time alone) and ``latency`` (queue wait + service).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: defaultdict[str, int] = defaultdict(int)
        self._histograms: dict[str, LatencyHistogram] = {}
        self._started = time.monotonic()

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self._counters[name] += amount

    def observe(self, name: str, seconds: float) -> None:
        """Record a latency sample into histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.observe(seconds)

    def record_inspection(self, alerted: bool, seconds: float) -> None:
        """One-call hot-path helper: counters + the ``service`` histogram."""
        with self._lock:
            self._counters["inspected"] += 1
            if alerted:
                self._counters["alerted"] += 1
            histogram = self._histograms.get("service")
            if histogram is None:
                histogram = self._histograms["service"] = LatencyHistogram()
            histogram.observe(seconds)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time copy of every counter and histogram summary."""
        with self._lock:
            return {
                "uptime_s": time.monotonic() - self._started,
                "counters": dict(self._counters),
                "latency": {
                    name: {
                        "count": histogram.count,
                        **histogram.percentiles_ms(),
                    }
                    for name, histogram in self._histograms.items()
                },
            }
